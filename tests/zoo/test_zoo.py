"""Tests for the zoo: the paper's named objects behave as described."""

import pytest

from repro.chase import certain_boolean, chase, is_weakly_acyclic
from repro.classes import classify, is_guarded, is_linear
from repro.lf import parse_query
from repro.rewriting import RewriteConfig, bdd_profile
from repro.vtdag import is_forest, is_vtdag, max_degree
from repro.zoo import (
    binary_tree_structure,
    chain_growth_theory,
    chain_structure,
    cycle_structure,
    example1_database,
    example1_theory,
    example1_triangle,
    example3_chain,
    example6_total_order,
    example7_database,
    example7_theory,
    example9_database,
    example9_theory,
    grid_structure,
    guarded_example_theory,
    lemma13_bounded_degree_structure,
    random_edges_database,
    random_linear_theory,
    remark3_database,
    remark3_theory,
    section54_theory,
    section55_database,
    section55_theory,
    theorem2_corpus,
    transitive_theory,
)


class TestPaperObjects:
    def test_example1_chain_behaviour(self):
        result = chase(example1_database(), example1_theory(), max_depth=6)
        assert not result.structure.facts_with_pred("U")

    def test_example1_triangle_diverges(self):
        result = chase(example1_triangle(), example1_theory(), max_depth=5)
        assert result.structure.facts_with_pred("U")
        assert not result.saturated

    def test_example3_chain_shape(self):
        chain = example3_chain(10)
        assert is_forest(chain)
        assert len(chain) == 10

    def test_example6_order_is_dense(self):
        order = example6_total_order(6)
        assert len(order) == 15  # C(6,2)
        assert not is_vtdag(order)

    def test_remark3_theory_parts(self):
        theory = remark3_theory()
        assert len(theory.tgds()) == 1
        assert len(theory.datalog_rules()) == 1
        assert remark3_database().domain_size == 3

    def test_example7_is_bdd(self):
        profile = bdd_profile(example7_theory())
        assert profile.saturated
        assert profile.kappa == 3

    def test_example9_tree_growth(self):
        result = chase(example9_database(), example9_theory(), max_depth=4)
        # binary tree: 2 + 2 + 4 + 8 + 16 elements
        assert len(result.new_elements) == 2 + 4 + 8 + 16

    def test_section54_theory_shape(self):
        theory = section54_theory()
        assert not theory.is_binary
        assert len(theory.tgds()) == 1

    def test_section55_chase_has_doubling_R(self):
        result = chase(section55_database(), section55_theory(), max_depth=8)
        r_facts = result.structure.facts_with_pred("R")
        # R(a_i, a_2i): R(a0,a0) plus derived ones
        assert len(r_facts) >= 4

    def test_section55_phi_never_observed(self):
        verdict = certain_boolean(
            section55_database(),
            section55_theory(),
            parse_query("E(x,y), R(y,y)"),
            max_depth=8,
        )
        assert verdict is not True

    def test_lemma13_structure_degree(self):
        structure = lemma13_bounded_degree_structure()
        assert max_degree(structure) <= 4

    def test_guarded_example_guarded(self):
        assert is_guarded(guarded_example_theory())

    def test_corpus_entries_valid(self):
        corpus = theorem2_corpus()
        assert len(corpus) >= 5
        for name, theory, database, query in corpus:
            assert theory.is_binary, name
            # queries are not certain: a counter-model should exist
            verdict = certain_boolean(database, theory, query, max_depth=6)
            assert verdict is not True, name

    def test_corpus_theories_bdd(self):
        config = RewriteConfig(max_steps=5_000, max_queries=500)
        for name, theory, _db, _q in theorem2_corpus():
            profile = bdd_profile(theory, config)
            assert profile.saturated, name


class TestGenerators:
    def test_chain_constants_flag(self):
        anonymous = chain_structure(5)
        named = chain_structure(5, constants=True)
        assert not anonymous.constant_elements()
        assert len(named.constant_elements()) == 6

    def test_cycle(self):
        cycle = cycle_structure(5)
        assert len(cycle) == 5
        assert not is_forest(cycle)

    def test_binary_tree_size(self):
        tree = binary_tree_structure(3)
        assert tree.domain_size == 2 ** 4 - 1

    def test_grid(self):
        grid = grid_structure(3, 4)
        assert grid.domain_size == 12
        assert len(grid.facts_with_pred("H")) == 9
        assert len(grid.facts_with_pred("V")) == 8

    def test_random_database_deterministic(self):
        left = random_edges_database(10, 20, seed=7)
        right = random_edges_database(10, 20, seed=7)
        assert left.same_facts(right)
        assert len(left) == 20

    def test_random_linear_theory_is_linear(self):
        theory = random_linear_theory(4, 10, seed=3)
        assert is_linear(theory)
        assert len(theory) == 10

    def test_random_linear_theory_deterministic(self):
        assert random_linear_theory(4, 10, seed=3) == random_linear_theory(4, 10, seed=3)

    def test_chain_growth_theory(self):
        theory = chain_growth_theory(3)
        assert len(theory.tgds()) == 3
        assert not is_weakly_acyclic(theory)

    def test_transitive_theory(self):
        profile = classify(transitive_theory())
        assert profile["full_datalog"]
        assert profile["weakly_acyclic"]
