"""Tests for (♠4) query hiding and (♠5) normalisation (Section 3.1)."""

import pytest

from repro.errors import NotBinaryError, RuleError
from repro.chase import certain_boolean
from repro.lf import (
    Constant,
    Variable,
    atom,
    parse_query,
    parse_structure,
    parse_theory,
)
from repro.core import hide_query, prepare, spade5_normalize

LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")


class TestHideQuery:
    def test_flag_is_fresh(self):
        hidden = hide_query(LINEAR, parse_query("E(x,y), E(y,z)"))
        assert hidden.flag_predicate not in LINEAR.predicates()

    def test_hiding_rule_shape(self):
        hidden = hide_query(LINEAR, parse_query("E(x,y), E(y,z)"))
        rule = hidden.hiding_rule
        assert rule.is_existential
        assert rule.head_atom.pred == hidden.flag_predicate
        assert len(rule.existential_variables()) == 1

    def test_flag_equivalence_with_query(self):
        """F derivable iff query certain (the (♠4) equivalence)."""
        database = parse_structure("E(a,b)")
        query = parse_query("E(x,y), E(y,z)")
        hidden = hide_query(LINEAR, query)
        flag_query = parse_query(f"{hidden.flag_predicate}(x,y)")
        assert certain_boolean(database, LINEAR, query, max_depth=6) is True
        assert certain_boolean(database, hidden.theory, flag_query, max_depth=6) is True

    def test_flag_absent_when_query_not_certain(self):
        database = parse_structure("E(a,b)")
        query = parse_query("E(x,x)")
        hidden = hide_query(LINEAR, query)
        flag_query = parse_query(f"{hidden.flag_predicate}(x,y)")
        verdict = certain_boolean(database, hidden.theory, flag_query, max_depth=6)
        assert verdict is not True

    def test_ground_query_rejected(self):
        with pytest.raises(RuleError):
            hide_query(LINEAR, parse_query("E('a','b')"))

    def test_fresh_name_avoids_existing_F(self):
        theory = parse_theory("F(x,y) -> exists z. F(y,z)")
        hidden = hide_query(theory, parse_query("F(x,y)"))
        assert hidden.flag_predicate != "F"


class TestSpade5:
    def test_already_normal_untouched(self):
        result = spade5_normalize(LINEAR)
        assert result.theory == LINEAR
        assert not result.renamed_heads

    def test_backwards_head_reoriented(self):
        theory = parse_theory("U(y) -> exists z. E(z,y)")
        result = spade5_normalize(theory)
        assert result.theory.satisfies_spade5
        assert "E" in result.renamed_heads

    def test_reorientation_preserves_certain_answers(self):
        theory = parse_theory("U(y) -> exists z. E(z,y)")
        result = spade5_normalize(theory)
        database = parse_structure("U(a)")
        query = parse_query("E(z, 'a')")
        assert certain_boolean(database, theory, query, max_depth=4) is True
        assert certain_boolean(database, result.theory, query, max_depth=4) is True

    def test_unary_head_routed(self):
        theory = parse_theory("U(x) -> exists z. V(z)")
        result = spade5_normalize(theory)
        assert result.theory.satisfies_spade5
        database = parse_structure("U(a)")
        assert certain_boolean(database, result.theory, parse_query("V(z)"), max_depth=4) is True

    def test_loop_head_routed(self):
        theory = parse_theory("U(x) -> exists z. E(z,z)")
        result = spade5_normalize(theory)
        assert result.theory.satisfies_spade5
        database = parse_structure("U(a)")
        assert certain_boolean(database, result.theory, parse_query("E(z,z)"), max_depth=4) is True

    def test_tgp_datalog_clash_separated(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            R(x,y) -> E(x,y)
            """
        )
        result = spade5_normalize(theory)
        assert result.theory.satisfies_spade5
        # certain answers over E preserved
        database = parse_structure("R(a,b)")
        query = parse_query("E(x,y), E(y,z)")
        assert certain_boolean(database, theory, query, max_depth=5) is True
        assert certain_boolean(database, result.theory, query, max_depth=5) is True

    def test_nonbinary_rejected(self):
        theory = parse_theory("P(x,y,z) -> exists w. P(y,z,w)")
        with pytest.raises(NotBinaryError):
            spade5_normalize(theory)

    def test_multihead_rejected(self):
        theory = parse_theory("E(x,y) -> U(x), U(y)")
        with pytest.raises(RuleError):
            spade5_normalize(theory)

    def test_multi_witness_rejected(self):
        theory = parse_theory("U(x) -> exists z, w. E(z,w)")
        with pytest.raises(RuleError):
            spade5_normalize(theory)


class TestPrepare:
    def test_prepare_combines_both(self):
        prepared = prepare(LINEAR, parse_query("E(x,x)"))
        assert prepared.theory.satisfies_spade5
        assert prepared.flag_predicate in prepared.theory.predicates()
        assert prepared.original_theory == LINEAR
