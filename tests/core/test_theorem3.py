"""Tests for the Theorem 3 route: non-binary frontier-1 theories."""

import pytest

from repro.chase import is_model
from repro.core import PipelineConfig, build_finite_counter_model, prepare
from repro.errors import NotBinaryError
from repro.lf import parse_query, parse_structure, parse_theory, satisfies

TERNARY_F1 = parse_theory(
    """
    T(x,y,z) -> exists u, w. T(z, u, w)
    T(x,y,z), B(z) -> M(x,y)
    """
)
DB = parse_structure("T(a,b,c)\nB(c)")


class TestPrepareRoute:
    def test_frontier_one_accepted(self):
        prepared = prepare(TERNARY_F1, parse_query("M(x,x)"))
        # the working theory's TGD heads are binary after the §5.1 split
        for rule in prepared.theory.tgds():
            assert rule.head_atom.arity == 2

    def test_kappa_theory_is_pre_split(self):
        prepared = prepare(TERNARY_F1, parse_query("M(x,x)"))
        assert prepared.kappa_theory is not None
        # the pre-split theory still has the ternary-headed TGD
        assert any(
            r.is_existential and r.head_atom.arity == 3
            for r in prepared.kappa_theory.rules
        )

    def test_binary_theory_unaffected(self):
        binary = parse_theory("E(x,y) -> exists z. E(y,z)")
        prepared = prepare(binary, parse_query("E(x,x)"))
        assert prepared.kappa_theory is None
        assert prepared.theory_for_kappa is prepared.theory

    def test_wide_frontier_rejected(self):
        wide = parse_theory("P(x,y,z) -> exists w. P(x,y,w)")
        with pytest.raises(NotBinaryError):
            prepare(wide, parse_query("P(x,x,x)"))


class TestTheorem3Pipeline:
    def test_ternary_counter_model(self):
        query = parse_query("M(x,x)")
        config = PipelineConfig(chase_depths=(32,))
        result = build_finite_counter_model(TERNARY_F1, DB, query, config)
        assert result.model is not None, result.attempts
        assert result.model.contains_structure(DB)
        assert is_model(result.model, TERNARY_F1)
        assert not satisfies(result.model, query.boolean())

    def test_certain_ternary_query_detected(self):
        query = parse_query("T('c', u, w)")
        result = build_finite_counter_model(
            TERNARY_F1, DB, query, PipelineConfig(chase_depths=(8,))
        )
        assert result.query_certain

    def test_model_keeps_ternary_database_atoms(self):
        query = parse_query("M(x,x)")
        config = PipelineConfig(chase_depths=(32,))
        result = build_finite_counter_model(TERNARY_F1, DB, query, config)
        from repro.lf import parse_fact

        assert parse_fact("T(a, b, c)") in result.model
