"""End-to-end tests for the Theorem-2 pipeline (Section 3.3)."""

import pytest

from repro.chase import is_model
from repro.lf import parse_query, parse_structure, parse_theory, satisfies
from repro.core import (
    PipelineConfig,
    build_finite_counter_model,
    certify_counter_model,
)
from repro.errors import NotBinaryError

EXAMPLE1 = parse_theory(
    """
    E(x,y) -> exists z. E(y,z)
    E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
    U(x,y) -> exists z. U(y,z)
    """
)
LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")
EXAMPLE7 = parse_theory(
    """
    E(x,y) -> exists z. E(y,z)
    E(x,y), E(u,y) -> R(x,u)
    """
)
DB = parse_structure("E(a,b)")


def assert_counter_model(result, theory, database, query):
    assert result.model is not None
    assert not result.query_certain
    assert certify_counter_model(result, theory, database, query)
    # explicit re-checks, belt and braces:
    assert result.model.contains_structure(database)
    assert is_model(result.model, theory)
    assert not satisfies(result.model, query.boolean())


class TestPipeline:
    def test_example1_no_triangle_query(self):
        query = parse_query("U(x,y)")
        result = build_finite_counter_model(EXAMPLE1, DB, query)
        assert_counter_model(result, EXAMPLE1, DB, query)
        assert result.model_size < 60

    def test_linear_loop_query(self):
        query = parse_query("E(x,x)")
        result = build_finite_counter_model(LINEAR, DB, query)
        assert_counter_model(result, LINEAR, DB, query)

    def test_example7_theory(self):
        query = parse_query("R(x,u), P(u,w)")
        result = build_finite_counter_model(EXAMPLE7, DB, query)
        assert_counter_model(result, EXAMPLE7, DB, query)
        assert result.kappa == 3  # Example 7's rewriting width

    def test_certain_query_detected(self):
        query = parse_query("E(x,y), E(y,z)")
        result = build_finite_counter_model(LINEAR, DB, query)
        assert result.query_certain
        assert result.model is None

    def test_saturating_theory_shortcut(self):
        theory = parse_theory("E(x,y) -> exists z. R(y,z)")
        query = parse_query("R(x,y), R(y,z)")
        result = build_finite_counter_model(theory, DB, query)
        assert_counter_model(result, theory, DB, query)

    def test_datalog_only_theory(self):
        theory = parse_theory(
            """
            E(x,y) -> S(y,x)
            S(x,y) -> B(x,y)
            """
        )
        query = parse_query("B(x,x)")
        result = build_finite_counter_model(theory, DB, query)
        assert_counter_model(result, theory, DB, query)

    def test_non_bdd_theory_raises(self):
        """Transitivity is not FO-rewritable: κ cannot be certified and
        the pipeline refuses (Theorem 2 needs the BDD premise)."""
        from repro.errors import RewritingBudgetExceeded
        from repro.rewriting import RewriteConfig

        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        config = PipelineConfig(rewrite=RewriteConfig(max_steps=500, max_queries=100))
        with pytest.raises(RewritingBudgetExceeded):
            build_finite_counter_model(theory, DB, parse_query("E(x,x)"), config)

    def test_nonbinary_rejected(self):
        theory = parse_theory("P(x,y,z) -> exists w. P(y,z,w)")
        with pytest.raises(NotBinaryError):
            build_finite_counter_model(theory, DB, parse_query("P(x,y,z)"))

    def test_bigger_database(self):
        database = parse_structure("E(a,b)\nE(b,c)\nE(d,e)\nU0(d)")
        query = parse_query("E(x,x)")
        result = build_finite_counter_model(LINEAR, database, query)
        assert_counter_model(result, LINEAR, database, query)

    def test_two_tgp_tree_theory(self):
        theory = parse_theory(
            """
            F(x,y) -> exists z. F(y,z)
            F(x,y) -> exists z. G(y,z)
            G(x,y) -> exists z. F(y,z)
            G(x,y) -> exists z. G(y,z)
            """
        )
        database = parse_structure("F(a,b)")
        query = parse_query("F(x,y), G(x,y)")
        # the chase is an exponentially growing tree: pin the depth that
        # is known sufficient instead of walking the default schedule
        config = PipelineConfig(chase_depths=(10,))
        result = build_finite_counter_model(theory, database, query, config)
        assert_counter_model(result, theory, database, query)

    def test_attempts_recorded(self):
        query = parse_query("E(x,x)")
        result = build_finite_counter_model(EXAMPLE7, DB, query)
        # the shallow depths fail with embargo violations before success
        assert isinstance(result.attempts, list)

    def test_model_smaller_than_chase_budget(self):
        """The point of the theorem: the model is small and finite even
        though the chase is infinite."""
        query = parse_query("E(x,x)")
        result = build_finite_counter_model(LINEAR, DB, query)
        assert result.model_size <= result.skeleton_size
