"""Unit tests for repro.lf.parser."""

import pytest

from repro.errors import ParseError
from repro.lf import (
    Constant,
    Variable,
    atom,
    parse_atom,
    parse_fact,
    parse_facts,
    parse_query,
    parse_rule,
    parse_structure,
    parse_theory,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestAtoms:
    def test_plain_atom(self):
        assert parse_atom("E(x, y)") == atom("E", x, y)

    def test_quoted_constant(self):
        assert parse_atom("E(x, 'a')") == atom("E", x, a)

    def test_declared_constant(self):
        assert parse_atom("E(x, a)", constants=["a"]) == atom("E", x, a)

    def test_nullary_atom(self):
        assert parse_atom("Flag()") == atom("Flag")

    def test_equality_atom(self):
        assert parse_atom("x = 'a'") == atom("=", x, a)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("E(x, y) E")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("E(x, y")

    def test_weird_character_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("E(x; y)")


class TestRules:
    def test_implicit_existential(self):
        r = parse_rule("E(x,y) -> E(y,z)")
        assert r.existential_variables() == {z}

    def test_explicit_existential_checked(self):
        r = parse_rule("E(x,y) -> exists z. E(y,z)")
        assert r.existential_variables() == {z}

    def test_explicit_existential_mismatch(self):
        with pytest.raises(ParseError):
            parse_rule("E(x,y) -> exists x. E(y,z)")

    def test_unicode_arrow_and_exists(self):
        r = parse_rule("E(x,y) ⇒ ∃ z. E(y,z)")
        assert r.existential_variables() == {z}

    def test_multiple_existentials(self):
        r = parse_rule("E(x,y) -> exists z, w. R(z, w)")
        assert len(r.existential_variables()) == 2

    def test_datalog_rule(self):
        r = parse_rule("E(x,y), E(y,z) -> E(x,z)")
        assert r.is_datalog
        assert len(r.body) == 2

    def test_multi_head(self):
        r = parse_rule("E(x,y) -> U(x), U(y)")
        assert len(r.head) == 2

    def test_ampersand_separator(self):
        r = parse_rule("E(x,y) & E(y,z) -> E(x,z)")
        assert len(r.body) == 2

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_rule("E(x,y) E(y,z)")


class TestTheories:
    def test_comments_and_blanks_skipped(self):
        theory = parse_theory(
            """
            # a comment
            E(x,y) -> exists z. E(y,z)

            % another comment
            E(x,y), E(y,z) -> E(x,z)  // trailing comment
            """
        )
        assert len(theory) == 2

    def test_line_number_in_error(self):
        with pytest.raises(ParseError) as excinfo:
            parse_theory("E(x,y) -> E(y,z)\nE(x,y) ->")
        assert "line 2" in str(excinfo.value)

    def test_labels_record_lines(self):
        theory = parse_theory("E(x,y) -> E(y,z)")
        assert theory[0].label.startswith("line")


class TestFactsAndStructures:
    def test_fact_all_constants(self):
        assert parse_fact("E(a, b)") == atom("E", a, b)

    def test_fact_trailing_dot(self):
        assert parse_fact("E(a, b).") == atom("E", a, b)

    def test_equality_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("a = b")

    def test_facts_multiline_and_comma(self):
        facts = parse_facts("E(a,b), E(b,c)\nU(a)")
        assert len(facts) == 3

    def test_structure(self):
        s = parse_structure("E(a,b)\nE(b,c)")
        assert s.domain() == {a, b, Constant("c")}
        assert len(s) == 2

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_facts("E(a,b)\nE(a,")
        assert "line 2" in str(excinfo.value)


class TestQueries:
    def test_free_variables_in_order(self):
        q = parse_query("E(x,y), E(y,z)", free=["y", "x"])
        assert q.free == (y, x)

    def test_prime_in_names(self):
        q = parse_query("E(x', x'')")
        assert q.width == 2
