"""Unit tests for repro.lf.structures."""

import pytest

from repro.errors import ArityError, SignatureError
from repro.lf import Atom, Constant, Null, Signature, Structure, Variable, atom

a, b, c = Constant("a"), Constant("b"), Constant("c")
n0, n1 = Null(0), Null(1)


def chain(*elements, pred="E"):
    """A directed chain structure over the given elements."""
    return Structure(
        atom(pred, left, right) for left, right in zip(elements, elements[1:])
    )


class TestBasics:
    def test_add_and_membership(self):
        s = Structure()
        assert s.add_fact(atom("E", a, b))
        assert not s.add_fact(atom("E", a, b))  # duplicate
        assert atom("E", a, b) in s
        assert atom("E", b, a) not in s

    def test_facts_with_variables_rejected(self):
        with pytest.raises(ValueError):
            Structure([atom("E", a, Variable("x"))])

    def test_domain_gathers_arguments(self):
        s = Structure([atom("E", a, n0)])
        assert s.domain() == {a, n0}
        assert s.domain_size == 2

    def test_isolated_elements(self):
        s = Structure([atom("E", a, b)], domain=[c])
        assert c in s.domain()
        assert s.degree(c) == 0

    def test_len_counts_facts(self):
        assert len(chain(a, b, c)) == 2

    def test_signature_grows(self):
        s = Structure([atom("E", a, b)])
        s.add_fact(atom("U", a))
        assert s.signature.arity("U") == 1
        assert a in s.signature.constants

    def test_strict_mode_rejects_unknown(self):
        s = Structure(signature=Signature.make({"E": 2}), strict=True)
        with pytest.raises(SignatureError):
            s.add_fact(atom("U", a))

    def test_arity_clash_rejected(self):
        s = Structure([atom("E", a, b)])
        with pytest.raises(ArityError):
            s.add_fact(atom("E", a))

    def test_discard_fact(self):
        s = chain(a, b, c)
        assert s.discard_fact(atom("E", a, b))
        assert atom("E", a, b) not in s
        assert not s.discard_fact(atom("E", a, b))
        # index is updated too
        assert not s.facts_with("E", 0, a)


class TestIndexes:
    def test_facts_with_pred(self):
        s = Structure([atom("E", a, b), atom("U", a)])
        assert s.facts_with_pred("E") == {atom("E", a, b)}

    def test_facts_with_position(self):
        s = chain(a, b, c)
        assert s.facts_with("E", 1, b) == {atom("E", a, b)}
        assert s.facts_with("E", 0, b) == {atom("E", b, c)}

    def test_facts_about(self):
        s = chain(a, b, c)
        assert s.facts_about(b) == {atom("E", a, b), atom("E", b, c)}

    def test_degree_matches_lemma3_measure(self):
        s = chain(a, b, c)
        assert s.degree(b) == 2
        assert s.degree(a) == 1


class TestGraphView:
    def test_successors_predecessors(self):
        s = chain(a, b, c)
        assert s.successors(a) == {b}
        assert s.predecessors(c) == {b}
        assert s.successors(c) == frozenset()

    def test_successors_by_predicate(self):
        s = Structure([atom("E", a, b), atom("R", a, c)])
        assert s.successors(a, "E") == {b}
        assert s.successors(a) == {b, c}

    def test_neighbours(self):
        s = Structure([atom("E", a, b), atom("R", c, a)])
        assert s.neighbours(a) == {b, c}


class TestPaperNotation:
    def test_constant_and_nonconstant_elements(self):
        s = Structure([atom("E", a, n0), atom("E", n0, n1)])
        assert s.constant_elements() == {a}
        assert s.nonconstant_elements() == {n0, n1}

    def test_restrict_elements(self):
        s = chain(a, b, c)
        restricted = s.restrict_elements([a, b])
        assert restricted.facts() == {atom("E", a, b)}
        assert restricted.domain() == {a, b}

    def test_restrict_signature_keeps_domain(self):
        s = Structure([atom("E", a, b), atom("K", a)])
        restricted = s.restrict_signature(["E"])
        assert restricted.facts() == {atom("E", a, b)}
        assert restricted.domain() == s.domain()

    def test_contains_structure(self):
        big = chain(a, b, c)
        small = chain(a, b)
        assert big.contains_structure(small)
        assert not small.contains_structure(big)

    def test_same_facts(self):
        assert chain(a, b).same_facts(chain(a, b))
        assert not chain(a, b).same_facts(chain(b, a))


class TestCopy:
    def test_copy_is_independent(self):
        original = chain(a, b)
        duplicate = original.copy()
        duplicate.add_fact(atom("E", b, c))
        assert atom("E", b, c) not in original
        assert atom("E", b, c) in duplicate

    def test_copy_preserves_isolated_elements(self):
        original = Structure([atom("E", a, b)], domain=[c])
        assert c in original.copy().domain()

    def test_eq_compares_facts_and_domain(self):
        assert chain(a, b) == chain(a, b)
        assert chain(a, b) != Structure([atom("E", a, b)], domain=[c])
