"""Unit tests for repro.lf.queries."""

import pytest

from repro.lf import (
    ConjunctiveQuery,
    Constant,
    UnionOfConjunctiveQueries,
    Variable,
    align_free,
    atom,
    cq,
    parse_query,
)

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a = Constant("a")


class TestConstruction:
    def test_atoms_deduplicated(self):
        q = cq([atom("E", x, y), atom("E", x, y)])
        assert len(q) == 1

    def test_free_variable_must_occur(self):
        with pytest.raises(ValueError):
            cq([atom("E", x, y)], free=(z,))

    def test_repeated_free_rejected(self):
        with pytest.raises(ValueError):
            cq([atom("E", x, y)], free=(x, x))

    def test_width_counts_distinct_variables(self):
        q = cq([atom("E", x, y), atom("E", y, z)])
        assert q.width == 3

    def test_boolean_flag(self):
        assert cq([atom("E", x, y)]).is_boolean
        assert not cq([atom("E", x, y)], free=(x,)).is_boolean


class TestInspection:
    def test_variable_partition(self):
        q = cq([atom("E", x, y), atom("U", z)], free=(x,))
        assert q.variables() == {x, y, z}
        assert q.existential_variables() == {y, z}

    def test_constants(self):
        q = cq([atom("E", x, a)])
        assert q.constants() == {a}

    def test_relation_names_skip_equality(self):
        q = cq([atom("E", x, y), atom("=", x, a)])
        assert q.relation_names() == {"E"}


class TestTransformation:
    def test_substitute_to_constant_drops_free(self):
        q = cq([atom("E", x, y)], free=(x, y))
        substituted = q.substitute({x: a})
        assert substituted.free == (y,)
        assert atom("E", a, y) in substituted.atoms

    def test_substitute_renames_free(self):
        q = cq([atom("E", x, y)], free=(x,))
        renamed = q.substitute({x: z})
        assert renamed.free == (z,)

    def test_conjoin_merges(self):
        left = cq([atom("E", x, y)], free=(x,))
        right = cq([atom("U", x)], free=(x,))
        joined = left.conjoin(right)
        assert len(joined) == 2
        assert joined.free == (x,)

    def test_boolean_closure(self):
        q = cq([atom("E", x, y)], free=(x,)).boolean()
        assert q.is_boolean

    def test_rename_apart(self):
        q = cq([atom("E", x, y)])
        renamed = q.rename_apart([x])
        assert x not in renamed.variables()
        assert len(renamed.variables()) == 2

    def test_rename_apart_noop(self):
        q = cq([atom("E", x, y)])
        assert q.rename_apart([z]) == q

    def test_substitute_collapsing_free_variables_raises(self):
        # Regression: mapping two free variables to the same variable
        # used to silently shrink the free tuple from (x, y) to (z,),
        # changing the query's arity.
        q = cq([atom("E", x, y)], free=(x, y))
        with pytest.raises(ValueError):
            q.substitute({x: z, y: z})

    def test_substitute_free_onto_existing_free_raises(self):
        q = cq([atom("E", x, y)], free=(x, y))
        with pytest.raises(ValueError):
            q.substitute({x: y})

    def test_substitute_swap_free_variables_ok(self):
        # Simultaneous application: a swap is injective on the free
        # tuple and must keep working.
        q = cq([atom("E", x, y)], free=(x, y))
        swapped = q.substitute({x: y, y: x})
        assert swapped.free == (y, x)
        assert atom("E", y, x) in swapped.atoms


class TestAlignFree:
    def test_plain_rename(self):
        q = cq([atom("E", x, y)], free=(x,))
        aligned = align_free(q, (z,))
        assert aligned.free == (z,)
        assert atom("E", z, y) in aligned.atoms

    def test_noop_when_already_aligned(self):
        q = cq([atom("E", x, y)], free=(x,))
        assert align_free(q, (x,)) is q

    def test_existential_clash_renamed_apart(self):
        # Regression: aligning ∃x R(x,z) with free (z,) onto target (x,)
        # used to capture the existential, yielding R(x,x).
        q = cq([atom("R", x, z)], free=(z,))
        aligned = align_free(q, (x,))
        assert aligned.free == (x,)
        (only,) = aligned.atoms
        assert only.pred == "R"
        first, second = only.args
        assert second == x
        assert first != x  # the existential stayed distinct

    def test_arity_mismatch_rejected(self):
        q = cq([atom("E", x, y)], free=(x,))
        with pytest.raises(ValueError):
            align_free(q, (x, y))

    def test_free_swap(self):
        q = cq([atom("E", x, y)], free=(x, y))
        aligned = align_free(q, (y, x))
        assert aligned.free == (y, x)
        assert atom("E", y, x) in aligned.atoms


class TestCanonical:
    def test_canonical_identifies_renamings(self):
        left = cq([atom("E", x, y), atom("E", y, z)])
        right = cq([atom("E", w, x), atom("E", x, z)])
        assert left.canonical() == right.canonical()

    def test_canonical_distinguishes_structure(self):
        path = cq([atom("E", x, y), atom("E", y, z)])
        fork = cq([atom("E", x, y), atom("E", x, z)])
        assert path.canonical() != fork.canonical()

    def test_canonical_respects_free_vars(self):
        q1 = cq([atom("E", x, y)], free=(x,))
        q2 = cq([atom("E", x, y)], free=(y,))
        assert q1.canonical() != q2.canonical()

    def test_canonical_idempotent(self):
        q = cq([atom("E", x, y), atom("R", y, z), atom("E", z, x)])
        assert q.canonical() == q.canonical().canonical()


class TestUCQ:
    def test_dedup_by_canonical_form(self):
        u = UnionOfConjunctiveQueries(
            [cq([atom("E", x, y)]), cq([atom("E", z, w)])]
        )
        assert len(u) == 1

    def test_free_alignment(self):
        u = UnionOfConjunctiveQueries(
            [cq([atom("E", x, y)], free=(x,)), cq([atom("U", z)], free=(z,))]
        )
        assert u.free == (x,)
        assert all(d.free == (x,) for d in u)

    def test_mismatched_free_arity_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries(
                [cq([atom("E", x, y)], free=(x,)), cq([atom("E", x, y)], free=(x, y))]
            )

    def test_max_width(self):
        u = UnionOfConjunctiveQueries(
            [cq([atom("E", x, y)]), cq([atom("E", x, y), atom("E", y, z)])]
        )
        assert u.max_width == 3

    def test_empty_union(self):
        u = UnionOfConjunctiveQueries([])
        assert len(u) == 0
        assert str(u) == "false"

    def test_alignment_avoids_existential_capture(self):
        # Regression: the second disjunct ∃x R(x,z) with free (z,) used
        # to be aligned to the lead's free (x,) by a bare substitution,
        # collapsing it to R(x,x).
        u = UnionOfConjunctiveQueries(
            [
                cq([atom("R", x, x)], free=(x,)),
                cq([atom("R", x, z)], free=(z,)),
            ]
        )
        assert len(u) == 2
        second = u.disjuncts[1]
        assert second.free == (x,)
        (only,) = second.atoms
        assert only.args[0] != only.args[1]

    def test_equality_up_to_renaming(self):
        left = UnionOfConjunctiveQueries([cq([atom("E", x, y)])])
        right = UnionOfConjunctiveQueries([cq([atom("E", z, w)])])
        assert left == right
        assert hash(left) == hash(right)


class TestParsing:
    def test_parse_roundtrip(self):
        q = parse_query("E(x,y), E(y,z)", free=["x"])
        assert q.free == (x,)
        assert q.width == 3

    def test_parse_with_constants(self):
        q = parse_query("E(x, 'a')")
        assert q.constants() == {a}
