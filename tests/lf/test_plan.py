"""Unit tests for repro.lf.plan — compiled join plans and HomStats."""

import pytest

from repro.lf import (
    Constant,
    HOM_STATS,
    HomStats,
    Null,
    PlanCache,
    Structure,
    Variable,
    atom,
    clear_plan_cache,
    compile_plan,
    plan_for,
)
x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def bindings_set(plan, structure, binding=None):
    return {frozenset(found.items()) for found in plan.bindings(structure, binding)}


class TestCompile:
    def test_constant_becomes_lookup_and_check(self):
        plan = compile_plan((atom("E", a, x),))
        (step,) = plan.steps
        assert step.lookups == ((0, a, None),)
        consts, checks, sames, binds = step.full
        assert consts == ((0, a),)
        assert binds == ((1, x),)

    def test_prebound_variable_is_checked_not_bound(self):
        plan = compile_plan((atom("E", x, y),), prebound={x})
        (step,) = plan.steps
        assert (0, None, x) in step.lookups
        consts, checks, sames, binds = step.full
        assert checks == ((0, x),)
        assert binds == ((1, y),)

    def test_repeated_variable_binds_once_then_checks_positions(self):
        plan = compile_plan((atom("E", x, x),))
        (step,) = plan.steps
        consts, checks, sames, binds = step.full
        assert binds == ((0, x),)
        assert sames == ((0, 1),)

    def test_variant_drops_the_guaranteed_check(self):
        # The bucket for a lookup position already filters on that
        # position, so its variant omits the corresponding test.
        plan = compile_plan((atom("E", a, x),))
        (step,) = plan.steps
        consts, checks, sames, binds = step.variants[0]
        assert consts == ()
        assert binds == ((1, x),)

    def test_most_constrained_atom_ordered_first(self):
        # U(x) has one unbound variable, E(y,z) has two: U leads.
        plan = compile_plan((atom("E", y, z), atom("U", x)))
        assert [s.pred for s in plan.steps] == ["U", "E"]

    def test_cardinality_breaks_ties(self):
        s = Structure(
            [atom("E", a, b), atom("E", b, c), atom("R", a, b)]
        )
        # Both atoms have two unbound variables; R has fewer facts.
        plan = compile_plan((atom("E", x, y), atom("R", z, y)), structure=s)
        assert plan.steps[0].pred == "R"

    def test_equality_atom_rejected(self):
        with pytest.raises(ValueError):
            compile_plan((atom("=", x, a),))

    def test_plan_valid_on_any_structure(self):
        # Statistics steer ordering only: a plan compiled against one
        # structure answers correctly on another.
        small = Structure([atom("E", a, b)])
        plan = compile_plan((atom("E", x, y),), structure=small)
        other = Structure([atom("E", b, c), atom("E", c, a)])
        assert bindings_set(plan, other) == {
            frozenset({(x, b), (y, c)}),
            frozenset({(x, c), (y, a)}),
        }


class TestEvaluation:
    def test_empty_plan_yields_initial_binding(self):
        plan = compile_plan(())
        assert list(plan.bindings(Structure())) == [{}]

    def test_join_answers(self):
        s = Structure([atom("E", a, b), atom("E", b, c)])
        plan = compile_plan((atom("E", x, y), atom("E", y, z)))
        assert bindings_set(plan, s) == {
            frozenset({(x, a), (y, b), (z, c)})
        }

    def test_prebinding_restricts_answers(self):
        s = Structure([atom("E", a, b), atom("E", b, c)])
        plan = compile_plan((atom("E", x, y),), prebound={x})
        assert bindings_set(plan, s, {x: b}) == {frozenset({(x, b), (y, c)})}

    def test_empty_bucket_short_circuits(self):
        s = Structure([atom("E", a, b)])
        plan = compile_plan((atom("E", c, x),))
        assert list(plan.bindings(s)) == []

    def test_generator_restarts_cleanly(self):
        s = Structure([atom("E", a, b), atom("E", a, c)])
        plan = compile_plan((atom("E", x, y),))
        first = bindings_set(plan, s)
        second = bindings_set(plan, s)
        assert first == second and len(first) == 2


class TestPlanCache:
    def test_hit_on_same_shape(self):
        cache = PlanCache()
        atoms = (atom("E", x, y),)
        first = cache.plan_for(atoms, frozenset())
        second = cache.plan_for(atoms, frozenset())
        assert first is second
        assert len(cache) == 1

    def test_prebound_distinguishes_entries(self):
        cache = PlanCache()
        atoms = (atom("E", x, y),)
        free_plan = cache.plan_for(atoms, frozenset())
        bound_plan = cache.plan_for(atoms, frozenset({x}))
        assert free_plan is not bound_plan
        assert len(cache) == 2

    def test_wholesale_clear_when_full(self):
        cache = PlanCache(maxsize=2)
        cache.plan_for((atom("E", x, y),), frozenset())
        cache.plan_for((atom("R", x, y),), frozenset())
        cache.plan_for((atom("S", x, y),), frozenset())
        assert len(cache) == 1

    def test_global_cache_counts_stats(self):
        clear_plan_cache()
        before = HOM_STATS.snapshot()
        atoms = (atom("E", x, Null(99)),)
        plan_for(atoms)
        plan_for(atoms)
        delta = HOM_STATS.since(before)
        assert delta.plan_cache_misses == 1
        assert delta.plan_cache_hits == 1
        assert delta.plans_compiled == 1
        assert delta.plan_requests == 2


class TestHomStats:
    def test_snapshot_is_independent(self):
        stats = HomStats(index_probes=3)
        copy = stats.snapshot()
        stats.index_probes = 7
        assert copy.index_probes == 3

    def test_since_diffs_every_field(self):
        earlier = HomStats(plan_cache_hits=1, index_probes=10, backtracks=2)
        later = HomStats(plan_cache_hits=4, index_probes=25, backtracks=2)
        delta = later.since(earlier)
        assert delta.plan_cache_hits == 3
        assert delta.index_probes == 15
        assert delta.backtracks == 0

    def test_as_dict_modes(self):
        stats = HomStats(plan_cache_hits=2, plan_cache_misses=1, index_probes=5)
        full = stats.as_dict()
        assert full["plan_requests"] == 3
        assert full["plan_cache_hits"] == 2
        bare = stats.as_dict(cache=False)
        assert bare["plan_requests"] == 3
        assert "plan_cache_hits" not in bare
        assert "plans_compiled" not in bare

    def test_matcher_counters_move(self):
        s = Structure([atom("E", a, b), atom("E", b, c)])
        plan = compile_plan((atom("E", x, y), atom("E", y, z)))
        before = HOM_STATS.snapshot()
        list(plan.bindings(s))
        delta = HOM_STATS.since(before)
        assert delta.candidates_scanned > 0
        assert delta.index_probes > 0
        assert delta.backtracks > 0
