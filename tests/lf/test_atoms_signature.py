"""Unit tests for repro.lf.atoms and repro.lf.signature."""

import pytest

from repro.errors import ArityError, NotBinaryError, SignatureError
from repro.lf import Atom, Constant, Null, Signature, Variable, atom

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestAtom:
    def test_construction_and_arity(self):
        fact = atom("E", a, b)
        assert fact.pred == "E"
        assert fact.arity == 2

    def test_equality(self):
        assert atom("E", x, y) == Atom("E", (x, y))
        assert atom("E", x, y) != atom("E", y, x)

    def test_variables_and_constants(self):
        mixed = atom("R", x, a, y, x)
        assert list(mixed.variables()) == [x, y, x]
        assert mixed.variable_set() == {x, y}
        assert list(mixed.constants()) == [a]

    def test_is_fact(self):
        assert atom("E", a, Null(0)).is_fact
        assert not atom("E", a, x).is_fact

    def test_substitute(self):
        assert atom("E", x, y).substitute({x: a}) == atom("E", a, y)

    def test_substitute_leaves_original(self):
        original = atom("E", x, y)
        original.substitute({x: a})
        assert original == atom("E", x, y)

    def test_equality_atom(self):
        eq = atom("=", x, a)
        assert eq.is_equality
        assert str(eq) == "x = a"

    def test_str(self):
        assert str(atom("E", x, a)) == "E(x, a)"

    def test_rename_predicate(self):
        assert atom("E", x, y).rename_predicate("F") == atom("F", x, y)

    def test_empty_pred_rejected(self):
        with pytest.raises(ValueError):
            Atom("", (x,))


class TestSignature:
    def test_make_and_lookup(self):
        sig = Signature.make({"E": 2, "U": 1}, [a])
        assert sig.arity("E") == 2
        assert "E" in sig
        assert "Q" not in sig
        assert a in sig

    def test_unknown_relation_raises(self):
        with pytest.raises(SignatureError):
            Signature.make({"E": 2}).arity("F")

    def test_equality_reserved(self):
        with pytest.raises(SignatureError):
            Signature.make({"=": 2})

    def test_of_atoms(self):
        sig = Signature.of_atoms([atom("E", x, a), atom("U", y)])
        assert sig.arity("E") == 2
        assert sig.arity("U") == 1
        assert a in sig.constants

    def test_of_atoms_arity_clash(self):
        with pytest.raises(ArityError):
            Signature.of_atoms([atom("E", x, y), atom("E", x)])

    def test_of_atoms_skips_equality(self):
        sig = Signature.of_atoms([atom("=", x, a)])
        assert not sig.relation_names()
        assert a in sig.constants

    def test_unary_binary_split(self):
        sig = Signature.make({"E": 2, "U": 1, "P": 3})
        assert sig.unary_relations() == {"U"}
        assert sig.binary_relations() == {"E"}
        assert sig.max_arity == 3

    def test_is_binary(self):
        assert Signature.make({"E": 2, "U": 1}).is_binary
        assert not Signature.make({"P": 3}).is_binary

    def test_require_binary(self):
        with pytest.raises(NotBinaryError):
            Signature.make({"P": 3}).require_binary()
        sig = Signature.make({"E": 2})
        assert sig.require_binary() is sig

    def test_with_relations_merge(self):
        sig = Signature.make({"E": 2}).with_relations({"U": 1})
        assert sig.arity("U") == 1
        assert sig.arity("E") == 2

    def test_with_relations_conflict(self):
        with pytest.raises(ArityError):
            Signature.make({"E": 2}).with_relations({"E": 3})

    def test_union(self):
        left = Signature.make({"E": 2}, [a])
        right = Signature.make({"U": 1}, [b])
        combined = left.union(right)
        assert combined.relation_names() == {"E", "U"}
        assert combined.constants == {a, b}

    def test_restrict_and_drop(self):
        sig = Signature.make({"E": 2, "U": 1}, [a])
        assert sig.restrict_to(["E"]).relation_names() == {"E"}
        assert sig.without_relations(["E"]).relation_names() == {"U"}
        # constants survive restriction
        assert a in sig.restrict_to(["E"]).constants

    def test_fresh_relation_name(self):
        sig = Signature.make({"F": 2, "F_0": 1})
        assert sig.fresh_relation_name("F") == "F_1"
        assert sig.fresh_relation_name("G") == "G"

    def test_hashable(self):
        assert len({Signature.make({"E": 2}), Signature.make({"E": 2})}) == 1
