"""Unit tests for repro.lf.rules."""

import pytest

from repro.errors import RuleError
from repro.lf import Constant, Rule, Theory, Variable, atom, parse_theory, rule

x, y, z, t = Variable("x"), Variable("y"), Variable("z"), Variable("t")
a = Constant("a")


class TestRule:
    def test_datalog_vs_existential(self):
        datalog = rule([atom("E", x, y)], atom("R", y, x))
        tgd = rule([atom("E", x, y)], atom("E", y, z))
        assert datalog.is_datalog and not datalog.is_existential
        assert tgd.is_existential and not tgd.is_datalog

    def test_existential_variables(self):
        tgd = rule([atom("E", x, y)], atom("R", y, z))
        assert tgd.existential_variables() == {z}
        assert tgd.frontier() == {y}

    def test_empty_body_rejected(self):
        with pytest.raises(RuleError):
            Rule((), (atom("E", x, y),))

    def test_empty_head_rejected(self):
        with pytest.raises(RuleError):
            Rule((atom("E", x, y),), ())

    def test_equality_in_head_rejected(self):
        with pytest.raises(RuleError):
            rule([atom("E", x, y)], atom("=", x, y))

    def test_head_atom_single(self):
        tgd = rule([atom("E", x, y)], atom("E", y, z))
        assert tgd.head_atom == atom("E", y, z)

    def test_head_atom_multi_raises(self):
        multi = Rule((atom("E", x, y),), (atom("U", x), atom("U", y)))
        with pytest.raises(RuleError):
            multi.head_atom

    def test_body_query_defaults_to_frontier(self):
        tgd = rule([atom("E", x, y), atom("E", y, z)], atom("R", y, t))
        q = tgd.body_query()
        assert q.free == (y,)
        assert q.width == 3

    def test_substitute(self):
        tgd = rule([atom("E", x, y)], atom("E", y, z))
        ground = tgd.substitute({x: a})
        assert atom("E", a, y) in ground.body

    def test_rename_apart(self):
        tgd = rule([atom("E", x, y)], atom("E", y, z))
        renamed = tgd.rename_apart([x, y, z])
        assert not (renamed.variables() & {x, y, z})
        # structure preserved: still one existential variable
        assert len(renamed.existential_variables()) == 1

    def test_split_heads_datalog(self):
        multi = Rule((atom("E", x, y),), (atom("U", x), atom("U", y)))
        parts = multi.split_heads()
        assert len(parts) == 2
        assert all(p.is_single_head for p in parts)

    def test_split_heads_existential_raises(self):
        multi = Rule((atom("E", x, y),), (atom("R", y, z), atom("U", z)))
        with pytest.raises(RuleError):
            multi.split_heads()

    def test_str_shows_existentials(self):
        tgd = rule([atom("E", x, y)], atom("E", y, z))
        assert "exists z." in str(tgd)

    def test_equality_ignores_label_and_order(self):
        left = Rule((atom("E", x, y), atom("U", x)), (atom("R", x, y),), "one")
        right = Rule((atom("U", x), atom("E", x, y)), (atom("R", x, y),), "two")
        assert left == right
        assert hash(left) == hash(right)


class TestTheory:
    EXAMPLE1 = """
    E(x,y) -> exists z. E(y,z)
    E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
    U(x,y) -> exists z. U(y,z)
    """

    def test_parse_and_partition(self):
        theory = parse_theory(self.EXAMPLE1)
        assert len(theory) == 3
        assert len(theory.tgds()) == 3
        assert not theory.datalog_rules()

    def test_signature_inferred(self):
        theory = parse_theory(self.EXAMPLE1)
        assert theory.signature.arity("E") == 2
        assert theory.is_binary

    def test_tgp_predicates(self):
        theory = parse_theory(self.EXAMPLE1)
        assert theory.tgp_predicates() == {"E", "U"}

    def test_max_body_width(self):
        theory = parse_theory(self.EXAMPLE1)
        assert theory.max_body_width() == 3

    def test_with_rules_dedup(self):
        theory = parse_theory(self.EXAMPLE1)
        again = theory.with_rules(theory.rules)
        assert len(again) == 3

    def test_without_predicates(self):
        theory = parse_theory(self.EXAMPLE1)
        trimmed = theory.without_predicates(["U"])
        assert len(trimmed) == 1
        assert trimmed.predicates() == {"E"}

    def test_spade5_detection_good(self):
        # Already in (♠5) form: witness second, E not in datalog heads.
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        assert theory.satisfies_spade5

    def test_spade5_detection_witness_first(self):
        theory = parse_theory("E(x,y) -> exists z. E(z,y)")
        assert not theory.satisfies_spade5

    def test_spade5_detection_tgp_in_datalog_head(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            R(x,y) -> E(x,y)
            """
        )
        violations = theory.spade5_violations()
        assert any("TGP" in v for v in violations)

    def test_spade5_detection_unary_head(self):
        theory = Theory([rule([atom("E", x, y)], atom("U", z))])
        assert not theory.satisfies_spade5

    def test_theory_equality(self):
        left = parse_theory(self.EXAMPLE1)
        right = parse_theory(self.EXAMPLE1)
        assert left == right
        assert hash(left) == hash(right)
