"""Tests for serialisation and export (repro.lf.io)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import ParseError
from repro.lf import (
    Constant,
    Null,
    Structure,
    atom,
    element_from_value,
    element_to_value,
    parse_rule,
    parse_structure,
    parse_theory,
    rule_to_text,
    structure_from_dict,
    structure_to_dict,
    theory_to_text,
    to_dot,
)

a, b = Constant("a"), Constant("b")
n0, n1 = Null(0), Null(1)


class TestElements:
    def test_constant_roundtrip(self):
        assert element_from_value(element_to_value(a)) == a

    def test_null_roundtrip_with_provenance(self):
        null = Null(7, rule_index=2, level=5)
        back = element_from_value(element_to_value(null))
        assert back == null
        assert back.rule_index == 2 and back.level == 5

    def test_bad_value_rejected(self):
        with pytest.raises(ParseError):
            element_from_value({"weird": 1})


class TestStructureDicts:
    def test_roundtrip_with_isolated(self):
        structure = Structure([atom("E", a, n0)], domain=[n1])
        data = structure_to_dict(structure)
        back = structure_from_dict(data)
        assert back.same_facts(structure)
        assert back.domain() == structure.domain()

    def test_json_compatible(self):
        structure = Structure([atom("E", a, n0), atom("U", b)])
        text = json.dumps(structure_to_dict(structure))
        back = structure_from_dict(json.loads(text))
        assert back.same_facts(structure)

    def test_deterministic(self):
        structure = parse_structure("E(a,b)\nE(b,c)\nU(a)")
        assert structure_to_dict(structure) == structure_to_dict(structure.copy())


class TestRuleText:
    def test_datalog_roundtrip(self):
        rule = parse_rule("E(x,y), E(y,z) -> E(x,z)")
        assert parse_rule(rule_to_text(rule)) == rule

    def test_existential_roundtrip(self):
        rule = parse_rule("E(x,y) -> exists z. E(y,z)")
        assert parse_rule(rule_to_text(rule)) == rule

    def test_constants_quoted(self):
        rule = parse_rule("E(x, 'a') -> E('a', x)")
        text = rule_to_text(rule)
        assert "'a'" in text
        assert parse_rule(text) == rule

    def test_theory_roundtrip(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(u,y) -> R(x,u)
            R(x, 'hub') -> Central(x)
            """
        )
        assert parse_theory(theory_to_text(theory)) == theory


class TestDot:
    def test_binary_edges_rendered(self):
        structure = parse_structure("E(a,b)\nU(a)")
        dot = to_dot(structure)
        assert "digraph" in dot
        assert 'label="E"' in dot
        assert "U" in dot  # unary folded into the node label
        assert "shape=box" in dot  # constants are boxes

    def test_nulls_are_ellipses(self):
        structure = Structure([atom("E", n0, n1)])
        dot = to_dot(structure)
        assert "shape=ellipse" in dot

    def test_highlight(self):
        structure = parse_structure("E(a,b)")
        dot = to_dot(structure, highlight={a: "red"})
        assert 'fillcolor="red"' in dot

    def test_ternary_as_comment(self):
        structure = parse_structure("T(a,b,c)")
        dot = to_dot(structure)
        assert "// T(a, b, c)" in dot
