"""Unit tests for repro.lf.homomorphism — the evaluation engine."""

import pytest

from repro.lf import (
    Constant,
    Null,
    Structure,
    Variable,
    all_answers,
    atom,
    count_homomorphisms,
    cq,
    find_homomorphism,
    homomorphisms,
    satisfies,
    structure_homomorphism,
    structures_hom_equivalent,
    structures_isomorphic,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")
n0, n1 = Null(0), Null(1)


def chain(*elements, pred="E"):
    return Structure(
        atom(pred, left, right) for left, right in zip(elements, elements[1:])
    )


def triangle(pred="E"):
    return Structure([atom(pred, a, b), atom(pred, b, c), atom(pred, c, a)])


class TestBasicMatching:
    def test_single_atom(self):
        s = chain(a, b)
        binding = find_homomorphism([atom("E", x, y)], s)
        assert binding == {x: a, y: b}

    def test_no_match(self):
        s = chain(a, b)
        assert find_homomorphism([atom("R", x, y)], s) is None

    def test_constants_must_match_themselves(self):
        s = chain(a, b)
        assert find_homomorphism([atom("E", a, y)], s) == {y: b}
        assert find_homomorphism([atom("E", b, y)], s) is None

    def test_repeated_variable(self):
        loop = Structure([atom("E", a, a), atom("E", a, b)])
        matches = list(homomorphisms([atom("E", x, x)], loop))
        assert matches == [{x: a}]

    def test_path_query(self):
        s = chain(a, b, c)
        assert satisfies(s, cq([atom("E", x, y), atom("E", y, z)]))
        assert not satisfies(chain(a, b), cq([atom("E", x, y), atom("E", y, z)]))

    def test_prebinding(self):
        s = chain(a, b, c)
        assert satisfies(s, cq([atom("E", x, y)], free=(x,)), {x: a})
        assert not satisfies(s, cq([atom("E", x, y)], free=(x,)), {x: c})

    def test_empty_query_is_true(self):
        assert satisfies(Structure(), cq([]))


class TestAllAnswers:
    def test_free_variable_answers(self):
        s = chain(a, b, c)
        answers = all_answers(s, cq([atom("E", x, y)], free=(x, y)))
        assert answers == {(a, b), (b, c)}

    def test_boolean_answers(self):
        s = chain(a, b)
        assert all_answers(s, cq([atom("E", x, y)])) == {()}
        assert all_answers(s, cq([atom("R", x, y)])) == set()

    def test_count_with_limit(self):
        s = triangle()
        assert count_homomorphisms([atom("E", x, y)], s) == 3
        assert count_homomorphisms([atom("E", x, y)], s, limit=2) == 2


class TestUCQAnswers:
    def test_alignment_regression_keeps_answers(self):
        # Regression: over {R(a,b)}, the disjunct ∃x R(x,z) (free z)
        # answers {(b,)}; aligning it to the lead's free (x,) by bare
        # substitution collapsed it to R(x,x), losing the answer.
        from repro.lf import UnionOfConjunctiveQueries

        u = UnionOfConjunctiveQueries(
            [
                cq([atom("R", x, x)], free=(x,)),
                cq([atom("R", x, z)], free=(z,)),
            ]
        )
        s = Structure([atom("R", a, b)])
        assert all_answers(s, u) == {(b,)}

    def test_union_collects_all_disjuncts(self):
        from repro.lf import UnionOfConjunctiveQueries

        u = UnionOfConjunctiveQueries(
            [
                cq([atom("E", x, y)], free=(x,)),
                cq([atom("R", z, y)], free=(z,)),
            ]
        )
        s = Structure([atom("E", a, b), atom("R", c, d)])
        assert all_answers(s, u) == {(a,), (c,)}


class TestEqualityAtoms:
    def test_variable_equals_constant(self):
        s = chain(a, b)
        q = cq([atom("E", x, y), atom("=", x, a)])
        assert satisfies(s, q)
        q_bad = cq([atom("E", x, y), atom("=", x, b)])
        assert not satisfies(s, q_bad)

    def test_ground_equality_checked(self):
        s = chain(a, b)
        assert not satisfies(s, cq([atom("E", x, y), atom("=", a, b)]))

    def test_variable_to_variable_unification(self):
        loop = Structure([atom("E", a, a)])
        q = cq([atom("E", x, y), atom("=", x, y)])
        assert satisfies(loop, q)
        assert not satisfies(chain(a, b), q)

    def test_inconsistent_prebinding(self):
        s = chain(a, b)
        q = cq([atom("E", x, y), atom("=", x, b)], free=(x,))
        assert not satisfies(s, q, {x: a})


class TestStructureHomomorphism:
    def test_chain_maps_into_triangle(self):
        source = Structure([atom("E", n0, n1)])
        mapping = structure_homomorphism(source, triangle())
        assert mapping is not None
        assert atom("E", mapping[n0], mapping[n1]) in triangle()

    def test_constants_are_fixed(self):
        # a chain on constants only maps to a superset of its own facts
        source = chain(a, b)
        target = chain(b, c)
        assert structure_homomorphism(source, target) is None
        assert structure_homomorphism(source, chain(a, b, c)) is not None

    def test_fixed_elements_respected(self):
        source = Structure([atom("E", n0, n1)])
        target = triangle()
        mapping = structure_homomorphism(source, target, fixed={n0: b})
        assert mapping[n0] == b
        assert mapping[n1] == c

    def test_no_homomorphism_triangle_into_chain(self):
        # The triangle has a directed cycle; a long chain does not.
        source = Structure([atom("E", n0, n1), atom("E", n1, Null(2)), atom("E", Null(2), n0)])
        assert structure_homomorphism(source, chain(a, b, c, d)) is None

    def test_hom_equivalence(self):
        left = Structure([atom("E", n0, n1)])
        right = Structure([atom("E", Null(5), Null(6)), atom("E", Null(6), Null(7))])
        # chain of length 1 and length 2 are hom-equivalent? No: 2-chain
        # maps onto 1-chain only if the 1-chain has a path of length 2.
        assert structure_homomorphism(left, right) is not None
        assert structure_homomorphism(right, left) is None
        assert not structures_hom_equivalent(left, right)

    def test_hom_equivalent_loops(self):
        loop = Structure([atom("E", n0, n0)])
        bigger = Structure([atom("E", n1, n1), atom("E", Null(2), n1)])
        assert structures_hom_equivalent(loop, bigger)


class TestIsomorphism:
    def test_triangle_isomorphic_to_relabelled_triangle(self):
        left = Structure([atom("E", n0, n1), atom("E", n1, Null(2)), atom("E", Null(2), n0)])
        right = Structure([atom("E", Null(7), Null(8)), atom("E", Null(8), Null(9)), atom("E", Null(9), Null(7))])
        assert structures_isomorphic(left, right)

    def test_different_shapes_not_isomorphic(self):
        path = Structure([atom("E", n0, n1), atom("E", n1, Null(2))])
        fork = Structure([atom("E", n0, n1), atom("E", n0, Null(2))])
        assert not structures_isomorphic(path, fork)

    def test_constants_pin_isomorphism(self):
        left = chain(a, b)
        right = chain(b, a)
        assert not structures_isomorphic(left, right)
        assert structures_isomorphic(left, chain(a, b))

    def test_isolated_elements_counted(self):
        left = Structure([atom("E", n0, n1)], domain=[Null(2)])
        right = Structure([atom("E", n0, n1)])
        assert not structures_isomorphic(left, right)

    def test_fact_count_fast_reject(self):
        assert not structures_isomorphic(chain(a, b), chain(a, b, c))


class TestHeuristics:
    def test_large_chain_query_on_large_chain(self):
        # A mild stress test: a 12-atom path query over a 300-element
        # chain; the index-driven matcher should handle this instantly.
        elements = [Null(i) for i in range(300)]
        s = Structure(atom("E", u, v) for u, v in zip(elements, elements[1:]))
        variables = [Variable(f"v{i}") for i in range(13)]
        q = cq([atom("E", u, v) for u, v in zip(variables, variables[1:])])
        assert satisfies(s, q)

    def test_star_join(self):
        centre = Null(0)
        s = Structure(
            [atom("R", centre, Null(i)) for i in range(1, 40)]
            + [atom("U", Null(17))]
        )
        q = cq([atom("R", x, y), atom("U", y)])
        assert satisfies(s, q)
        assert all_answers(s, cq([atom("R", x, y), atom("U", y)], free=(y,))) == {(Null(17),)}
