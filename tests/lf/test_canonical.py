"""Unit tests for repro.lf.canonical."""

import pytest

from repro.lf import (
    FREE_VARIABLE,
    Constant,
    Null,
    Structure,
    atom,
    canonical_key,
    canonical_label,
    canonical_query,
    isomorphic_over_constants,
    satisfies,
    subsets_containing,
)

a, b, c = Constant("a"), Constant("b"), Constant("c")
n0, n1, n2 = Null(0), Null(1), Null(2)


class TestCanonicalQuery:
    def test_distinguished_becomes_free_variable(self):
        s = Structure([atom("E", n0, n1)])
        q = canonical_query(s, [n0, n1], n0)
        assert q.free == (FREE_VARIABLE,)
        assert any(FREE_VARIABLE in at.variable_set() for at in q.atoms)

    def test_constants_stay_constants(self):
        s = Structure([atom("E", a, n0)])
        q = canonical_query(s, [a, n0], n0)
        assert a in q.constants()

    def test_constant_distinguished_gets_equality(self):
        s = Structure([atom("E", a, b)])
        q = canonical_query(s, [a, b], a)
        assert any(at.is_equality for at in q.atoms)

    def test_satisfied_at_origin(self):
        # The canonical query is, by construction, satisfied at the
        # distinguished element of the original structure.
        s = Structure([atom("E", n0, n1), atom("E", n1, n2), atom("U", n1)])
        q = canonical_query(s, [n0, n1, n2], n1)
        assert satisfies(s, q, {FREE_VARIABLE: n1})

    def test_restricted_relations(self):
        s = Structure([atom("E", n0, n1), atom("K", n0)])
        q = canonical_query(s, [n0, n1], n0, relation_names=["E"])
        assert q.relation_names() == {"E"}

    def test_isolated_distinguished_yields_trivial_query(self):
        s = Structure([atom("E", n0, n1)], domain=[n2])
        q = canonical_query(s, [n2], n2)
        # trivial query: y = y
        assert satisfies(s, q, {FREE_VARIABLE: n0})

    def test_element_outside_subset_required(self):
        s = Structure([atom("E", n0, n1)])
        with pytest.raises(ValueError):
            canonical_query(s, [n0], n1)

    def test_width_bounded_by_subset_size(self):
        s = Structure([atom("E", n0, n1), atom("E", n1, n2), atom("E", n2, n0)])
        q = canonical_query(s, [n0, n1, n2], n0)
        assert q.width <= 3


class TestSubsets:
    def test_sizes_and_anchor(self):
        pool = [n0, n1, n2]
        subsets = list(subsets_containing(pool, n0, 2))
        assert frozenset([n0]) in subsets
        assert frozenset([n0, n1]) in subsets
        assert frozenset([n0, n2]) in subsets
        assert all(n0 in s and len(s) <= 2 for s in subsets)
        assert len(subsets) == 3

    def test_anchor_not_double_counted(self):
        subsets = list(subsets_containing([n0, n1], n0, 2))
        assert frozenset([n0, n1]) in subsets
        assert len(subsets) == 2

    def test_max_size_one(self):
        assert list(subsets_containing([n0, n1], n0, 1)) == [frozenset([n0])]

    def test_count_formula(self):
        pool = [Null(i) for i in range(6)]
        subsets = list(subsets_containing(pool, Null(0), 3))
        # 1 + C(5,1) + C(5,2) = 1 + 5 + 10
        assert len(subsets) == 16


class TestCanonicalLabel:
    def test_invariant_under_null_renaming(self):
        left = Structure([atom("E", n0, n1), atom("U", n0)])
        right = Structure([atom("E", Null(7), Null(9)), atom("U", Null(7))])
        assert canonical_label(left) == canonical_label(right)

    def test_distinguishes_direction(self):
        left = Structure([atom("E", a, n0)])
        right = Structure([atom("E", n0, a)])
        assert canonical_label(left) != canonical_label(right)

    def test_constants_not_renamed(self):
        left = Structure([atom("E", a, n0)])
        right = Structure([atom("E", b, n0)])
        assert canonical_label(left) != canonical_label(right)

    def test_size_guard(self):
        big = Structure([atom("E", Null(i), Null(i + 1)) for i in range(9)])
        with pytest.raises(ValueError):
            canonical_label(big)


class TestIsomorphicOverConstants:
    def test_positive(self):
        left = Structure([atom("E", a, n0), atom("E", n0, n1)])
        right = Structure([atom("E", a, n2), atom("E", n2, Null(5))])
        assert isomorphic_over_constants(left, right)

    def test_constant_mismatch(self):
        left = Structure([atom("E", a, n0)])
        right = Structure([atom("E", b, n0)])
        assert not isomorphic_over_constants(left, right)

    def test_shape_mismatch(self):
        path = Structure([atom("E", n0, n1), atom("E", n1, n2)])
        fork = Structure([atom("E", n0, n1), atom("E", n0, n2)])
        assert not isomorphic_over_constants(path, fork)

    def test_size_fast_reject(self):
        small = Structure([atom("E", n0, n1)])
        big = Structure([atom("E", n0, n1), atom("E", n1, n2)])
        assert not isomorphic_over_constants(small, big)


class TestCanonicalKey:
    def test_invariant_under_null_renaming(self):
        left = Structure([atom("E", a, n0), atom("E", n0, n1), atom("U", n1)])
        right = Structure([atom("E", a, Null(41)), atom("E", Null(41), Null(7)), atom("U", Null(7))])
        assert canonical_key(left) == canonical_key(right)

    def test_distinguishes_direction(self):
        left = Structure([atom("E", a, n0)])
        right = Structure([atom("E", n0, a)])
        assert canonical_key(left) != canonical_key(right)

    def test_constants_anchor(self):
        # Renaming a *constant* must change the key: isomorphisms fix
        # the constants, so E(a,n) and E(b,n) are different states.
        left = Structure([atom("E", a, n0)])
        right = Structure([atom("E", b, n0)])
        assert canonical_key(left) != canonical_key(right)

    def test_distinguishes_path_from_fork(self):
        path = Structure([atom("E", n0, n1), atom("E", n1, n2)])
        fork = Structure([atom("E", n0, n1), atom("E", n0, n2)])
        assert canonical_key(path) != canonical_key(fork)

    def test_constant_only_structure(self):
        s = Structure([atom("E", a, b), atom("R", a, a)])
        t = Structure([atom("E", a, b), atom("R", a, a)])
        assert canonical_key(s) == canonical_key(t)

    def test_symmetric_nulls_collapse(self):
        # Two exchangeable branches E(a,n0), E(a,n1): swapping the nulls
        # is an isomorphism, so any renaming yields the same key.
        left = Structure([atom("E", a, n0), atom("E", a, n1)])
        right = Structure([atom("E", a, Null(9)), atom("E", a, Null(3))])
        assert canonical_key(left) == canonical_key(right)

    def test_long_chain_no_size_limit(self):
        # canonical_label refuses > 7 nulls; canonical_key must not.
        chain = [atom("E", a, Null(0))] + [
            atom("E", Null(i), Null(i + 1)) for i in range(12)
        ]
        renamed = [atom("E", a, Null(100))] + [
            atom("E", Null(100 + i), Null(100 + i + 1)) for i in range(12)
        ]
        assert canonical_key(Structure(chain)) == canonical_key(Structure(renamed))

    def test_agrees_with_isomorphism_check(self):
        # On structures small enough for canonical_label, equal keys
        # must coincide with isomorphic_over_constants.
        candidates = [
            Structure([atom("E", a, n0), atom("E", n0, n1)]),
            Structure([atom("E", a, n1), atom("E", n1, n2)]),
            Structure([atom("E", a, n0), atom("E", n1, n0)]),
            Structure([atom("E", n0, a), atom("E", a, n1)]),
        ]
        for left in candidates:
            for right in candidates:
                same_key = canonical_key(left) == canonical_key(right)
                assert same_key == isomorphic_over_constants(left, right)

    def test_fallback_still_sound(self):
        # With max_orders=0 every keyed structure falls back to the raw
        # rendering; equal keys must still imply equal fact sets.
        left = Structure([atom("E", a, n0), atom("E", a, n1)])
        right = Structure([atom("E", a, Null(9)), atom("E", a, Null(3))])
        key_left = canonical_key(left, max_orders=0)
        key_right = canonical_key(right, max_orders=0)
        # Possibly unequal (no renaming invariance in fallback mode) but
        # deterministic, and identical structures agree.
        assert key_left == canonical_key(left, max_orders=0)
        assert key_right == canonical_key(right, max_orders=0)
