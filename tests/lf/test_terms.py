"""Unit tests for repro.lf.terms."""

import pytest

from repro.lf import Constant, Null, NullFactory, Variable
from repro.lf.terms import is_constant, is_ground, is_null, is_variable


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str(self):
        assert str(Variable("x")) == "x"

    def test_ordering(self):
        assert Variable("a") < Variable("b")


class TestConstant:
    def test_equality_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_distinct_from_variable_with_same_name(self):
        assert Constant("x") != Variable("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Constant("")


class TestNull:
    def test_equality_by_ident_only(self):
        # Provenance fields are compare=False: the same null observed at
        # different levels is still the same element.
        assert Null(3, rule_index=0, level=1) == Null(3, rule_index=5, level=9)
        assert Null(3) != Null(4)

    def test_hash_consistent_with_eq(self):
        assert len({Null(1, 0, 0), Null(1, 2, 2)}) == 1

    def test_str(self):
        assert str(Null(7)) == "_:7"


class TestPredicates:
    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("x"))

    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Null(0))

    def test_is_null(self):
        assert is_null(Null(0))
        assert not is_null(Constant("a"))

    def test_is_ground(self):
        assert is_ground(Constant("a"))
        assert is_ground(Null(0))
        assert not is_ground(Variable("x"))


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        first, second = factory.fresh(), factory.fresh()
        assert first != second
        assert factory.issued == 2

    def test_provenance_recorded(self):
        factory = NullFactory()
        null = factory.fresh(rule_index=2, level=5)
        assert null.rule_index == 2
        assert null.level == 5

    def test_above_seeds_past_existing(self):
        factory = NullFactory.above([Null(10), Constant("a"), Null(3)])
        assert factory.fresh().ident == 11

    def test_above_empty(self):
        assert NullFactory.above([]).fresh().ident == 0
