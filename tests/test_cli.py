"""Tests for the command-line interface."""

import pytest

from repro.cli import main

LINEAR = "E(x,y) -> exists z. E(y,z)"
EXAMPLE7 = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(u,y) -> R(x,u)"
DB = "E(a,b)"


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestChase:
    def test_basic(self, capsys):
        code, out, _err = run(capsys, "-e", "chase", LINEAR, DB, "--depth", "4")
        assert code == 0
        assert "truncated at depth 4" in out
        assert "E(a, b)" in out

    def test_saturating(self, capsys):
        code, out, _err = run(capsys, "-e", "chase", "E(x,y) -> E(y,x)", DB)
        assert code == 0
        assert "saturated" in out
        assert "E(b, a)" in out

    def test_explain(self, capsys):
        code, out, _err = run(
            capsys, "-e", "chase", "E(x,y), E(y,z) -> E(x,z)",
            "E(a,b)\nE(b,c)", "--explain", "E"
        )
        assert code == 0
        assert "derivation of" in out

    def test_explain_missing_pred(self, capsys):
        code, _out, err = run(capsys, "-e", "chase", LINEAR, DB, "--explain", "Zzz")
        assert code == 1
        assert "no Zzz-facts" in err

    def test_files(self, capsys, tmp_path):
        theory_file = tmp_path / "t.dlg"
        theory_file.write_text(LINEAR)
        db_file = tmp_path / "d.facts"
        db_file.write_text(DB)
        code, out, _err = run(capsys, "chase", str(theory_file), str(db_file), "--depth", "2")
        assert code == 0
        assert "E(a, b)" in out

    def test_missing_file(self, capsys):
        code, _out, err = run(capsys, "chase", "/nonexistent.dlg", "/nope.facts")
        assert code == 1
        assert "error" in err


class TestChaseIncremental:
    TC = "E(x,y), E(y,z) -> E(x,z)"
    SCRIPT = "+ E(c,d)\n\n- E(a,b)\n"

    def test_updates_applied_in_batches(self, capsys):
        code, out, _err = run(
            capsys, "-e", "chase", self.TC, "E(a,b)\nE(b,c)",
            "--depth", "8", "--incremental", self.SCRIPT,
        )
        assert code == 0
        assert "2 updates" in out
        assert "E(b, d)" in out  # closure over the inserted edge
        assert "E(a, b)" not in out  # retracted, with its consequences

    def test_stats_render_updates(self, capsys):
        code, out, _err = run(
            capsys, "-e", "chase", self.TC, "E(a,b)\nE(b,c)",
            "--depth", "8", "--incremental", self.SCRIPT, "--stats",
        )
        assert code == 0
        assert out.count("# update:") == 2
        assert "overdeleted=" in out

    def test_update_script_from_file(self, capsys, tmp_path):
        theory_file = tmp_path / "t.dlg"
        theory_file.write_text(self.TC)
        db_file = tmp_path / "d.facts"
        db_file.write_text("E(a,b)\nE(b,c)")
        updates_file = tmp_path / "u.updates"
        updates_file.write_text("# first batch\n+ E(c,d)\n")
        code, out, _err = run(
            capsys, "chase", str(theory_file), str(db_file),
            "--incremental", str(updates_file),
        )
        assert code == 0
        assert "E(a, d)" in out

    def test_bad_prefix_rejected(self, capsys):
        code, _out, err = run(
            capsys, "-e", "chase", self.TC, "E(a,b)",
            "--incremental", "* E(c,d)",
        )
        assert code == 1
        assert "error" in err

    def test_retract_derived_fact_rejected(self, capsys):
        code, _out, err = run(
            capsys, "-e", "chase", self.TC, "E(a,b)\nE(b,c)",
            "--incremental", "- E(a,c)",
        )
        assert code == 1
        assert "not a database fact" in err


class TestCertain:
    def test_boolean_certain(self, capsys):
        code, out, _err = run(
            capsys, "-e", "certain", LINEAR, DB, "E(x,y), E(y,z)"
        )
        assert code == 0
        assert out.strip() == "certain"

    def test_boolean_not_certain(self, capsys):
        code, out, _err = run(
            capsys, "-e", "certain", "E(x,y) -> E(y,x)", DB, "E(x,x)"
        )
        assert code == 0
        assert out.strip() == "not-certain"

    def test_boolean_unknown(self, capsys):
        code, out, _err = run(
            capsys, "-e", "certain", LINEAR, DB, "E(x,x)", "--depth", "4"
        )
        assert code == 2
        assert out.strip() == "unknown"

    def test_answers_with_free(self, capsys):
        code, out, _err = run(
            capsys, "-e", "certain", EXAMPLE7, DB, "R(x,u)", "--free", "x,u"
        )
        assert code == 0
        assert "certain answers" in out
        assert "a, a" in out


class TestRewrite:
    def test_saturating(self, capsys):
        code, out, _err = run(
            capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)", "--free", "x,u"
        )
        assert code == 0
        assert "saturated: 3 disjuncts" in out
        assert "k_psi" in out

    def test_budget_exhaustion(self, capsys):
        code, out, _err = run(
            capsys, "-e", "rewrite", "E(x,y), E(y,z) -> E(x,z)",
            "E(x,y)", "--free", "x,y", "--max-steps", "100", "--max-queries", "20"
        )
        assert code == 2
        assert "incomplete" in out

    def test_parse_error(self, capsys):
        code, _out, err = run(capsys, "-e", "rewrite", "E(x,y) ->", "E(x,y)")
        assert code == 1
        assert "error" in err

    def test_stats_lines(self, capsys):
        code, out, _err = run(
            capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)", "--free", "x,u",
            "--stats"
        )
        assert code == 0
        assert "# stats: engine=indexed" in out
        assert "# candidates:" in out
        assert "# index:" in out

    def test_legacy_engine(self, capsys):
        code, out, _err = run(
            capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)", "--free", "x,u",
            "--legacy", "--stats"
        )
        assert code == 0
        assert "saturated: 3 disjuncts" in out
        assert "# stats: engine=legacy" in out

    def test_legacy_agrees_with_indexed(self, capsys):
        # disjunct variable *names* differ between engines; the header
        # line (disjunct count, width, depth bound) must not
        code_new, out_new, _ = run(
            capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)", "--free", "x,u"
        )
        code_old, out_old, _ = run(
            capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)", "--free", "x,u",
            "--legacy"
        )
        assert code_new == code_old == 0
        assert out_new.splitlines()[0] == out_old.splitlines()[0]


class TestClassify:
    def test_profile(self, capsys):
        code, out, _err = run(capsys, "-e", "classify", LINEAR)
        assert code == 0
        assert "linear: yes" in out
        assert "guarded: yes" in out
        assert "full_datalog: no" in out


class TestCounterModel:
    def test_counter_model_found(self, capsys):
        code, out, _err = run(
            capsys, "-e", "countermodel", LINEAR, DB, "E(x,x)"
        )
        assert code == 0
        assert "verified finite counter-model" in out

    def test_certain_query(self, capsys):
        code, out, _err = run(
            capsys, "-e", "countermodel", LINEAR, DB, "E(x,y), E(y,z)"
        )
        assert code == 3
        assert "no counter-model" in out

    def test_depth_override(self, capsys):
        code, out, _err = run(
            capsys, "-e", "countermodel", LINEAR, DB, "E(x,x)",
            "--depths", "12,16"
        )
        assert code == 0
        assert "depth=12" in out or "depth=16" in out


class TestSkeleton:
    def test_shape_report(self, capsys):
        code, out, _err = run(capsys, "-e", "skeleton", EXAMPLE7, DB, "--depth", "5")
        assert code == 0
        assert "Lemma 3" in out
        assert "forest=True" in out


class TestFcSearch:
    def test_model_found(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "--max-elements", "5"
        )
        assert code == 0
        assert "model found" in out
        assert "E(a, b)" in out

    def test_forbidden_query_positive(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "E(x,x)",
            "--max-elements", "5",
        )
        assert code == 0
        assert "model found" in out
        assert "E(b, b)" not in out

    def test_exhausted_no_model_exit_3(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "E(x,y)",
            "--max-elements", "4",
        )
        assert code == 3
        assert "no model" in out

    def test_budget_exhausted_exit_2(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "E(x,x)",
            "--max-elements", "3", "--max-nodes", "1",
        )
        assert code == 2
        assert "inconclusive" in out

    def test_stats_lines(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "--max-elements", "5",
            "--stats",
        )
        assert code == 0
        assert "# search: engine=delta" in out
        assert "# states:" in out
        assert "# saturation:" in out

    def test_legacy_engine(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "--max-elements", "5",
            "--legacy", "--stats",
        )
        assert code == 0
        assert "engine=legacy" in out

    def test_heuristic_flag(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "--max-elements", "5",
            "--heuristic", "smallest-domain", "--stats",
        )
        assert code == 0
        assert "heuristic=smallest-domain" in out

    def test_no_canonical_dedup_flag(self, capsys):
        code, out, _err = run(
            capsys, "-e", "fc-search", LINEAR, DB, "--max-elements", "5",
            "--no-canonical-dedup", "--stats",
        )
        assert code == 0
        assert "canonical_keys=0" in out


class TestServe:
    """The serve subcommand end-to-end: real process, real sockets.

    Protocol/session behaviour is covered in-process by
    ``tests/serve``; here we pin what only a subprocess shows — the
    readiness announcement, and SIGTERM → drain → exit 130.
    """

    pytestmark = pytest.mark.timeout(120)

    @staticmethod
    def _spawn(*extra_args):
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--json",
             "--port", "0", "--workers", "1", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            ready = json.loads(proc.stdout.readline())
        except Exception:
            proc.kill()
            raise
        return proc, ready

    def test_json_readiness_announcement(self):
        proc, ready = self._spawn()
        try:
            assert ready["command"] == "serve"
            assert ready["status"] == "ready"
            assert ready["host"] == "127.0.0.1"
            assert ready["port"] > 0  # --port 0 reports the actual bind
            assert ready["workers"] == 1
            assert ready["pid"] == proc.pid
        finally:
            proc.terminate()
            assert proc.wait(timeout=30) == 130

    def test_text_readiness_line(self):
        import subprocess
        import sys
        from pathlib import Path
        import os

        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("# repro serve ready on 127.0.0.1:")
            assert "workers=1" in line
        finally:
            proc.terminate()
            assert proc.wait(timeout=30) == 130

    def test_requests_over_the_wire(self):
        from repro.serve import ServeClient

        proc, ready = self._spawn()
        try:
            with ServeClient(("127.0.0.1", ready["port"]), timeout=60) as c:
                assert c.ping()
                response = c.request(
                    "chase", theory=LINEAR, database=DB,
                    params={"depth": 3},
                )
                assert response["command"] == "chase"
                assert response["status"] == "truncated"
                assert response["counts"]["facts"] == 4
                assert response["ok"] is True
                assert response["exit_code"] == 0
        finally:
            proc.terminate()
            assert proc.wait(timeout=30) == 130

    def test_sigterm_drains_inflight_then_130(self):
        import time

        from repro.serve import ServeClient

        nonterm = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> E(x,z)"
        proc, ready = self._spawn("--drain-ms", "500")
        try:
            with ServeClient(("127.0.0.1", ready["port"]), timeout=60) as c:
                assert c.ping()  # the connection is accepted and live
                rid = c.submit(
                    "fc-search", theory=nonterm, database=DB,
                    query="E(x,x)",
                    params={"max_elements": 30,
                            "max_nodes": 100_000_000},
                )
                time.sleep(0.5)  # the single worker picks the job up
                proc.terminate()
                # drain: the in-flight search is cancelled, its partial
                # response still arrives before the socket closes
                response = c.response_for(rid)
                assert response["stopped_reason"] == "cancelled"
                assert response["exit_code"] == 130
            assert proc.wait(timeout=30) == 130
            assert proc.stderr.read() == ""
        finally:
            if proc.poll() is None:
                proc.kill()
