"""Tests for the syntactic class recognisers."""

from repro.classes import (
    classify,
    guard_of,
    is_binary,
    is_frontier_one_heads,
    is_full_datalog,
    is_guarded,
    is_linear,
    is_sticky,
)
from repro.lf import parse_theory


class TestLinear:
    def test_linear_positive(self):
        assert is_linear(parse_theory("E(x,y) -> exists z. E(y,z)"))

    def test_linear_negative(self):
        assert not is_linear(parse_theory("E(x,y), E(y,z) -> E(x,z)"))

    def test_linear_implies_guarded(self):
        theory = parse_theory("E(x,y) -> exists z. R(y,z)")
        assert is_linear(theory) and is_guarded(theory)


class TestGuarded:
    def test_guard_found(self):
        theory = parse_theory("P(x,y,z), S(y) -> G(z)")
        guard = guard_of(theory.rules[0])
        assert guard is not None and guard.pred == "P"

    def test_transitivity_not_guarded(self):
        assert not is_guarded(parse_theory("E(x,y), E(y,z) -> E(x,z)"))

    def test_guard_with_all_variables(self):
        assert is_guarded(parse_theory("T(x,y,z) -> exists w. T(y,z,w)"))


class TestSticky:
    def test_linear_single_use_sticky(self):
        assert is_sticky(parse_theory("E(x,y) -> exists z. E(y,z)"))

    def test_join_on_dropped_variable_not_sticky(self):
        # y is joined and does not appear in the head: marked, so not sticky
        theory = parse_theory("E(x,y), E(y,z) -> exists w. R(x,z,w)")
        assert not is_sticky(theory)

    def test_join_variable_kept_in_head_sticky(self):
        theory = parse_theory("E(x,y), R(y,z) -> S(x,y,z)")
        assert is_sticky(theory)

    def test_propagation_detects_indirect_marking(self):
        # first rule drops y (marks (E,1) via the S body position);
        # second rule propagates the marking into a join.
        theory = parse_theory(
            """
            S(x,y) -> U(x)
            E(x,y), R(y,z) -> S(y,z)
            """
        )
        # y flows into S's first position; S's own first position is
        # unmarked (x appears in U's head)... verify it terminates and
        # returns a boolean either way.
        assert is_sticky(theory) in (True, False)

    def test_example7_sticky_status(self):
        # E(x,y), E(u,y) -> R(x,u): y joined and dropped: not sticky
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(u,y) -> R(x,u)
            """
        )
        assert not is_sticky(theory)


class TestShapes:
    def test_frontier_one(self):
        assert is_frontier_one_heads(
            parse_theory("E(x,y), E(u,y) -> exists z. R(y,z)")
        )
        assert not is_frontier_one_heads(
            parse_theory("E(x,y) -> exists z. R(x,y,z)")
        )

    def test_full_datalog(self):
        assert is_full_datalog(parse_theory("E(x,y), E(y,z) -> E(x,z)"))
        assert not is_full_datalog(parse_theory("E(x,y) -> exists z. E(y,z)"))

    def test_binary(self):
        assert is_binary(parse_theory("E(x,y) -> exists z. E(y,z)"))
        assert not is_binary(parse_theory("P(x,y,z) -> exists w. P(y,z,w)"))


class TestClassify:
    def test_profile_keys(self):
        profile = classify(parse_theory("E(x,y) -> exists z. E(y,z)"))
        assert profile["binary"] and profile["linear"] and profile["guarded"]
        assert profile["sticky"] and profile["frontier_one_heads"]
        assert not profile["full_datalog"]
        assert not profile["weakly_acyclic"]
        assert profile["single_head"] and profile["spade5"]
