"""Tests for the skeleton S(D,T) and Lemmas 3–4 (Section 3.2)."""

import pytest

from repro.chase import chase
from repro.lf import Constant, atom, parse_structure, parse_theory
from repro.skeleton import (
    lemma3_report,
    skeleton,
    skeleton_of_chase,
    verify_lemma4,
)
from repro.vtdag import is_vtdag

a, b = Constant("a"), Constant("b")

# Example 7's theory: one TGP (E... E is TGP; R is datalog-derived flesh)
EXAMPLE7 = parse_theory(
    """
    E(x,y) -> exists z. E(y,z)
    E(x,y), E(u,y) -> R(x,u)
    """
)
TREE = parse_theory(
    """
    F(x,y) -> exists z. F(y,z)
    F(x,y) -> exists z. G(y,z)
    G(x,y) -> exists z. F(y,z)
    G(x,y) -> exists z. G(y,z)
    F(x,y) -> B(x,y)
    G(x,y) -> B(x,y)
    """
)


class TestSkeletonExtraction:
    def test_database_atoms_kept(self):
        result = skeleton(parse_structure("E(a,b)"), EXAMPLE7, max_depth=5)
        assert atom("E", a, b) in result.structure

    def test_flesh_is_datalog_derived(self):
        result = skeleton(parse_structure("E(a,b)"), EXAMPLE7, max_depth=5)
        assert result.flesh
        assert all(fact.pred == "R" for fact in result.flesh)

    def test_tgp_atoms_kept(self):
        result = skeleton(parse_structure("E(a,b)"), EXAMPLE7, max_depth=5)
        tgp_atoms = [f for f in result.structure.facts() if f.pred == "E"]
        assert len(tgp_atoms) == 6  # E(a,b) + 5 chase rounds

    def test_domain_preserved(self):
        database = parse_structure("E(a,b)")
        chased = chase(database, EXAMPLE7, max_depth=5)
        result = skeleton_of_chase(chased, database, EXAMPLE7)
        assert result.structure.domain() == chased.structure.domain()

    def test_tree_skeleton_drops_b_atoms(self):
        result = skeleton(parse_structure("F(a,b)"), TREE, max_depth=3)
        assert result.tgp_predicates == {"F", "G"}
        assert not result.structure.facts_with_pred("B")
        assert all(fact.pred == "B" for fact in result.flesh)


class TestLemma3:
    def test_chain_skeleton(self):
        result = skeleton(parse_structure("E(a,b)"), EXAMPLE7, max_depth=6)
        report = lemma3_report(result)
        assert report.all_hold
        assert report.forest and report.acyclic and report.in_degree_at_most_one
        assert report.degree_observed <= report.degree_bound

    def test_tree_skeleton(self):
        result = skeleton(parse_structure("F(a,b)"), TREE, max_depth=4)
        report = lemma3_report(result)
        assert report.all_hold
        assert is_vtdag(result.structure)

    def test_degree_bound_matches_paper(self):
        # |Σ| + 1 with Σ the chase signature
        result = skeleton(parse_structure("F(a,b)"), TREE, max_depth=4)
        report = lemma3_report(result)
        assert report.degree_bound == len(result.structure.signature.relation_names()) + 1


class TestLemma4:
    def test_chase_rebuilt_from_skeleton(self):
        result = skeleton(parse_structure("E(a,b)"), EXAMPLE7, max_depth=6)
        verdict, reason = verify_lemma4(result, EXAMPLE7)
        assert verdict, reason

    def test_tree_chase_rebuilt(self):
        result = skeleton(parse_structure("F(a,b)"), TREE, max_depth=4)
        verdict, reason = verify_lemma4(result, TREE)
        assert verdict, reason

    def test_broken_skeleton_detected(self):
        """Removing a single TGP atom breaks the rebuild (the paper's
        remark after Lemma 4: a new element would be created)."""
        result = skeleton(parse_structure("E(a,b)"), EXAMPLE7, max_depth=6)
        # drop a TGP atom deep in the chain but keep its elements
        tgp_atoms = sorted(
            (f for f in result.structure.facts() if f.pred == "E"), key=str
        )
        victim = tgp_atoms[len(tgp_atoms) // 2]
        result.structure.discard_fact(victim)
        verdict, reason = verify_lemma4(result, EXAMPLE7)
        assert not verdict
        assert "witness" in reason or "not rebuilt" in reason
