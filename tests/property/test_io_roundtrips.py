"""Property-based round-trips for the serialisation layer."""

from hypothesis import HealthCheck, given, settings

from repro.lf import (
    Theory,
    parse_rule,
    parse_theory,
    rule_to_text,
    structure_from_dict,
    structure_to_dict,
    theory_to_text,
)

from .strategies import safe_rules, structures

RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestStructureRoundtrip:
    @RELAXED
    @given(structures())
    def test_dict_roundtrip(self, structure):
        back = structure_from_dict(structure_to_dict(structure))
        assert back.same_facts(structure)
        assert back.domain() == structure.domain()

    @RELAXED
    @given(structures())
    def test_dict_deterministic(self, structure):
        assert structure_to_dict(structure) == structure_to_dict(structure.copy())


class TestRuleRoundtrip:
    @RELAXED
    @given(safe_rules())
    def test_rule_text_roundtrip(self, rule):
        assert parse_rule(rule_to_text(rule)) == rule

    @RELAXED
    @given(safe_rules(), safe_rules())
    def test_theory_text_roundtrip(self, first, second):
        theory = Theory([first, second])
        assert parse_theory(theory_to_text(theory)) == theory
