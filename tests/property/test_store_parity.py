"""Property parity: the columnar fact store vs the dict backend.

Every engine must be *observationally equivalent* on the two backends:
the same chase fixpoints, the same homomorphism binding sets, the same
fc-search verdicts, the same restriction results.  Enumeration order
and node counts may differ (dict iteration order is already
hash-seed-dependent), so everything is compared as sets or verdicts.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings

from repro.chase import ChaseConfig, chase
from repro.fc import SearchConfig, search_finite_model
from repro.lf import satisfies
from repro.lf.canonical import canonical_key
from repro.lf.homomorphism import homomorphisms
from repro.store import STORE_ENV_VAR, ColumnarStructure

from .strategies import conjunctive_queries, open_conjunctive_queries, structures, theories


@pytest.fixture(autouse=True, scope="module")
def _unpinned_backend():
    """This module pins backends explicitly (each comparison converts its
    own input), so the CI matrix's REPRO_STORE override must not reroute
    the engines — e.g. the "a columnar input stays columnar" assertion
    only holds with the variable unset."""
    saved = os.environ.pop(STORE_ENV_VAR, None)
    yield
    if saved is not None:
        os.environ[STORE_ENV_VAR] = saved

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def as_columnar(structure):
    return ColumnarStructure.from_structure(structure)


class TestStructureParity:
    @RELAXED
    @given(structures(min_facts=1))
    def test_conversion_round_trip(self, structure):
        columnar = as_columnar(structure)
        assert columnar == structure
        assert columnar.frozen_key() == structure.frozen_key()
        assert columnar.pred_size("E") == structure.pred_size("E")
        assert columnar.predicates_in_use() == structure.predicates_in_use()

    @RELAXED
    @given(structures(min_facts=1))
    def test_restrictions_agree(self, structure):
        columnar = as_columnar(structure)
        some = sorted(structure.domain(), key=str)[: max(1, structure.domain_size // 2)]
        assert columnar.restrict_elements(some) == structure.restrict_elements(some)
        assert columnar.restrict_signature(["E", "U"]) == structure.restrict_signature(
            ["E", "U"]
        )

    @RELAXED
    @given(structures(min_facts=2))
    def test_mutation_parity(self, structure):
        columnar = as_columnar(structure)
        victims = structure.sorted_facts()[::2]
        for fact in victims:
            assert columnar.discard_fact(fact) == structure.copy().discard_fact(fact)
        dict_copy = structure.copy()
        for fact in victims:
            dict_copy.discard_fact(fact)
        assert columnar.same_facts(dict_copy)


class TestHomomorphismParity:
    @RELAXED
    @given(structures(min_facts=1), open_conjunctive_queries())
    def test_binding_sets_equal(self, structure, query):
        columnar = as_columnar(structure)
        on_dict = {
            frozenset(h.items()) for h in homomorphisms(query.atoms, structure)
        }
        on_columnar = {
            frozenset(h.items()) for h in homomorphisms(query.atoms, columnar)
        }
        assert on_dict == on_columnar

    @RELAXED
    @given(structures(min_facts=1), conjunctive_queries())
    def test_satisfies_agrees(self, structure, query):
        assert satisfies(structure, query) == satisfies(as_columnar(structure), query)


class TestChaseParity:
    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories())
    def test_chase_fixpoints_agree(self, database, theory):
        config = ChaseConfig(max_depth=4, max_facts=2_000)
        on_dict = chase(database, theory, config)
        on_columnar = chase(as_columnar(database), theory, config)
        assert on_columnar.structure.is_columnar
        # trigger enumeration order differs across backends, so
        # invented nulls may get different names; compare up to the
        # null-renaming-invariant canonical key
        assert on_dict.saturated == on_columnar.saturated
        if on_dict.saturated:
            assert canonical_key(on_dict.structure) == canonical_key(
                on_columnar.structure
            )

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories(max_rules=2))
    def test_chase_store_config_matches_native_columnar(self, database, theory):
        config = ChaseConfig(max_depth=4, max_facts=2_000)
        converted = chase(database, theory, config.with_overrides(store="columnar"))
        native = chase(as_columnar(database), theory, config)
        assert converted.structure.is_columnar
        assert converted.saturated == native.saturated
        if converted.saturated:
            assert canonical_key(converted.structure) == canonical_key(
                native.structure
            )


class TestSearchParity:
    @RELAXED
    @given(database=structures(max_facts=4), theory=theories(max_rules=2))
    def test_verdicts_agree(self, database, theory):
        config = SearchConfig(max_elements=4, max_nodes=400)
        on_dict = search_finite_model(database, theory, config=config)
        on_columnar = search_finite_model(
            as_columnar(database), theory, config=config
        )
        assert (on_dict.model is None) == (on_columnar.model is None)
        if on_columnar.model is not None:
            assert on_columnar.model.is_columnar
            from repro.chase import is_model

            assert is_model(on_columnar.model, theory)
            assert is_model(on_dict.model, theory)
