"""Server-equivalence battery: warm server ≡ fresh CLI run.

The service contract is that ``repro serve`` answers exactly what the
one-shot CLI would print for the same inputs — session caches, the
artifact cache, and per-request guards must be *transparent*.  Each
property here draws a random (theory, database, query) triple, asks a
long-lived warm server and an in-process CLI invocation, and compares
the full JSON payloads modulo the documented nondeterministic fields
(wall times), the process-global ``stats.hom`` counters (polluted by
whatever ran earlier on any thread), and the server's envelope keys.

Both comparisons run in this one process on purpose: plan-cache
warmth may legitimately steer tie-breaks in engines that pick *a*
model/plan among equals, so cross-process runs could differ while both
are correct.  Sharing the process pins the caches and makes equality
exact.

Every engine is exercised on both fact-store backends via the
per-request ``params.store`` / CLI ``--store`` knob.
"""

import contextlib
import io
import json

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.cli import main as cli_main
from repro.lf.io import query_to_text, theory_to_text
from repro.serve import ServerThread
from tests.property.strategies import (
    bdd_theories,
    open_conjunctive_queries,
    theories,
)
from tests.test_cli_json import strip_timings

pytestmark = pytest.mark.timeout(600)

#: Keys the server adds on top of the CLI payload.
ENVELOPE = {"id", "ok", "tenant", "cached"}

STORES = ["dict", "columnar"]

#: Constant-only database text (nulls cannot appear in CLI input).
database_texts = st.lists(
    st.one_of(
        st.tuples(
            st.sampled_from(["E", "R", "S"]),
            st.sampled_from("abc"),
            st.sampled_from("abc"),
        ).map(lambda t: f"{t[0]}({t[1]},{t[2]})"),
        st.tuples(
            st.sampled_from(["U", "V"]), st.sampled_from("abc")
        ).map(lambda t: f"{t[0]}({t[1]})"),
    ),
    min_size=1,
    max_size=8,
).map("\n".join)


@pytest.fixture(scope="module")
def server():
    with ServerThread(workers=2) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(server):
    with server.client(timeout=300) as c:
        yield c


def cli_json(*argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli_main([*argv, "--json"])
    return code, json.loads(out.getvalue())


def canon(payload):
    """Comparable core: no envelope, no wall times, no global counters."""

    def scrub(node):
        if isinstance(node, dict):
            return {
                k: scrub(v) for k, v in node.items() if k != "hom"
            }
        if isinstance(node, list):
            return [scrub(item) for item in node]
        return node

    body = {k: v for k, v in payload.items() if k not in ENVELOPE}
    return scrub(strip_timings(body))


def free_names(query):
    return [str(v) for v in query.free]


def cli_free_args(query):
    names = free_names(query)
    return ["--free", ",".join(names)] if names else []


COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestChaseParity:
    @pytest.mark.parametrize("store", STORES)
    @settings(max_examples=20, **COMMON)
    @given(theory=theories(), database=database_texts)
    def test_chase(self, client, store, theory, database):
        text = theory_to_text(theory)
        response = client.request(
            "chase", theory=text, database=database,
            params={"depth": 4, "store": store},
        )
        code, expected = cli_json(
            "-e", "chase", text, database, "--depth", "4", "--store", store
        )
        assert canon(response) == canon(expected)
        assert response["exit_code"] == code
        assert response["ok"] is (expected["status"] != "error")


class TestCertainParity:
    @pytest.mark.parametrize("store", STORES)
    @settings(max_examples=15, **COMMON)
    @given(
        theory=theories(),
        database=database_texts,
        query=open_conjunctive_queries(),
    )
    def test_certain(self, client, store, theory, database, query):
        ttext, qtext = theory_to_text(theory), query_to_text(query)
        response = client.request(
            "certain", theory=ttext, database=database, query=qtext,
            free=free_names(query), params={"depth": 4, "store": store},
        )
        code, expected = cli_json(
            "-e", "certain", ttext, database, qtext,
            *cli_free_args(query), "--depth", "4", "--store", store,
        )
        assert canon(response) == canon(expected)
        assert response["exit_code"] == code


class TestRewriteParity:
    @settings(max_examples=15, **COMMON)
    @given(theory=bdd_theories(), query=open_conjunctive_queries())
    def test_rewrite(self, client, theory, query):
        ttext, qtext = theory_to_text(theory), query_to_text(query)
        response = client.request(
            "rewrite", theory=ttext, query=qtext, free=free_names(query)
        )
        code, expected = cli_json(
            "-e", "rewrite", ttext, qtext, *cli_free_args(query)
        )
        # the artifact cache may serve the repeat examples hypothesis
        # generates — the body must be identical either way
        assert canon(response) == canon(expected)
        assert response["exit_code"] == code


class TestFcSearchParity:
    @pytest.mark.parametrize("store", STORES)
    @settings(max_examples=10, **COMMON)
    @given(
        theory=bdd_theories(),
        database=database_texts,
        query=st.one_of(st.none(), open_conjunctive_queries(max_free=0)),
    )
    def test_fc_search(self, client, store, theory, database, query):
        ttext = theory_to_text(theory)
        qtext = query_to_text(query) if query is not None else None
        fields = dict(theory=ttext, database=database,
                      params={"max_elements": 4, "max_nodes": 2_000,
                              "store": store})
        argv = ["-e", "fc-search", ttext, database,
                "--max-elements", "4", "--max-nodes", "2000",
                "--store", store]
        if qtext is not None:
            fields["query"] = qtext
            argv.insert(4, qtext)
        response = client.request("fc-search", **fields)
        code, expected = cli_json(*argv)
        assert canon(response) == canon(expected)
        assert response["exit_code"] == code


class TestCountermodelParity:
    @pytest.mark.parametrize("store", STORES)
    @settings(max_examples=10, **COMMON)
    @given(
        theory=bdd_theories(),
        database=database_texts,
        query=open_conjunctive_queries(max_atoms=3),
    )
    def test_countermodel(self, client, store, theory, database, query):
        ttext, qtext = theory_to_text(theory), query_to_text(query)
        response = client.request(
            "countermodel", theory=ttext, database=database, query=qtext,
            free=free_names(query),
            params={"depths": [1, 2], "store": store},
        )
        code, expected = cli_json(
            "-e", "countermodel", ttext, database, qtext,
            *cli_free_args(query), "--depths", "1,2", "--store", store,
        )
        assert canon(response) == canon(expected)
        assert response["exit_code"] == code
