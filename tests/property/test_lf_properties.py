"""Property-based tests for the logical foundations."""

from hypothesis import HealthCheck, given, settings

from repro.lf import (
    Structure,
    homomorphisms,
    satisfies,
    structure_homomorphism,
    structure_homomorphisms,
)

from .strategies import conjunctive_queries, structures

RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestHomomorphismInvariants:
    @RELAXED
    @given(structures(min_facts=1))
    def test_identity_homomorphism_exists(self, structure):
        """Every structure maps into itself (constants fixed)."""
        mapping = structure_homomorphism(structure, structure)
        assert mapping is not None
        image = {fact.substitute(mapping) for fact in structure.facts()}
        assert all(fact in structure for fact in image)

    @RELAXED
    @given(structures(min_facts=1), conjunctive_queries())
    def test_bindings_actually_satisfy(self, structure, query):
        """Every binding returned by the matcher makes all atoms facts."""
        for binding in homomorphisms(query.atoms, structure):
            for atom in query.atoms:
                if atom.is_equality:
                    left, right = (
                        binding.get(t, t) if hasattr(t, "name") else t
                        for t in atom.args
                    )
                    continue
                assert atom.substitute(binding) in structure
            break  # one witness suffices per example

    @RELAXED
    @given(structures(min_facts=1), conjunctive_queries())
    def test_satisfaction_monotone_under_extension(self, structure, query):
        """CQs are preserved when facts are added."""
        if not satisfies(structure, query):
            return
        from repro.lf import Atom, Constant

        extended = structure.copy()
        extended.add_fact(Atom("Extra", (Constant("pad"),)))
        for fact in structure.facts():
            extended.add_fact(fact)
        assert satisfies(extended, query)

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), structures(min_facts=1, max_facts=6))
    def test_hom_composition(self, first, second):
        """Homomorphisms compose."""
        mapping = structure_homomorphism(first, second)
        if mapping is None:
            return
        onward = structure_homomorphism(second, second)
        assert onward is not None
        composed = {
            element: onward.get(image, image) for element, image in mapping.items()
        }
        for fact in first.facts():
            assert fact.substitute(composed) in second

    @RELAXED
    @given(structures(min_facts=1, max_facts=5))
    def test_restriction_is_substructure(self, structure):
        """C ↾ A is always contained in C."""
        domain = sorted(structure.domain(), key=str)
        half = domain[: max(1, len(domain) // 2)]
        restricted = structure.restrict_elements(half)
        assert structure.contains_structure(restricted)

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), conjunctive_queries(max_atoms=3))
    def test_queries_preserved_under_homomorphic_image(self, structure, query):
        """If C ⊨ Φ and h : C → D then D ⊨ Φ (for Boolean CQs without
        constants — constants must be fixed, so we check self-maps)."""
        if not satisfies(structure, query):
            return
        for mapping in structure_homomorphisms(structure, structure):
            image = Structure(
                fact.substitute(mapping) for fact in structure.facts()
            )
            assert satisfies(image, query)
            break


class TestCanonicalQueryProperties:
    @RELAXED
    @given(structures(min_facts=1, max_facts=8))
    def test_canonical_query_true_at_origin(self, structure):
        """The canonical query of any subset is satisfied at its anchor."""
        from repro.lf import FREE_VARIABLE, canonical_query

        domain = sorted(structure.domain(), key=str)
        anchor = domain[0]
        query = canonical_query(structure, set(domain[:3]) | {anchor}, anchor)
        assert satisfies(structure, query, {FREE_VARIABLE: anchor})

    @RELAXED
    @given(structures(min_facts=2, max_facts=8))
    def test_connected_subsets_are_connected(self, structure):
        """Every enumerated subset is variable-connected to the anchor."""
        from repro.lf import Constant
        from repro.lf.canonical import connected_subsets_containing

        nonconstants = sorted(structure.nonconstant_elements(), key=str)
        if not nonconstants:
            return
        anchor = nonconstants[0]
        for subset in connected_subsets_containing(structure, anchor, 3):
            # BFS within the subset from the anchor through shared facts
            reached = {anchor}
            frontier = [anchor]
            while frontier:
                node = frontier.pop()
                for fact in structure.facts_about(node):
                    for arg in fact.args:
                        if arg in subset and arg not in reached and not isinstance(arg, Constant):
                            reached.add(arg)
                            frontier.append(arg)
            assert reached == set(subset)
