"""Property-based parity and invariance tests for the planned matcher.

Two contracts are enforced here:

* the compiled-plan evaluation path produces exactly the binding set of
  the legacy backtracking matcher, on arbitrary query/structure pairs
  (with and without pre-bindings);
* UCQ answer sets are invariant under the symmetries that the
  free-variable capture bugs used to break — reordering disjuncts and
  injectively renaming the variables of individual disjuncts.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lf import (
    UnionOfConjunctiveQueries,
    Variable,
    all_answers,
    homomorphisms,
    legacy_homomorphisms,
    planner_disabled,
)

from .strategies import elements, open_conjunctive_queries, structures

RELAXED = settings(
    max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def binding_set(generator):
    return {frozenset(binding.items()) for binding in generator}


class TestPlannedLegacyParity:
    @RELAXED
    @given(structures(), open_conjunctive_queries())
    def test_same_binding_set(self, structure, query):
        planned = binding_set(homomorphisms(query.atoms, structure))
        legacy = binding_set(legacy_homomorphisms(query.atoms, structure))
        assert planned == legacy

    @RELAXED
    @given(structures(min_facts=1), open_conjunctive_queries(), elements)
    def test_same_binding_set_with_prebinding(self, structure, query, element):
        pool = sorted(query.variables())
        if not pool:
            return
        prebinding = {pool[0]: element}
        planned = binding_set(homomorphisms(query.atoms, structure, prebinding))
        legacy = binding_set(
            legacy_homomorphisms(query.atoms, structure, prebinding)
        )
        assert planned == legacy

    @RELAXED
    @given(structures(), open_conjunctive_queries())
    def test_planner_toggle_preserves_answers(self, structure, query):
        with_planner = all_answers(structure, query)
        with planner_disabled():
            without = all_answers(structure, query)
        assert with_planner == without


def rename_injectively(query, suffix):
    """Rename every variable of *query* with a fresh suffix (injective)."""
    mapping = {v: Variable(f"{v.name}_{suffix}") for v in query.variables()}
    return query.substitute(mapping)


class TestUCQInvariance:
    @RELAXED
    @given(
        structures(),
        st.lists(open_conjunctive_queries(max_atoms=3), min_size=1, max_size=3),
        st.randoms(use_true_random=False),
    )
    def test_answers_invariant_under_disjunct_order(self, structure, pool, rng):
        arity = len(pool[0].free)
        disjuncts = [q for q in pool if len(q.free) == arity]
        union = UnionOfConjunctiveQueries(disjuncts)
        shuffled = list(disjuncts)
        rng.shuffle(shuffled)
        reordered = UnionOfConjunctiveQueries(shuffled)
        assert all_answers(structure, union) == all_answers(structure, reordered)

    @RELAXED
    @given(
        structures(),
        st.lists(open_conjunctive_queries(max_atoms=3), min_size=1, max_size=3),
    )
    def test_answers_invariant_under_disjunct_renaming(self, structure, pool):
        # Renaming the variables of each disjunct apart — including its
        # free tuple — denotes the same UCQ; the constructor re-aligns
        # frees onto the lead.  This is exactly the symmetry the
        # capture bug broke.
        arity = len(pool[0].free)
        disjuncts = [q for q in pool if len(q.free) == arity]
        union = UnionOfConjunctiveQueries(disjuncts)
        renamed = UnionOfConjunctiveQueries(
            [rename_injectively(q, i) for i, q in enumerate(disjuncts)]
        )
        assert all_answers(structure, union) == all_answers(structure, renamed)
