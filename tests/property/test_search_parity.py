"""Property parity: the incremental search engine vs legacy_search.

The delta engine (copy-on-write states, incremental saturation,
canonical dedup) must be *observationally equivalent* to the legacy
engine on every workload: same found/not-found verdict, models that are
actual models avoiding the forbidden query, and matching exhaustiveness
claims.  Node counts may differ (canonical dedup prunes alpha-variant
branches) — that is the point, not a bug.
"""

from hypothesis import HealthCheck, given, settings

from repro.chase import is_model
from repro.fc import SearchConfig, legacy_search, search_finite_model
from repro.lf import satisfies

from .strategies import conjunctive_queries, structures, theories

#: Small bounds keep each example cheap; exhaustiveness within these
#: bounds is still a strong claim to compare across the two engines.
BOUNDS = dict(max_elements=4, max_nodes=400)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@RELAXED
@given(database=structures(max_facts=5), theory=theories(max_rules=2))
def test_model_search_parity(database, theory):
    new = search_finite_model(database, theory, config=SearchConfig(**BOUNDS))
    old = legacy_search(database, theory, **BOUNDS)
    assert new.found == old.found
    for outcome in (new, old):
        if outcome.found:
            assert is_model(outcome.model, theory)
            assert outcome.model.contains_structure(database)


@RELAXED
@given(
    database=structures(max_facts=4),
    theory=theories(max_rules=2),
    forbidden=conjunctive_queries(max_atoms=2),
)
def test_forbidden_query_parity(database, theory, forbidden):
    new = search_finite_model(
        database, theory, forbidden=forbidden, config=SearchConfig(**BOUNDS)
    )
    old = legacy_search(database, theory, forbidden=forbidden, **BOUNDS)
    assert new.found == old.found
    for outcome in (new, old):
        if outcome.found:
            assert is_model(outcome.model, theory)
            assert not satisfies(outcome.model, forbidden.boolean())
    # A completed exhaustive search is a proof; both engines must make
    # the same claim when neither hit a budget.
    if new.stats.exhausted and old.stats.exhausted:
        assert new.found == old.found


@RELAXED
@given(
    database=structures(min_facts=1, max_facts=4),
    theory=theories(max_rules=2),
    forbidden=conjunctive_queries(max_atoms=2),
)
def test_exhausted_claims_match(database, theory, forbidden):
    new = search_finite_model(
        database, theory, forbidden=forbidden, config=SearchConfig(**BOUNDS)
    )
    old = legacy_search(database, theory, forbidden=forbidden, **BOUNDS)
    # Exhaustiveness is about the search space, not the engine: with
    # identical bounds and no saturation pruning, the engines must
    # agree on whether the space was fully explored.
    if new.stats.saturation_pruned == 0 and old.stats.saturation_pruned == 0:
        assert new.stats.exhausted == old.stats.exhausted


@RELAXED
@given(database=structures(max_facts=4), theory=theories(max_rules=2))
def test_canonical_dedup_never_changes_verdict(database, theory):
    on = search_finite_model(database, theory, config=SearchConfig(**BOUNDS))
    off = search_finite_model(
        database, theory, config=SearchConfig(canonical_dedup=False, **BOUNDS)
    )
    assert on.found == off.found
    if on.stats.exhausted and off.stats.exhausted:
        # Dedup may only remove alpha-variant nodes, never add work.
        assert on.stats.nodes <= off.stats.nodes
