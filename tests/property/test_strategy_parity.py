"""Naive vs delta trigger evaluation must be *observationally identical*.

The delta strategy is an optimisation of the same non-oblivious
parallel-round chase, with canonical witness assignment designed so
that even the invented null *identities* coincide.  These tests pin
that contract fact-for-fact: same facts, same ``fact_level`` map, same
depth, same saturation flag — on random theories/databases and on the
named theories of the zoo.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.chase import ChaseConfig, ChaseStrategy, chase
from repro.zoo import (
    chain_growth_theory,
    chain_structure,
    cycle_structure,
    example1_database,
    example1_theory,
    example7_database,
    example7_theory,
    example9_database,
    example9_theory,
    random_edges_database,
    random_linear_theory,
    transitive_theory,
)

from .strategies import structures, theories

RELAXED = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def run_both(database, theory, **kwargs):
    kwargs.setdefault("max_facts", 5_000)
    naive = chase(database, theory,
                  ChaseConfig(strategy=ChaseStrategy.NAIVE, **kwargs))
    delta = chase(database, theory,
                  ChaseConfig(strategy=ChaseStrategy.DELTA, **kwargs))
    return naive, delta


def assert_parity(naive, delta):
    # Null equality is by ident, so same_facts pins invented-null
    # identities too — the strongest observable parity.
    assert naive.structure.same_facts(delta.structure)
    assert naive.fact_level == delta.fact_level
    assert naive.depth == delta.depth
    assert naive.saturated == delta.saturated
    assert sorted(n.ident for n in naive.new_elements) == sorted(
        n.ident for n in delta.new_elements
    )


class TestRandomParity:
    @RELAXED
    @given(structures(min_facts=1, max_facts=8), theories())
    def test_structures_levels_depths_agree(self, database, theory):
        assert_parity(*run_both(database, theory, max_depth=5))

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories(max_rules=2))
    def test_parity_survives_truncation(self, database, theory):
        naive, delta = run_both(database, theory, max_depth=2)
        assert_parity(naive, delta)


ZOO = [
    ("example1", example1_theory(), example1_database(), 6),
    ("example7", example7_theory(), example7_database(), 6),
    ("example9", example9_theory(), example9_database(), 6),
    ("transitive-chain", transitive_theory(), chain_structure(8), 8),
    ("transitive-cycle", transitive_theory(), cycle_structure(5), 8),
    ("chain-growth", chain_growth_theory(3),
     random_edges_database(4, 6, predicates=("P0",), seed=7), 10),
    ("random-linear", random_linear_theory(4, 5, seed=3),
     random_edges_database(4, 6, seed=3), 6),
]


class TestZooParity:
    @pytest.mark.parametrize(
        "theory, database, depth",
        [pytest.param(t, d, k, id=name) for name, t, d, k in ZOO],
    )
    def test_zoo_theory_parity(self, theory, database, depth):
        naive, delta = run_both(database, theory, max_depth=depth)
        assert_parity(naive, delta)

    def test_stats_record_the_strategy(self):
        naive, delta = run_both(chain_structure(4), transitive_theory(),
                                max_depth=6)
        assert naive.stats.strategy == "naive"
        assert delta.stats.strategy == "delta"

    def test_delta_evaluates_no_more_triggers(self):
        # The point of the optimisation: on every zoo workload the delta
        # strategy evaluates at most as many triggers as the naive one.
        for name, theory, database, depth in ZOO:
            naive, delta = run_both(database, theory, max_depth=depth)
            assert (delta.stats.triggers_evaluated
                    <= naive.stats.triggers_evaluated), name
            assert delta.stats.triggers_fired == naive.stats.triggers_fired, name
