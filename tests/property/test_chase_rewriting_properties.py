"""Property-based tests for the chase and the rewriting engine."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase import ChaseConfig, chase, is_model
from repro.lf import satisfies
from repro.rewriting import RewriteConfig, cq_subsumes, rewrite
from repro.rewriting.subsume import freeze, normalize_equalities
from repro.config import OnBudget

from .strategies import conjunctive_queries, structures, theories

RELAXED = settings(
    max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestChaseInvariants:
    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories())
    def test_chase_extends_database(self, database, theory):
        result = chase(database, theory, ChaseConfig(max_depth=4, max_facts=2_000))
        assert result.structure.contains_structure(database)

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories())
    def test_saturated_chase_is_model(self, database, theory):
        result = chase(database, theory, ChaseConfig(max_depth=6, max_facts=2_000))
        if result.saturated:
            assert is_model(result.structure, theory)

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories())
    def test_fact_levels_cover_structure(self, database, theory):
        result = chase(database, theory, ChaseConfig(max_depth=4, max_facts=2_000))
        assert set(result.fact_level) == set(result.structure.facts())
        assert all(0 <= level <= result.depth for level in result.fact_level.values())

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories())
    def test_truncations_are_monotone(self, database, theory):
        result = chase(database, theory, ChaseConfig(max_depth=4, max_facts=2_000))
        previous = result.truncate(0)
        for level in range(1, result.depth + 1):
            current = result.truncate(level)
            assert current.contains_structure(previous)
            previous = current

    @RELAXED
    @given(structures(min_facts=1, max_facts=6), theories())
    def test_chase_deterministic(self, database, theory):
        config = ChaseConfig(max_depth=4, max_facts=2_000)
        first = chase(database, theory, config)
        second = chase(database, theory, config)
        assert first.structure.same_facts(second.structure)


class TestSubsumptionInvariants:
    @RELAXED
    @given(conjunctive_queries())
    def test_subsumption_reflexive(self, query):
        assert cq_subsumes(query, query)

    @RELAXED
    @given(conjunctive_queries(), conjunctive_queries(), conjunctive_queries())
    def test_subsumption_transitive(self, a, b, c):
        if cq_subsumes(a, b) and cq_subsumes(b, c):
            assert cq_subsumes(a, c)

    @RELAXED
    @given(conjunctive_queries())
    def test_canonical_database_satisfies_query(self, query):
        normal = normalize_equalities(query)
        if normal is None:
            return
        canonical, _table = freeze(normal)
        assert satisfies(canonical, normal)


class TestRewritingSoundness:
    @RELAXED
    @given(structures(min_facts=1, max_facts=5), theories(max_rules=2), conjunctive_queries(max_atoms=2))
    def test_rewriting_agrees_with_chase(self, database, theory, query):
        """Definition 2, fuzzed: D ⊨ Φ′ iff Chase(D,T) ⊨ Φ — checked
        whenever both sides produce definite verdicts."""
        config = RewriteConfig(max_steps=400, max_queries=80, on_budget=OnBudget.RETURN)
        result = rewrite(query, theory, config)
        if not result.saturated:
            return
        chased = chase(database, theory, ChaseConfig(max_depth=5, max_facts=2_000))
        rewriting_says = satisfies(database, result.ucq)
        chase_says = satisfies(chased.structure, query)
        if chase_says:
            assert rewriting_says, (
                f"chase proves {query} but the rewriting misses it "
                f"({result.ucq})"
            )
        if rewriting_says and chased.saturated:
            assert chase_says
