"""Shared hypothesis strategies for the property-based tests.

Everything is kept small on purpose: the invariants under test are
structural, and shrinking works best when the raw material is a handful
of elements, predicates, and atoms.
"""

from hypothesis import strategies as st

from repro.lf import Atom, Constant, Null, Rule, Structure, Theory, Variable

#: A small pool of binary/unary predicate names.
binary_preds = st.sampled_from(["E", "R", "S"])
unary_preds = st.sampled_from(["U", "V"])

#: Elements: a few constants and a few nulls.
elements = st.one_of(
    st.builds(Constant, st.sampled_from(["a", "b", "c"])),
    st.builds(Null, st.integers(min_value=0, max_value=7)),
)

#: Variables drawn from a tiny pool (collisions intended).
variables = st.builds(Variable, st.sampled_from(["x", "y", "z", "u", "w"]))


@st.composite
def facts(draw):
    """A ground binary or unary fact."""
    if draw(st.booleans()):
        return Atom(draw(binary_preds), (draw(elements), draw(elements)))
    return Atom(draw(unary_preds), (draw(elements),))


@st.composite
def structures(draw, min_facts=0, max_facts=12):
    """A small structure over the shared pool."""
    pool = draw(st.lists(facts(), min_size=min_facts, max_size=max_facts))
    return Structure(pool)


@st.composite
def query_atoms(draw):
    """A binary or unary atom over variables (and rare constants)."""
    term = st.one_of(variables, st.builds(Constant, st.sampled_from(["a", "b"])))
    if draw(st.booleans()):
        return Atom(draw(binary_preds), (draw(term), draw(term)))
    return Atom(draw(unary_preds), (draw(term),))


@st.composite
def conjunctive_queries(draw, max_atoms=4):
    """A small Boolean CQ with at least one atom."""
    from repro.lf import ConjunctiveQuery

    atoms = draw(st.lists(query_atoms(), min_size=1, max_size=max_atoms))
    return ConjunctiveQuery(atoms, ())


@st.composite
def open_conjunctive_queries(draw, max_atoms=4, max_free=2):
    """A small CQ with a (possibly empty) tuple of free variables."""
    from repro.lf import ConjunctiveQuery

    atoms = draw(st.lists(query_atoms(), min_size=1, max_size=max_atoms))
    pool = sorted({v for a in atoms for v in a.variable_set()})
    if not pool:
        return ConjunctiveQuery(atoms, ())
    shuffled = draw(st.permutations(pool))
    count = draw(st.integers(min_value=0, max_value=min(max_free, len(pool))))
    return ConjunctiveQuery(atoms, tuple(shuffled[:count]))


@st.composite
def safe_rules(draw):
    """A rule whose head variables that are meant to be frontier come
    from the body; one optional extra head variable is existential."""
    body = draw(st.lists(query_atoms(), min_size=1, max_size=3))
    body_vars = sorted({v for a in body for v in a.variable_set()})
    if not body_vars:
        body = [Atom("E", (Variable("x"), Variable("y")))]
        body_vars = [Variable("x"), Variable("y")]
    frontier = draw(st.sampled_from(body_vars))
    make_existential = draw(st.booleans())
    if make_existential:
        head = Atom(draw(binary_preds), (frontier, Variable("zFresh")))
    else:
        other = draw(st.sampled_from(body_vars))
        head = Atom(draw(binary_preds), (frontier, other))
    return Rule(tuple(body), (head,))


@st.composite
def theories(draw, max_rules=3):
    """A small single-head theory."""
    pool = draw(st.lists(safe_rules(), min_size=1, max_size=max_rules))
    return Theory(pool)


@st.composite
def linear_rules(draw):
    """A linear (single-body-atom) rule — linear TGDs are BDD, so
    theories built from these are guaranteed rewritable and the UCQ
    rewriting saturates (given enough budget)."""
    x, y, fresh = Variable("x"), Variable("y"), Variable("zFresh")
    if draw(st.booleans()):
        body = Atom(draw(binary_preds), (x, y))
        frontier = draw(st.sampled_from([x, y]))
    else:
        body = Atom(draw(unary_preds), (x,))
        frontier = x
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        head = Atom(draw(binary_preds), (frontier, fresh))
    elif shape == 1:
        head = Atom(draw(binary_preds), (frontier, frontier))
    elif shape == 2 and body.arity == 2:
        head = Atom(draw(binary_preds), (y, x))
    else:
        head = Atom(draw(unary_preds), (frontier,))
    return Rule((body,), (head,))


@st.composite
def bdd_theories(draw, max_rules=4):
    """A small linear theory — BDD by construction."""
    pool = draw(st.lists(linear_rules(), min_size=1, max_size=max_rules))
    return Theory(pool)
