"""Cross-validation: canonical-subquery types vs brute-force enumeration.

The scientific heart of the ptypes package: the fast implementation
(:func:`repro.ptypes.less_equal` & friends) is checked against the
definitionally obvious enumerator on random tiny structures.

Direction of the comparison (see the bruteforce docstring):

* fast says ``ptp(d) ⊆ ptp(e)``  ⟹  *every* enumerated query true at d
  is true at e (exactness of the fast "yes");
* fast says ``⊄``  ⟹  enlarging the atom budget eventually exhibits a
  separating query.  We check it constructively: the canonical witness
  the fast implementation is built from *is* a separating query, so we
  verify it directly instead of growing budgets.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lf import satisfies
from repro.ptypes import equivalent, less_equal, type_queries
from repro.ptypes.bruteforce import (
    brute_force_equivalent,
    brute_force_subsumed,
    enumerate_type_queries,
)

from .strategies import structures

RELAXED = settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestEnumerator:
    def test_small_signature_counts(self):
        # one binary predicate, no constants, n=2, ≤1 atom:
        # atoms over {y, x0}: E(y,y), E(y,x0), E(x0,y) — E(x0,x0) has no y
        queries = list(enumerate_type_queries({"E": 2}, [], 2, 1))
        assert len(queries) == 3

    def test_equality_queries_present(self):
        from repro.lf import Constant

        queries = list(enumerate_type_queries({}, [Constant("a")], 1, 1))
        assert len(queries) == 1
        assert queries[0].atoms[0].is_equality

    def test_dedup_up_to_renaming(self):
        queries = list(enumerate_type_queries({"E": 2}, [], 3, 1))
        texts = [q.canonical() for q in queries]
        assert len(texts) == len(set(texts))


class TestFastYesIsExact:
    @RELAXED
    @given(structures(min_facts=2, max_facts=7), st.integers(min_value=1, max_value=2))
    def test_subsumption_agrees(self, structure, n):
        domain = sorted(structure.domain(), key=str)[:3]
        for left in domain:
            for right in domain:
                if less_equal(structure, left, right, n):
                    assert brute_force_subsumed(
                        structure, left, structure, right, n, max_atoms=2
                    ), f"fast ⊆ but brute-force found a separator: {left} vs {right}"

    @RELAXED
    @given(structures(min_facts=2, max_facts=7))
    def test_equivalence_agrees(self, structure):
        domain = sorted(structure.domain(), key=str)[:3]
        for left in domain:
            for right in domain:
                if equivalent(structure, left, right, 2):
                    assert brute_force_equivalent(structure, left, right, 2, max_atoms=2)


class TestFastNoHasWitness:
    @RELAXED
    @given(structures(min_facts=2, max_facts=7), st.integers(min_value=1, max_value=2))
    def test_refusals_are_witnessed(self, structure, n):
        """When the fast implementation refuses an inclusion, one of its
        canonical generators is a concrete separating query."""
        domain = sorted(structure.domain(), key=str)[:3]
        for left in domain:
            for right in domain:
                if left == right or less_equal(structure, left, right, n):
                    continue
                separators = [
                    q
                    for q in type_queries(structure, left, n)
                    if not satisfies(structure, q, {q.free[0]: right})
                ]
                assert separators, (
                    f"fast says ptp({left}) ⊄ ptp({right}) at n={n} but no "
                    "generator separates them"
                )
                # and each separator is genuinely in ptp(left):
                for query in separators:
                    assert satisfies(structure, query, {query.free[0]: left})
