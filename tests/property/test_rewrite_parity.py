"""Differential battery: the indexed worklist engine vs ``legacy_rewrite``.

The indexed engine (best-first worklist, subsumption index, memoised
rule instances) must be *semantically equivalent* to the quadratic
baseline on every workload where both saturate:

* with ``eager_subsumption=False`` the two closures are exactly the
  rewriting closure — order-independent, so the minimised outputs are
  equivalent *and* have the same number of equivalence classes;
* with eager pruning on, the engines may explore different subsets of
  the closure, but the answers they keep must still be UCQ-equivalent
  (the prune-but-factorise recovery in both engines is what makes
  this hold — see ``test_eager_matches_exact``);
* the output is invariant under the metamorphic transformations the
  semantics cannot see: atom reordering, variable renaming, and rule
  reordering.

Budgets are tiny and ``OnBudget.RETURN`` turns exhaustion into
``saturated=False``, which we ``assume`` away: parity claims only bind
saturated runs (a truncated frontier is order-dependent by nature).
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.config import OnBudget
from repro.lf import (
    ConjunctiveQuery,
    Theory,
    UnionOfConjunctiveQueries,
    Variable,
)
from repro.rewriting import (
    RewriteConfig,
    clear_subsume_cache,
    legacy_rewrite,
    rewrite,
    ucq_equivalent,
    ucq_subsumes,
)

from .strategies import bdd_theories, open_conjunctive_queries, theories

#: Small budgets; RETURN makes exhaustion visible as saturated=False.
BUDGET = dict(max_steps=800, max_queries=150, on_budget=OnBudget.RETURN)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

#: Every switch permutation the two engines share.
CONFIGS = [
    pytest.param(dict(factorize=f, eager_subsumption=e),
                 id=f"factorize={f}-eager={e}")
    for f in (True, False)
    for e in (True, False)
]


def run_both(query, theory, **overrides):
    config = RewriteConfig(**BUDGET, **overrides)
    clear_subsume_cache()
    new = rewrite(query, theory, config=config)
    clear_subsume_cache()
    old = legacy_rewrite(query, theory, config=config)
    return new, old


class TestEngineParity:
    @pytest.mark.parametrize("switches", CONFIGS)
    @RELAXED
    @given(theory=bdd_theories(), query=open_conjunctive_queries(max_atoms=3))
    def test_bdd_theories_agree(self, switches, theory, query):
        new, old = run_both(query, theory, **switches)
        assume(new.saturated and old.saturated)
        assert ucq_equivalent(new.ucq, old.ucq)

    @pytest.mark.parametrize("switches", CONFIGS)
    @RELAXED
    @given(theory=theories(), query=open_conjunctive_queries(max_atoms=3))
    def test_general_theories_agree(self, switches, theory, query):
        # safe_rules() theories are not necessarily BDD; parity must
        # still hold whenever both engines happen to saturate in budget
        new, old = run_both(query, theory, **switches)
        assume(new.saturated and old.saturated)
        assert ucq_equivalent(new.ucq, old.ucq)

    @RELAXED
    @given(theory=bdd_theories(), query=open_conjunctive_queries(max_atoms=3))
    def test_exact_mode_closures_are_canonical(self, theory, query):
        # with eager pruning off both engines enumerate the *whole*
        # rewriting closure, so minimisation sees the same equivalence
        # classes: the outputs match in count, not just semantically
        new, old = run_both(query, theory, eager_subsumption=False)
        assume(new.saturated and old.saturated)
        assert ucq_equivalent(new.ucq, old.ucq)
        assert len(new.ucq) == len(old.ucq)

    @RELAXED
    @given(theory=bdd_theories(), query=open_conjunctive_queries(max_atoms=3))
    def test_eager_matches_exact(self, theory, query):
        # eager pruning must not lose answers: prune-but-factorise
        # keeps the factorisation closure of every pruned disjunct
        # alive, so the pruned run stays equivalent to the full closure
        eager, _ = run_both(query, theory, eager_subsumption=True)
        exact, _ = run_both(query, theory, eager_subsumption=False)
        assume(eager.saturated and exact.saturated)
        assert ucq_subsumes(exact.ucq, eager.ucq)
        assert ucq_equivalent(eager.ucq, exact.ucq)


def _rewrite_default(query, theory):
    clear_subsume_cache()
    return rewrite(query, theory, config=RewriteConfig(**BUDGET))


class TestMetamorphic:
    @RELAXED
    @given(theory=bdd_theories(), query=open_conjunctive_queries(max_atoms=3),
           data=st.data())
    def test_atom_order_is_irrelevant(self, theory, query, data):
        shuffled_atoms = data.draw(st.permutations(list(query.atoms)))
        shuffled = ConjunctiveQuery(shuffled_atoms, query.free)
        base = _rewrite_default(query, theory)
        other = _rewrite_default(shuffled, theory)
        assume(base.saturated and other.saturated)
        assert ucq_equivalent(base.ucq, other.ucq)

    @RELAXED
    @given(theory=bdd_theories(), query=open_conjunctive_queries(max_atoms=3))
    def test_variable_renaming_is_irrelevant(self, theory, query):
        pool = sorted({v for a in query.atoms for v in a.variable_set()})
        renaming = {v: Variable(f"fresh_{i}") for i, v in enumerate(pool)}
        renamed = query.substitute(renaming)
        base = _rewrite_default(query, theory)
        other = _rewrite_default(renamed, theory)
        assume(base.saturated and other.saturated)
        # answers of the renamed query come back over the renamed free
        # tuple; rename them back before comparing
        undo = {renaming[v]: v for v in query.free}
        restored = UnionOfConjunctiveQueries(
            d.substitute(undo) for d in other.ucq
        )
        assert ucq_equivalent(base.ucq, restored)

    @RELAXED
    @given(theory=bdd_theories(), query=open_conjunctive_queries(max_atoms=3),
           data=st.data())
    def test_rule_order_is_irrelevant(self, theory, query, data):
        shuffled_rules = data.draw(st.permutations(list(theory.rules)))
        shuffled = Theory(shuffled_rules)
        base = _rewrite_default(query, theory)
        other = _rewrite_default(query, shuffled)
        assume(base.saturated and other.saturated)
        assert ucq_equivalent(base.ucq, other.ucq)
