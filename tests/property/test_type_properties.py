"""Property-based tests for positive types and quotients.

The central invariants of Section 2:

* type generators are true at their origin;
* ``≼_n`` is a preorder and ``≡_n`` an equivalence;
* ``≡_n`` refines as n grows (Lemma 1's first claim);
* the quotient map is a homomorphism with minimal relations (Def. 5);
* quotient projections at consecutive n are compatible (Lemma 1).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lf import satisfies
from repro.ptypes import (
    TypePartition,
    equivalent,
    is_homomorphic_image,
    less_equal,
    projections_compatible,
    quotient,
    type_queries,
)

from .strategies import structures

RELAXED = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
SIZES = st.integers(min_value=1, max_value=3)


class TestTypeGenerators:
    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_generators_true_at_origin(self, structure, n):
        for element in sorted(structure.domain(), key=str)[:4]:
            for query in type_queries(structure, element, n):
                assert satisfies(structure, query, {query.free[0]: element})

    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_generator_count_monotone_in_n(self, structure, n):
        element = sorted(structure.domain(), key=str)[0]
        small = type_queries(structure, element, n)
        large = type_queries(structure, element, n + 1)
        assert len(small) <= len(large)


class TestOrderProperties:
    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_reflexive(self, structure, n):
        for element in sorted(structure.domain(), key=str)[:4]:
            assert less_equal(structure, element, element, n)

    @RELAXED
    @given(structures(min_facts=2, max_facts=8), SIZES)
    def test_transitive(self, structure, n):
        domain = sorted(structure.domain(), key=str)[:4]
        for a in domain:
            for b in domain:
                for c in domain:
                    if less_equal(structure, a, b, n) and less_equal(structure, b, c, n):
                        assert less_equal(structure, a, c, n)

    @RELAXED
    @given(structures(min_facts=2, max_facts=8))
    def test_equivalence_refines_downward(self, structure):
        """d ≡_{n+1} e implies d ≡_n e (Lemma 1, first claim)."""
        domain = sorted(structure.domain(), key=str)[:5]
        for a in domain:
            for b in domain:
                if equivalent(structure, a, b, 3):
                    assert equivalent(structure, a, b, 2)
                    assert equivalent(structure, a, b, 1)

    @RELAXED
    @given(structures(min_facts=2, max_facts=8), SIZES)
    def test_partition_is_consistent_partition(self, structure, n):
        partition = TypePartition(structure, n)
        classes = partition.classes()
        union = {e for group in classes for e in group}
        assert union == structure.domain()
        flat = [e for group in classes for e in group]
        assert len(flat) == len(union)  # disjoint


class TestQuotientProperties:
    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_projection_is_homomorphism(self, structure, n):
        quotiented = quotient(structure, n)
        for fact in structure.facts():
            assert quotiented.project_fact(fact) in quotiented.structure

    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_relations_minimal(self, structure, n):
        assert is_homomorphic_image(quotient(structure, n))

    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_constants_fixed(self, structure, n):
        quotiented = quotient(structure, n)
        for constant in structure.constant_elements():
            assert quotiented.project(constant) == constant

    @RELAXED
    @given(structures(min_facts=1, max_facts=8))
    def test_lemma1_compatibility(self, structure):
        finer = quotient(structure, 3)
        coarser = quotient(structure, 2)
        assert projections_compatible(finer, coarser)

    @RELAXED
    @given(structures(min_facts=1, max_facts=8), SIZES)
    def test_quotient_no_larger(self, structure, n):
        assert quotient(structure, n).size <= structure.domain_size

    @RELAXED
    @given(structures(min_facts=1, max_facts=8))
    def test_quotient_size_monotone_in_n(self, structure):
        """Finer types, more classes."""
        assert quotient(structure, 1).size <= quotient(structure, 2).size
        assert quotient(structure, 2).size <= quotient(structure, 3).size
