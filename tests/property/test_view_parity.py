"""Property suite: ``ChaseView.update`` ≡ full rechase.

The contract under fuzz (random add/retract streams, both store
backends):

* **datalog theories** — the restricted chase of a datalog theory is
  its unique minimal fixpoint, so the maintained view must equal a
  from-scratch rechase of the evolved base *fact for fact*, after
  every batch.
* **existential theories** — the restricted chase is not confluent
  under suppression, so only homomorphic equivalence is promised:
  whenever both sides saturate, the constants-only facts, Boolean
  verdicts, and certain answers must coincide (nulls may differ in
  number and name).
* **stats invariants** — the IncrStats counters are internally
  consistent on every update.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.chase import (
    ChaseConfig,
    ChaseView,
    chase,
    chase_entails,
)
from repro.config import OnBudget
from repro.lf import Atom, Constant, Rule, Structure, Theory, Variable

from .strategies import bdd_theories, conjunctive_queries

#: Constants-only fact material: invented nulls never collide with it.
_consts = st.builds(Constant, st.sampled_from(["a", "b", "c", "d"]))


@st.composite
def const_facts(draw):
    if draw(st.booleans()):
        return Atom(draw(st.sampled_from(["E", "R"])),
                    (draw(_consts), draw(_consts)))
    return Atom(draw(st.sampled_from(["U", "V"])), (draw(_consts),))


@st.composite
def datalog_rules(draw):
    """A safe datalog rule: head variables all come from the body."""
    body = tuple(draw(st.lists(
        st.builds(
            Atom,
            st.sampled_from(["E", "R"]),
            st.tuples(
                st.builds(Variable, st.sampled_from(["x", "y", "z"])),
                st.builds(Variable, st.sampled_from(["x", "y", "z"])),
            ),
        ),
        min_size=1, max_size=2,
    )))
    body_vars = sorted({v for a in body for v in a.variable_set()})
    head_pred = draw(st.sampled_from(["E", "R", "U"]))
    if head_pred == "U":
        head = Atom("U", (draw(st.sampled_from(body_vars)),))
    else:
        head = Atom(head_pred, (draw(st.sampled_from(body_vars)),
                                draw(st.sampled_from(body_vars))))
    return Rule(body, (head,))


@st.composite
def datalog_theories(draw):
    return Theory(draw(st.lists(datalog_rules(), min_size=1, max_size=3)))


#: A stream script: per batch, facts to add and indices used to pick
#: retractions out of the *current* base (evaluated at apply time, so
#: retracts always name live base facts).
scripts = st.lists(
    st.tuples(
        st.lists(const_facts(), max_size=3),
        st.lists(st.integers(min_value=0, max_value=31), max_size=2),
    ),
    min_size=1, max_size=4,
)


def _apply_script(view, base, script):
    """Drive *view* through *script*, yielding (result, base) per batch."""
    for adds, remove_picks in script:
        live = sorted(base, key=str)
        removes = []
        for pick in remove_picks:
            if not live:
                break
            victim = live[pick % len(live)]
            if victim not in removes:
                removes.append(victim)
        result = view.update(adds=adds, removes=removes)
        base.difference_update(removes)
        base.update(adds)
        assert view.base_facts() == frozenset(base)
        yield result, base


class TestDatalogParity:
    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(facts=st.lists(const_facts(), max_size=8),
           theory=datalog_theories(), script=scripts)
    def test_stream_equals_rechase(self, backend, facts, theory, script):
        base = set(facts)
        view = ChaseView(Structure(base), theory,
                         max_depth=None, max_facts=50_000, store=backend)
        assert view.saturated
        for result, current in _apply_script(view, base, script):
            assert result.saturated
            fresh = chase(Structure(current), theory,
                          ChaseConfig(max_depth=None, max_facts=50_000))
            assert fresh.saturated
            assert view.facts() == fresh.structure.facts()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(facts=st.lists(const_facts(), max_size=8),
           theory=datalog_theories(), script=scripts)
    def test_stats_invariants(self, facts, theory, script):
        base = set(facts)
        view = ChaseView(Structure(base), theory,
                         max_depth=None, max_facts=50_000)
        for result, _current in _apply_script(view, base, script):
            stats = result.stats
            # everything rederived was first lost (removed or overdeleted)
            assert stats.rederived <= stats.overdeleted + stats.removes_in
            assert len(stats.delta_sizes) == len(stats.rounds)
            assert stats.resumed_rounds <= len(stats.rounds)
            assert stats.facts_added == sum(
                r.facts_added for r in stats.rounds)
            # the net delta reported by the update matches the view
            for fact in result.added:
                assert view.structure.has_fact(fact)
            for fact in result.removed:
                assert not view.structure.has_fact(fact)


class TestExistentialParity:
    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(facts=st.lists(const_facts(), min_size=1, max_size=6),
           theory=bdd_theories(), script=scripts,
           query=conjunctive_queries())
    def test_homomorphic_equivalence(self, backend, facts, theory,
                                     script, query):
        budget = dict(max_depth=None, max_facts=400,
                      on_budget=OnBudget.RETURN)
        base = set(facts)
        view = ChaseView(Structure(base), theory, store=backend, **budget)
        assume(view.saturated)
        for result, current in _apply_script(view, base, script):
            assume(result.saturated)
            fresh = chase(Structure(current), theory, ChaseConfig(**budget))
            assume(fresh.saturated)
            # constants-only facts coincide (nulls may differ)
            ours = {f for f in view.facts()
                    if all(isinstance(t, Constant) for t in f.args)}
            theirs = {f for f in fresh.structure.facts()
                      if all(isinstance(t, Constant) for t in f.args)}
            assert ours == theirs
            # Boolean verdicts coincide
            assert view.certain_one(query).verdict == chase_entails(
                fresh, query)
