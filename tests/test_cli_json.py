"""The CLI's machine-readable surface: ``--json`` and ``--stats``.

Every command must emit exactly one JSON object with the shared keys,
the flags must parse both before and after the command name, and the
output must be deterministic once the (documented) timing fields are
stripped.
"""

import json

import pytest

from repro.chase.stats import TIMING_FIELDS
from repro.fc import SEARCH_TIMING_FIELDS
from repro.rewriting import REWRITE_TIMING_FIELDS
from repro.cli import (
    EXIT_ERROR,
    EXIT_INCOMPLETE,
    EXIT_NO_COUNTERMODEL,
    EXIT_OK,
    main,
)

LINEAR = "E(x,y) -> exists z. E(y,z)"
EXAMPLE7 = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(u,y) -> R(x,u)"
DB = "E(a,b)"


def run_json(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 1, f"--json must emit exactly one line, got: {out!r}"
    return code, json.loads(lines[0])


NONDETERMINISTIC = (
    frozenset(TIMING_FIELDS)
    | frozenset(SEARCH_TIMING_FIELDS)
    | frozenset(REWRITE_TIMING_FIELDS)
)


def strip_timings(payload):
    """Drop the documented nondeterministic fields, recursively."""
    if isinstance(payload, dict):
        return {
            key: strip_timings(value)
            for key, value in payload.items()
            if key not in NONDETERMINISTIC
        }
    if isinstance(payload, list):
        return [strip_timings(item) for item in payload]
    return payload


class TestJsonShape:
    COMMANDS = [
        ("chase", ["-e", "chase", LINEAR, DB, "--depth", "3"], EXIT_OK),
        ("certain", ["-e", "certain", LINEAR, DB, "E(x,y), E(y,z)"], EXIT_OK),
        ("rewrite", ["-e", "rewrite", EXAMPLE7, "R(x,u)", "--free", "x,u"],
         EXIT_OK),
        ("classify", ["-e", "classify", LINEAR], EXIT_OK),
        ("countermodel", ["-e", "countermodel", LINEAR, DB, "E(x,x)"],
         EXIT_OK),
        ("skeleton", ["-e", "skeleton", EXAMPLE7, DB], EXIT_OK),
        ("fc-search", ["-e", "fc-search", LINEAR, DB, "--max-elements", "5"],
         EXIT_OK),
    ]

    @pytest.mark.parametrize(
        "name, argv, expected",
        [pytest.param(*c, id=c[0]) for c in COMMANDS],
    )
    def test_every_command_emits_one_object(self, capsys, name, argv, expected):
        code, payload = run_json(capsys, *argv, "--json")
        assert code == expected
        assert payload["command"] == name
        assert payload["exit_code"] == code
        assert "status" in payload and "counts" in payload
        assert all(isinstance(v, int) for v in payload["counts"].values())

    def test_flag_position_is_irrelevant(self, capsys):
        after = run_json(capsys, "-e", "chase", LINEAR, DB, "--depth", "2",
                         "--json")
        before = run_json(capsys, "--json", "-e", "chase", LINEAR, DB,
                          "--depth", "2")
        assert strip_timings(after[1]) == strip_timings(before[1])

    def test_chase_payload_carries_stats(self, capsys):
        code, payload = run_json(capsys, "-e", "chase", LINEAR, DB,
                                 "--depth", "3", "--json")
        stats = payload["stats"]
        assert stats["strategy"] == "delta"
        assert len(stats["rounds"]) == 3
        assert stats["totals"]["triggers_evaluated"] >= 3
        assert payload["facts"] == sorted(payload["facts"])

    def test_chase_incremental_payload(self, capsys):
        code, payload = run_json(
            capsys, "-e", "chase", "E(x,y), E(y,z) -> E(x,z)",
            "E(a,b)\nE(b,c)", "--depth", "8",
            "--incremental", "+ E(c,d)\n\n- E(a,b)", "--json",
        )
        assert code == EXIT_OK
        assert payload["command"] == "chase"
        assert payload["mode"] == "incremental"
        assert payload["counts"]["updates"] == 2
        assert len(payload["updates"]) == 2
        first, second = payload["updates"]
        assert first["adds_in"] == 1 and second["removes_in"] == 1
        assert second["overdeleted"] >= 1
        assert payload["facts"] == sorted(payload["facts"])
        # determinism once timings are stripped (the hom block is
        # additionally plan-cache-warmth dependent across runs)
        rerun = run_json(
            capsys, "-e", "chase", "E(x,y), E(y,z) -> E(x,z)",
            "E(a,b)\nE(b,c)", "--depth", "8",
            "--incremental", "+ E(c,d)\n\n- E(a,b)", "--json",
        )
        first_run, second_run = strip_timings(payload), strip_timings(rerun[1])
        first_run["stats"].pop("hom", None)
        second_run["stats"].pop("hom", None)
        assert first_run == second_run

    def test_rewrite_payload_carries_stats(self, capsys):
        code, payload = run_json(capsys, "-e", "rewrite", EXAMPLE7,
                                 "R(x,u)", "--free", "x,u", "--json")
        assert code == EXIT_OK
        stats = payload["stats"]
        assert stats["engine"] == "indexed"
        assert stats["kept"] >= stats["minimized"] == payload["counts"]["disjuncts"]
        assert stats["candidates"] >= stats["subsumed"] + stats["duplicates"]
        for field in REWRITE_TIMING_FIELDS:
            assert field in stats

    def test_rewrite_legacy_payload(self, capsys):
        code, payload = run_json(capsys, "-e", "rewrite", EXAMPLE7,
                                 "R(x,u)", "--free", "x,u", "--legacy",
                                 "--json")
        assert code == EXIT_OK
        assert payload["stats"]["engine"] == "legacy"
        assert payload["counts"]["disjuncts"] == 3

    def test_rewrite_engines_agree_modulo_naming(self, capsys):
        _, new = run_json(capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)",
                          "--free", "x,u", "--json")
        _, old = run_json(capsys, "-e", "rewrite", EXAMPLE7, "R(x,u)",
                          "--free", "x,u", "--legacy", "--json")
        # step counts legitimately differ (the indexed engine's
        # prefilter skips hopeless rule applications before they count)
        for key in ("disjuncts", "max_width", "depth_bound"):
            assert new["counts"][key] == old["counts"][key]
        assert new["status"] == old["status"]

    def test_certain_unknown_maps_to_exit_2(self, capsys):
        code, payload = run_json(capsys, "-e", "certain", LINEAR, DB,
                                 "E(x,x)", "--depth", "4", "--json")
        assert code == EXIT_INCOMPLETE
        assert payload["status"] == "unknown"

    def test_countermodel_certain_maps_to_exit_3(self, capsys):
        code, payload = run_json(capsys, "-e", "countermodel", LINEAR, DB,
                                 "E(x,y), E(y,z)", "--json")
        assert code == EXIT_NO_COUNTERMODEL
        assert payload["status"] == "query-certain"
        assert payload["facts"] == []

    def test_fc_search_model_found_payload(self, capsys):
        code, payload = run_json(capsys, "-e", "fc-search", LINEAR, DB,
                                 "--max-elements", "5", "--json")
        assert code == EXIT_OK
        assert payload["status"] == "model-found"
        assert payload["counts"]["model_size"] >= 2
        assert payload["facts"] == sorted(payload["facts"])
        assert payload["stats"]["engine"] == "delta"

    def test_fc_search_exhausted_maps_to_exit_3(self, capsys):
        code, payload = run_json(capsys, "-e", "fc-search", LINEAR, DB,
                                 "E(x,y)", "--max-elements", "4", "--json")
        assert code == EXIT_NO_COUNTERMODEL
        assert payload["status"] == "exhausted-no-model"
        assert payload["facts"] == []

    def test_fc_search_budget_maps_to_exit_2(self, capsys):
        code, payload = run_json(capsys, "-e", "fc-search", LINEAR, DB,
                                 "E(x,x)", "--max-elements", "3",
                                 "--max-nodes", "1", "--json")
        assert code == EXIT_INCOMPLETE
        assert payload["status"] == "budget-exhausted"

    def test_parse_errors_are_json_too(self, capsys):
        code, payload = run_json(capsys, "--json", "-e", "chase",
                                 "E(x,y -> broken", DB)
        assert code == EXIT_ERROR
        assert payload["status"] == "error"
        assert "error" in payload


class TestDeterminism:
    def test_json_deterministic_modulo_timings(self, capsys):
        argv = ("-e", "chase", LINEAR, DB, "--depth", "4", "--json")
        _, first = run_json(capsys, *argv)
        _, second = run_json(capsys, *argv)
        assert first != {} and strip_timings(first) == strip_timings(second)

    def test_fc_search_json_deterministic_modulo_timings(self, capsys):
        argv = ("-e", "fc-search", LINEAR, DB, "E(x,y)",
                "--max-elements", "4", "--json")
        _, first = run_json(capsys, *argv)
        _, second = run_json(capsys, *argv)
        assert first != {} and strip_timings(first) == strip_timings(second)

    def test_stats_text_deterministic_modulo_wall(self, capsys):
        argv = ("-e", "chase", LINEAR, DB, "--depth", "4", "--stats")

        def stats_lines():
            assert main(list(argv)) == EXIT_OK
            out = capsys.readouterr().out
            return [line.split(" wall=")[0] for line in out.splitlines()
                    if line.startswith("#")]

        first = stats_lines()
        second = stats_lines()
        assert first == second
        assert any(line.startswith("# round 1:") for line in first)

    def test_stats_lines_cover_every_round(self, capsys):
        assert main(["-e", "chase", LINEAR, DB, "--depth", "3",
                     "--stats"]) == EXIT_OK
        out = capsys.readouterr().out
        for round_number in (1, 2, 3):
            assert f"# round {round_number}:" in out
        assert "# totals:" in out
