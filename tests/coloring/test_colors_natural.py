"""Tests for colors, colorings, and natural colorings (Def. 6, 7, 14)."""

import pytest

from repro.errors import ColoringError
from repro.lf import Constant, Null, Structure, atom
from repro.coloring import (
    Color,
    apply_coloring,
    coloring_from_structure,
    cyclic_coloring,
    distinct_coloring,
    hue_assignment,
    is_natural,
    lightness_classes,
    natural_coloring,
    naturality_violations,
)

a, b = Constant("a"), Constant("b")
n = [Null(i) for i in range(30)]


def chain(length):
    return Structure(atom("E", n[i], n[i + 1]) for i in range(length))


class TestColor:
    def test_predicate_roundtrip(self):
        color = Color(3, 7)
        assert Color.parse(color.predicate) == color

    def test_parse_rejects_other_names(self):
        assert Color.parse("E") is None
        assert Color.parse("K_hx_l1") is None

    def test_ordering_and_hash(self):
        assert Color(0, 1) < Color(1, 0)
        assert len({Color(1, 1), Color(1, 1)}) == 1


class TestApplyColoring:
    def test_each_element_one_color_atom(self):
        s = chain(3)
        colored = apply_coloring(s, {e: Color(0, 0) for e in s.domain()})
        assert not colored.verify()
        color_facts = [
            f for f in colored.structure.facts() if Color.parse(f.pred) is not None
        ]
        assert len(color_facts) == s.domain_size

    def test_base_restriction_recovers_original(self):
        s = chain(3)
        colored = apply_coloring(s, {e: Color(0, 0) for e in s.domain()})
        assert colored.base.same_facts(s)

    def test_missing_element_rejected(self):
        s = chain(3)
        with pytest.raises(ColoringError):
            apply_coloring(s, {n[0]: Color(0, 0)})

    def test_base_name_collision_rejected(self):
        s = Structure([atom("K_h0_l0", n[0])])
        with pytest.raises(ColoringError):
            apply_coloring(s, {n[0]: Color(1, 1)})

    def test_roundtrip_through_structure(self):
        s = chain(3)
        colored = apply_coloring(s, {e: Color(0, 0) for e in s.domain()})
        recovered = coloring_from_structure(colored.structure)
        assert recovered.assignment == colored.assignment
        assert recovered.base_relations == colored.base_relations

    def test_from_structure_rejects_uncolored(self):
        with pytest.raises(ColoringError):
            coloring_from_structure(chain(2))


class TestNaturalColoring:
    def test_chain_hue_count(self):
        """On a chain, P_m(e) spans m+2 consecutive elements (P_0 already
        contains the parent, Definition 13), so the greedy natural
        coloring uses exactly m+2 hues."""
        s = chain(20)
        hues = hue_assignment(s, 2)
        chain_hues = {hues[n[i]] for i in range(21)}
        assert len(chain_hues) == 4

    def test_hues_differ_along_ancestors(self):
        s = chain(20)
        colored = natural_coloring(s, 3)
        for i in range(17):
            window = {colored.assignment[n[i + k]].hue for k in range(4)}
            assert len(window) == 4

    def test_lightness_separates_root(self):
        s = chain(5)
        light = lightness_classes(s)
        assert light[n[0]] != light[n[2]]  # root has no parent
        assert light[n[2]] == light[n[3]]

    def test_natural_coloring_is_natural(self):
        assert is_natural(natural_coloring(chain(12), 2), 2)

    def test_constants_get_unique_colors(self):
        s = Structure([atom("E", a, n[0]), atom("E", b, n[1])])
        colored = natural_coloring(s, 1)
        assert colored.assignment[a] != colored.assignment[b]

    def test_violations_detected(self):
        s = chain(6)
        # all same color: ancestors share hues
        bad = apply_coloring(s, {e: Color(0, 0) for e in s.domain()})
        assert naturality_violations(bad, 1)

    def test_lightness_violation_detected(self):
        s = chain(4)
        # give root and a middle element the same color: their
        # P-neighbourhoods differ (no parent vs one parent)
        assignment = {e: Color(i, 0) for i, e in enumerate(sorted(s.domain(), key=str))}
        assignment[n[0]] = Color(99, 5)
        assignment[n[2]] = Color(98, 5)  # same lightness 5, different hue
        bad = apply_coloring(s, assignment)
        assert any("isomorphic" in v for v in naturality_violations(bad, 1))

    def test_tree_coloring(self):
        # binary tree of depth 3
        facts = []
        counter = [1]
        def grow(parent, depth):
            if depth == 0:
                return
            for pred in ("F", "G"):
                child = n[counter[0]]; counter[0] += 1
                facts.append(atom(pred, parent, child))
                grow(child, depth - 1)
        grow(n[0], 3)
        tree = Structure(facts)
        colored = natural_coloring(tree, 2)
        assert is_natural(colored, 2)


class TestBoundedPalettes:
    def test_cyclic_coloring_palette(self):
        colored = cyclic_coloring(chain(10), 4)
        assert colored.palette_size == 4

    def test_cyclic_coloring_matches_example4(self):
        colored = cyclic_coloring(chain(10), 3)
        for i in range(11):
            assert colored.assignment[n[i]].hue == i % 3

    def test_cyclic_needs_positive_palette(self):
        with pytest.raises(ValueError):
            cyclic_coloring(chain(3), 0)

    def test_distinct_coloring_identity_palette(self):
        s = chain(5)
        colored = distinct_coloring(s)
        assert colored.palette_size == s.domain_size
