"""Tests for conservativity (Def. 8, 9) and the (♠2)/(♠3) distinction."""

import pytest

from repro.errors import ConservativityError
from repro.lf import Constant, Null, Structure, atom
from repro.coloring import (
    Color,
    apply_coloring,
    conservativity_report,
    cyclic_coloring,
    find_conservative,
    is_conservative,
    natural_coloring,
    spade3_holds,
)

n = [Null(i) for i in range(40)]


def chain(length):
    return Structure(atom("E", n[i], n[i + 1]) for i in range(length))


def total_order(size):
    return Structure(
        atom("E", n[i], n[j]) for i in range(size) for j in range(i + 1, size)
    )


class TestExample4:
    """The colored chain: conservative up to m with m+1 colors, not m+1."""

    def test_conservative_up_to_m(self):
        colored = cyclic_coloring(chain(25), 3)
        assert is_conservative(colored, n=4, m=2)

    def test_not_conservative_one_size_up(self):
        colored = cyclic_coloring(chain(25), 3)
        report = conservativity_report(colored, n=6, m=3)
        assert not report.conservative
        # the witness is the (m+1)-cycle the projection created
        assert report.witness_query is not None
        assert len([a for a in report.witness_query.atoms if not a.is_equality]) >= 3

    def test_small_n_fails(self):
        """Example 4's last paragraph: n < m breaks preservation."""
        colored = cyclic_coloring(chain(25), 3)
        assert not is_conservative(colored, n=1, m=2)

    def test_more_colors_allow_bigger_m(self):
        colored = cyclic_coloring(chain(30), 5)
        assert is_conservative(colored, n=6, m=4)


class TestExample3:
    def test_uncolored_chain_not_conservative(self):
        trivial = apply_coloring(
            chain(12), {e: Color(0, 0) for e in chain(12).domain()}
        )
        report = conservativity_report(trivial, n=3, m=1)
        assert not report.conservative
        # Example 3's failure: a reflexive E-atom becomes visible
        assert "E" in str(report.witness_query)


class TestExample5:
    def test_chain_is_ptp_conservative(self):
        """Example 5: for each m, the natural coloring works."""
        for m in (1, 2):
            witness = find_conservative(chain(20), m)
            assert witness.n >= m
            assert witness.quotient.size < 21

    def test_find_conservative_reports_attempts(self):
        witness = find_conservative(chain(20), 2)
        assert witness.attempts[-1] == witness.n


class TestExample6:
    """The total order: no bounded-palette coloring is conservative.

    Finite rendition of the paper's infinite statement: for a *fixed*
    palette and quotient parameter, a long enough order must merge two
    comparable elements, creating the reflexive edge ``E(y, y)`` that
    no element of an irreflexive order satisfies.  (On a *short* order
    the boundary effects of positive types can distinguish everything,
    so the length must outgrow the palette.)
    """

    def test_bounded_palette_fails(self):
        for palette in (2, 3):
            colored = cyclic_coloring(total_order(4 * palette), palette)
            report = conservativity_report(colored, n=2, m=1)
            assert not report.conservative
            # the witness is the reflexive edge E(y, y)
            assert "E(y, y)" in str(report.witness_query)

    def test_search_fails_with_cyclic_coloring(self):
        order = total_order(12)
        with pytest.raises(ConservativityError):
            find_conservative(order, m=1, n_start=1, n_max=2,
                              coloring=cyclic_coloring(order, 3))

    def test_short_order_is_degenerately_fine(self):
        """Control: on a short order the quotient is the identity and
        conservativity holds vacuously — the phenomenon needs length."""
        order = total_order(6)
        report = conservativity_report(cyclic_coloring(order, 3), n=3, m=1)
        assert report.conservative
        assert report.quotient.size == 6


class TestRemark3:
    """(♠3) can hold while (♠2) fails: the loop-plus-chain structure."""

    @staticmethod
    def loop_and_chain():
        facts = [atom("E", n[30], n[30])]  # the E(a,a) loop
        facts += [atom("E", n[i], n[j]) for i in range(12) for j in range(i + 1, 12)]
        return Structure(facts)

    def test_spade3_holds_but_spade2_fails(self):
        structure = self.loop_and_chain()
        colored = cyclic_coloring(structure, 3)
        report = conservativity_report(colored, n=2, m=2)
        ok3, counterexample = spade3_holds(colored, n=2, m=2, prebuilt=report.quotient)
        assert ok3, f"unexpected new sentence: {counterexample}"
        assert not report.conservative

    def test_spade3_counterexample_reported(self):
        # an uncolored chain: the quotient has a loop, and a loop is a
        # *sentence* (1 variable) absent from the chain — (♠3) fails too
        trivial = apply_coloring(
            chain(12), {e: Color(0, 0) for e in chain(12).domain()}
        )
        ok, counterexample = spade3_holds(trivial, n=3, m=2)
        assert not ok
        assert counterexample is not None


class TestReportMechanics:
    def test_quotient_reusable(self):
        colored = cyclic_coloring(chain(15), 3)
        report = conservativity_report(colored, n=4, m=2)
        again = conservativity_report(colored, n=4, m=2, prebuilt=report.quotient)
        assert again.conservative == report.conservative

    def test_bool_protocol(self):
        colored = cyclic_coloring(chain(15), 3)
        assert conservativity_report(colored, n=4, m=2)
        assert not conservativity_report(colored, n=1, m=2)
