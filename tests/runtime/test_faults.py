"""The deterministic fault injector itself: validation, counting,
hook lifecycle, and its interaction with guard construction."""

import pytest

from repro.chase import ChaseConfig
from repro.runtime import (
    NULL_GUARD,
    RuntimeGuard,
    StopReason,
    fault_hook_installed,
)
from repro.testing import ENGINE_NAMES, FaultInjector, inject_fault


class TestValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            with inject_fault("turbo-chase", "deadline"):
                pass

    @pytest.mark.parametrize("reason", ["fixpoint", "budget"])
    def test_engine_decided_reasons_cannot_be_injected(self, reason):
        with pytest.raises(ValueError, match="only guard reasons"):
            with inject_fault("chase", reason):
                pass

    def test_garbage_reason_rejected(self):
        with pytest.raises(ValueError):
            with inject_fault("chase", "oom"):
                pass

    def test_checkpoint_index_must_be_positive(self):
        with pytest.raises(ValueError, match="at_checkpoint"):
            with inject_fault("chase", "deadline", at_checkpoint=0):
                pass

    def test_string_reason_coerced_to_enum(self):
        with inject_fault("rewrite", "memory") as injector:
            assert injector.reason is StopReason.MEMORY

    def test_every_engine_name_is_accepted(self):
        for engine in ENGINE_NAMES:
            with inject_fault(engine, StopReason.CANCELLED):
                pass


class TestHookLifecycle:
    def test_hook_installed_only_inside_the_scope(self):
        assert not fault_hook_installed()
        with inject_fault("chase", "deadline"):
            assert fault_hook_installed()
        assert not fault_hook_installed()

    def test_hook_cleared_when_the_body_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            with inject_fault("chase", "deadline"):
                raise RuntimeError("boom")
        assert not fault_hook_installed()

    def test_nesting_is_rejected(self):
        with inject_fault("chase", "deadline"):
            with pytest.raises(RuntimeError, match="already active"):
                with inject_fault("rewrite", "memory"):
                    pass
        assert not fault_hook_installed()


class TestCounting:
    def test_trips_at_the_requested_checkpoint(self):
        injector = FaultInjector("chase", StopReason.DEADLINE, at_checkpoint=3)
        assert injector("chase") is None
        assert injector("chase") is None
        assert injector("chase") is StopReason.DEADLINE
        assert injector.tripped
        # ...and keeps returning the reason from there on.
        assert injector("chase") is StopReason.DEADLINE

    def test_other_engines_pass_through_and_do_not_count(self):
        injector = FaultInjector("rewrite", StopReason.CANCELLED, at_checkpoint=2)
        for _ in range(10):
            assert injector("chase") is None
        assert injector.calls == 0
        assert injector("rewrite") is None
        assert injector("rewrite") is StopReason.CANCELLED

    def test_repr_is_informative(self):
        injector = FaultInjector("chase", StopReason.MEMORY)
        assert "chase" in repr(injector)
        injector("chase")
        assert "tripped" in repr(injector)


class TestGuardInteraction:
    def test_hook_forces_an_active_guard_on_unbudgeted_configs(self):
        # Without the hook an unbudgeted config gets NULL_GUARD and a
        # fault could never reach the engine.
        assert RuntimeGuard.from_config(ChaseConfig(), "chase") is NULL_GUARD
        with inject_fault("chase", "deadline"):
            guard = RuntimeGuard.from_config(ChaseConfig(), "chase")
            assert guard.active
            assert guard.check() is StopReason.DEADLINE

    def test_guards_disabled_beats_the_injector(self):
        with inject_fault("chase", "deadline"):
            config = ChaseConfig(guards_disabled=True)
            assert RuntimeGuard.from_config(config, "chase") is NULL_GUARD

    def test_uninstalled_hook_stops_counting(self):
        # The trip was scheduled for checkpoint 2, but the scope closed
        # after checkpoint 1 — the guard must stay clean.
        with inject_fault("fc-search", "memory", at_checkpoint=2):
            guard = RuntimeGuard.from_config(ChaseConfig(), "fc-search")
            assert guard.check() is None
        assert guard.check() is None

    def test_injection_respects_the_engine_name_altitude(self):
        # A pipeline fault must not trip the pipeline's inner chases.
        with inject_fault("pipeline", "deadline"):
            chase_guard = RuntimeGuard.from_config(ChaseConfig(), "chase")
            assert chase_guard.check() is None
            pipe_guard = RuntimeGuard.from_config(ChaseConfig(), "pipeline")
            assert pipe_guard.check() is StopReason.DEADLINE
