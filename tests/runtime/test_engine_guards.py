"""The engine battery: every ``stopped_reason`` reachable in every engine.

For each of the four engines (chase, rewrite, fc-search, pipeline) this
file demonstrates all five stop causes — ``fixpoint`` and ``budget``
through natural runs, ``deadline``/``cancelled``/``memory`` through the
deterministic fault injector — and checks the two ``OnBudget`` policies:

* ``RETURN``: a partial result flagged incomplete, with the stats
  snapshot populated and ``stopped_reason`` naming the cause;
* ``RAISE``: the matching typed exception
  (:class:`~repro.errors.DeadlineExceeded` /
  :class:`~repro.errors.Cancelled` /
  :class:`~repro.errors.MemoryBudgetExceeded`) carrying the same
  snapshot on ``.stats``.

Plus the degradation contract: a guard-stopped partial run is a prefix
of the full run, and re-running without the fault yields the verdict.
"""

import pytest

from repro.chase import ChaseConfig, chase
from repro.config import OnBudget
from repro.core import PipelineConfig, build_finite_counter_model
from repro.errors import Cancelled, DeadlineExceeded, MemoryBudgetExceeded
from repro.fc import SearchConfig, legacy_search, search_finite_model
from repro.lf import parse_query, parse_structure, parse_theory
from repro.rewriting import RewriteConfig, legacy_rewrite, rewrite
from repro.runtime import GUARD_REASONS, StopReason
from repro.testing import inject_fault

LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")
SYMM = parse_theory("E(x,y) -> E(y,x)")
TRANS = parse_theory("E(x,y), E(y,z) -> E(x,z)")
DB = parse_structure("E(a,b)")
Q_LOOP = parse_query("E(x,x)")

REASON_EXC = {
    StopReason.DEADLINE: DeadlineExceeded,
    StopReason.CANCELLED: Cancelled,
    StopReason.MEMORY: MemoryBudgetExceeded,
}

guard_reasons = pytest.mark.parametrize(
    "reason", GUARD_REASONS, ids=[r.value for r in GUARD_REASONS]
)


def edge_query():
    return parse_query("E(u,v)", free=["u", "v"])


# ----------------------------------------------------------------------
# chase
# ----------------------------------------------------------------------

class TestChase:
    def test_fixpoint(self):
        result = chase(DB, SYMM)
        assert result.saturated
        assert result.stopped_reason is StopReason.FIXPOINT

    def test_budget(self):
        result = chase(DB, LINEAR, max_depth=3)
        assert not result.saturated
        assert result.stopped_reason is StopReason.BUDGET

    @guard_reasons
    def test_guard_return_policy(self, reason):
        with inject_fault("chase", reason) as injector:
            result = chase(DB, LINEAR, max_depth=50)
        assert injector.tripped
        assert result.stopped_reason is reason
        assert not result.saturated
        assert result.stats is not None
        # The partial structure is still a sound truncation: it
        # contains the database.
        assert result.structure.contains_structure(DB)

    @guard_reasons
    def test_guard_raise_policy(self, reason):
        with inject_fault("chase", reason):
            with pytest.raises(REASON_EXC[reason]) as excinfo:
                chase(DB, LINEAR, max_depth=50, on_budget=OnBudget.RAISE)
        assert excinfo.value.stats is not None
        assert excinfo.value.stopped_reason == reason.value

    def test_partial_run_is_a_prefix_of_the_full_run(self):
        # A mid-run stop holds the last completed round: its facts are
        # a subset of a longer (deterministic) run's facts.
        with inject_fault("chase", "deadline", at_checkpoint=3):
            partial = chase(DB, LINEAR, max_depth=50)
        full = chase(DB, LINEAR, max_depth=8)
        assert partial.depth < full.depth
        assert set(partial.structure.facts()) <= set(full.structure.facts())


# ----------------------------------------------------------------------
# rewrite
# ----------------------------------------------------------------------

class TestRewrite:
    def test_fixpoint(self):
        result = rewrite(edge_query(), parse_theory("R(x,y) -> E(x,y)"))
        assert result.saturated
        assert result.stopped_reason is StopReason.FIXPOINT

    def test_budget(self):
        config = RewriteConfig(max_steps=1, on_budget=OnBudget.RETURN)
        result = rewrite(edge_query(), TRANS, config)
        assert not result.saturated
        assert result.stopped_reason is StopReason.BUDGET

    @guard_reasons
    def test_guard_return_policy(self, reason):
        with inject_fault("rewrite", reason) as injector:
            result = rewrite(
                edge_query(), TRANS, on_budget=OnBudget.RETURN
            )
        assert injector.tripped
        assert result.stopped_reason is reason
        assert not result.saturated
        assert result.stats is not None

    @guard_reasons
    def test_guard_raise_policy(self, reason):
        # RewriteConfig defaults to OnBudget.RAISE.
        with inject_fault("rewrite", reason):
            with pytest.raises(REASON_EXC[reason]) as excinfo:
                rewrite(edge_query(), TRANS)
        assert excinfo.value.stats is not None
        assert excinfo.value.stopped_reason == reason.value

    @guard_reasons
    def test_legacy_engine_obeys_the_same_guard(self, reason):
        with inject_fault("rewrite", reason):
            result = legacy_rewrite(
                edge_query(), TRANS, on_budget=OnBudget.RETURN
            )
        assert result.stopped_reason is reason
        assert not result.saturated

    def test_partial_run_is_a_prefix_of_the_full_run(self):
        with inject_fault("rewrite", "memory", at_checkpoint=4):
            partial = rewrite(edge_query(), TRANS, on_budget=OnBudget.RETURN)
        fuller = rewrite(
            edge_query(), TRANS, max_queries=60, on_budget=OnBudget.RETURN
        )
        assert partial.generated <= fuller.generated
        assert partial.stats.wall_ms >= 0


# ----------------------------------------------------------------------
# fc-search
# ----------------------------------------------------------------------

class TestSearch:
    def test_fixpoint(self):
        result = search_finite_model(
            DB, LINEAR, forbidden=Q_LOOP, config=SearchConfig(max_elements=3)
        )
        assert result.found
        assert result.stopped_reason is StopReason.FIXPOINT

    def test_budget(self):
        result = search_finite_model(
            DB,
            LINEAR,
            forbidden=Q_LOOP,
            config=SearchConfig(max_elements=3, max_nodes=1),
        )
        assert not result.found
        assert result.stopped_reason is StopReason.BUDGET

    @guard_reasons
    def test_guard_return_policy(self, reason):
        with inject_fault("fc-search", reason) as injector:
            result = search_finite_model(
                DB, LINEAR, forbidden=Q_LOOP, config=SearchConfig(max_elements=3)
            )
        assert injector.tripped
        assert result.model is None
        assert result.stopped_reason is reason
        assert result.stats is not None
        assert not result.stats.exhausted

    @guard_reasons
    def test_guard_raise_policy(self, reason):
        with inject_fault("fc-search", reason):
            with pytest.raises(REASON_EXC[reason]) as excinfo:
                search_finite_model(
                    DB,
                    LINEAR,
                    forbidden=Q_LOOP,
                    config=SearchConfig(max_elements=3, on_budget=OnBudget.RAISE),
                )
        assert excinfo.value.stats is not None
        assert excinfo.value.stopped_reason == reason.value

    @guard_reasons
    def test_legacy_engine_obeys_the_same_guard(self, reason):
        with inject_fault("fc-search", reason):
            result = legacy_search(DB, LINEAR, forbidden=Q_LOOP, max_elements=3)
        assert result.model is None
        assert result.stopped_reason is reason

    def test_rerun_without_the_fault_finds_the_model(self):
        with inject_fault("fc-search", "deadline"):
            partial = search_finite_model(
                DB, LINEAR, forbidden=Q_LOOP, config=SearchConfig(max_elements=3)
            )
        assert partial.model is None
        clean = search_finite_model(
            DB, LINEAR, forbidden=Q_LOOP, config=SearchConfig(max_elements=3)
        )
        assert clean.found
        assert clean.stopped_reason is StopReason.FIXPOINT


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------

class TestPipeline:
    def test_fixpoint(self):
        result = build_finite_counter_model(LINEAR, DB, Q_LOOP)
        assert result.model is not None
        assert result.stopped_reason is StopReason.FIXPOINT

    def test_budget(self):
        # An impossible schedule: every (depth, η) attempt fails.
        config = PipelineConfig(chase_depths=(2,), on_budget=OnBudget.RETURN)
        result = build_finite_counter_model(LINEAR, DB, Q_LOOP, config)
        assert result.model is None
        assert result.stopped_reason is StopReason.BUDGET
        assert result.attempts

    @guard_reasons
    def test_guard_return_policy(self, reason):
        with inject_fault("pipeline", reason) as injector:
            result = build_finite_counter_model(
                LINEAR, DB, Q_LOOP, PipelineConfig(on_budget=OnBudget.RETURN)
            )
        assert injector.tripped
        assert result.model is None
        assert result.stopped_reason is reason

    @guard_reasons
    def test_guard_raise_policy(self, reason):
        # PipelineConfig defaults to OnBudget.RAISE.
        with inject_fault("pipeline", reason):
            with pytest.raises(REASON_EXC[reason]) as excinfo:
                build_finite_counter_model(LINEAR, DB, Q_LOOP)
        # .stats is the partial FiniteModelResult itself.
        assert excinfo.value.stats is not None
        assert excinfo.value.stats.stopped_reason is reason
        assert excinfo.value.stopped_reason == reason.value

    def test_fault_does_not_leak_into_inner_chases(self):
        # A pipeline fault at a late checkpoint: the inner chases (guard
        # name "chase") must run unmolested up to that point, so the
        # partial result records at least one completed chase.
        with inject_fault("pipeline", "cancelled", at_checkpoint=2):
            result = build_finite_counter_model(
                LINEAR, DB, Q_LOOP, PipelineConfig(on_budget=OnBudget.RETURN)
            )
        assert result.stopped_reason is StopReason.CANCELLED
        assert result.chase_stats  # the depth-8 truncation chase ran

    def test_rerun_without_the_fault_builds_the_model(self):
        with inject_fault("pipeline", "deadline"):
            partial = build_finite_counter_model(
                LINEAR, DB, Q_LOOP, PipelineConfig(on_budget=OnBudget.RETURN)
            )
        assert partial.model is None
        clean = build_finite_counter_model(LINEAR, DB, Q_LOOP)
        assert clean.model is not None
        assert clean.stopped_reason is StopReason.FIXPOINT
