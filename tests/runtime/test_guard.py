"""Unit tests for the runtime-guard primitives.

Deadline arithmetic, token latching, guard trip order and stickiness,
the NULL_GUARD fast path, from_config dispatch, and the ambient
cancellation scope — everything below the engines.
"""

import threading
import time

import pytest

from repro.chase import ChaseConfig
from repro.config import BudgetedConfig
from repro.errors import (
    BudgetError,
    Cancelled,
    DeadlineExceeded,
    MemoryBudgetExceeded,
    ReproError,
)
from repro.runtime import (
    GUARD_REASONS,
    NULL_GUARD,
    RSS_POLL_INTERVAL,
    CancelToken,
    Deadline,
    GuardTripped,
    RuntimeGuard,
    StopReason,
    ambient_cancel_token,
    cancellation_scope,
    current_rss_mb,
    guard_exception,
)


class TestStopReason:
    def test_values_are_the_uniform_vocabulary(self):
        assert [r.value for r in StopReason] == [
            "fixpoint", "budget", "deadline", "cancelled", "memory",
        ]

    def test_str_subclass_compares_and_serialises_as_value(self):
        import json
        assert StopReason.DEADLINE == "deadline"
        assert json.dumps({"r": StopReason.MEMORY}) == '{"r": "memory"}'

    def test_guard_reasons_exclude_engine_decided_ones(self):
        assert StopReason.FIXPOINT not in GUARD_REASONS
        assert StopReason.BUDGET not in GUARD_REASONS
        assert len(GUARD_REASONS) == 3


class TestDeadline:
    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0)
        assert deadline.expired()
        assert deadline.remaining_ms() == 0.0

    def test_generous_budget_does_not_expire(self):
        deadline = Deadline(60_000)
        assert not deadline.expired()
        assert 0 < deadline.remaining_ms() <= 60_000

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="wall_ms"):
            Deadline(-1)

    def test_short_budget_expires_after_the_wall(self):
        deadline = Deadline(10)
        time.sleep(0.02)
        assert deadline.expired()


class TestCancelToken:
    def test_fresh_token_is_live(self):
        assert not CancelToken().cancelled

    def test_cancel_is_sticky_and_idempotent(self):
        token = CancelToken()
        token.cancel()
        token.cancel()
        assert token.cancelled

    def test_wait_returns_promptly_once_cancelled(self):
        token = CancelToken()
        threading.Timer(0.01, token.cancel).start()
        assert token.wait(timeout=5.0)

    def test_cancellable_from_another_thread(self):
        token = CancelToken()
        worker = threading.Thread(target=token.cancel)
        worker.start()
        worker.join()
        assert token.cancelled


class TestCurrentRss:
    def test_reports_a_sane_positive_value_on_posix(self):
        rss = current_rss_mb()
        if rss is None:
            pytest.skip("resource module unavailable")
        # A CPython test process sits well within these bounds.
        assert 1.0 < rss < 1_000_000.0


class TestRuntimeGuard:
    def test_inactive_without_any_limit(self):
        guard = RuntimeGuard("t")
        assert guard.check() is None
        guard.checkpoint()  # no raise

    def test_cancellation_checked_before_deadline(self):
        token = CancelToken()
        token.cancel()
        guard = RuntimeGuard("t", deadline=Deadline(0), token=token)
        assert guard.check() is StopReason.CANCELLED

    def test_deadline_trips(self):
        guard = RuntimeGuard("t", deadline=Deadline(0))
        assert guard.check() is StopReason.DEADLINE

    def test_trip_is_sticky(self):
        token = CancelToken()
        guard = RuntimeGuard("t", token=token)
        assert guard.check() is None
        token.cancel()
        assert guard.check() is StopReason.CANCELLED
        # A guard never un-trips, even if the token could be reset.
        assert guard.check() is StopReason.CANCELLED

    def test_checkpoint_raises_guard_tripped(self):
        guard = RuntimeGuard("t", deadline=Deadline(0))
        with pytest.raises(GuardTripped) as excinfo:
            guard.checkpoint()
        assert excinfo.value.reason is StopReason.DEADLINE
        assert not isinstance(excinfo.value, ReproError)

    def test_memory_ceiling_is_polled_not_checked_every_call(self):
        guard = RuntimeGuard("t", max_rss_mb=0.001)  # certainly exceeded
        assert guard.check() is StopReason.MEMORY  # checkpoint 1 polls
        fresh = RuntimeGuard("t", max_rss_mb=0.001, token=CancelToken())
        fresh.checkpoints = 1  # next check is checkpoint 2: no poll
        assert fresh.check() is None

    def test_memory_poll_returns_on_schedule(self):
        guard = RuntimeGuard("t", max_rss_mb=0.001)
        guard.checkpoints = 1  # skip the initial poll
        polled = [guard.check() for _ in range(RSS_POLL_INTERVAL)]
        assert polled[:-1] == [None] * (RSS_POLL_INTERVAL - 1)
        assert polled[-1] is StopReason.MEMORY

    def test_remaining_ms(self):
        assert RuntimeGuard("t").remaining_ms() is None
        assert RuntimeGuard("t", deadline=Deadline(60_000)).remaining_ms() > 0

    def test_describe_names_the_engine(self):
        guard = RuntimeGuard("chase", deadline=Deadline(5))
        assert "chase" in guard.describe(StopReason.DEADLINE)
        assert "5" in guard.describe(StopReason.DEADLINE)

    def test_exception_mapping(self):
        guard = RuntimeGuard("t")
        assert isinstance(guard.exception(StopReason.DEADLINE), DeadlineExceeded)
        assert isinstance(guard.exception(StopReason.CANCELLED), Cancelled)
        assert isinstance(guard.exception(StopReason.MEMORY), MemoryBudgetExceeded)

    def test_exception_carries_stats(self):
        error = guard_exception(StopReason.DEADLINE, "late", stats={"x": 1})
        assert isinstance(error, BudgetError)
        assert error.stats == {"x": 1}
        assert error.stopped_reason == "deadline"


class TestNullGuard:
    def test_singleton_never_trips(self):
        assert NULL_GUARD.check() is None
        NULL_GUARD.checkpoint()
        assert NULL_GUARD.remaining_ms() is None
        assert not NULL_GUARD.active

    def test_null_guard_state_is_shared_and_harmless(self):
        before = NULL_GUARD.checkpoints
        NULL_GUARD.check()
        assert NULL_GUARD.checkpoints == before  # check() is a constant no-op


class TestFromConfig:
    def test_unbudgeted_config_yields_null_guard(self):
        assert RuntimeGuard.from_config(ChaseConfig(), "chase") is NULL_GUARD

    def test_none_config_yields_null_guard(self):
        # legacy_search passes config=None through.
        assert RuntimeGuard.from_config(None, "fc-search") is NULL_GUARD

    def test_wall_budget_yields_active_guard(self):
        guard = RuntimeGuard.from_config(ChaseConfig(wall_ms=50), "chase")
        assert guard.active
        assert guard.engine == "chase"
        assert guard.deadline is not None

    def test_guards_disabled_wins(self):
        config = ChaseConfig(wall_ms=0, guards_disabled=True)
        assert RuntimeGuard.from_config(config, "chase") is NULL_GUARD

    def test_explicit_token_is_used(self):
        token = CancelToken()
        guard = RuntimeGuard.from_config(ChaseConfig(cancel_token=token), "chase")
        assert guard.token is token


class TestConfigValidation:
    def test_negative_wall_ms_rejected(self):
        with pytest.raises(ValueError, match="wall_ms"):
            ChaseConfig(wall_ms=-1)

    def test_zero_max_rss_rejected(self):
        with pytest.raises(ValueError, match="max_rss_mb"):
            ChaseConfig(max_rss_mb=0)

    def test_guard_fields_shared_by_the_base(self):
        config = BudgetedConfig(wall_ms=10, max_rss_mb=256)
        assert config.wall_ms == 10
        assert config.max_rss_mb == 256
        assert config.cancel_token is None
        assert config.guards_disabled is False

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError, match="wall_ms"):
            ChaseConfig().with_overrides(wall_ms=-5)


class TestCancellationScope:
    def test_scope_installs_and_clears_the_ambient_token(self):
        assert ambient_cancel_token() is None
        with cancellation_scope(install_signals=False) as token:
            assert ambient_cancel_token() is token
        assert ambient_cancel_token() is None

    def test_guards_pick_up_the_ambient_token(self):
        with cancellation_scope(install_signals=False) as token:
            guard = RuntimeGuard.from_config(ChaseConfig(), "chase")
            assert guard.active
            token.cancel()
            assert guard.check() is StopReason.CANCELLED

    def test_scopes_nest_and_restore(self):
        with cancellation_scope(install_signals=False) as outer:
            with cancellation_scope(install_signals=False) as inner:
                assert ambient_cancel_token() is inner
            assert ambient_cancel_token() is outer

    def test_explicit_config_token_beats_the_ambient_one(self):
        mine = CancelToken()
        with cancellation_scope(install_signals=False):
            guard = RuntimeGuard.from_config(
                ChaseConfig(cancel_token=mine), "chase"
            )
            assert guard.token is mine
