"""The CLI end of the guard layer: --wall-ms/--max-rss-mb plumbing,
exit codes, the uniform stopped_reason key, and the SIGINT path
(a real subprocess receiving a real signal)."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import (
    EXIT_INCOMPLETE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    main,
)

LINEAR = "E(x,y) -> exists z. E(y,z)"
DB = "E(a,b)"


def run_json(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 1, f"--json must emit exactly one line, got: {out!r}"
    return code, json.loads(lines[0])


class TestWallClockFlag:
    def test_chase_deadline(self, capsys):
        code, payload = run_json(
            capsys, "-e", "chase", LINEAR, DB, "--wall-ms", "0", "--json"
        )
        assert code == EXIT_INCOMPLETE
        assert payload["stopped_reason"] == "deadline"
        assert payload["exit_code"] == EXIT_INCOMPLETE
        assert payload["status"] == "truncated"
        assert "stats" in payload

    def test_flag_position_is_free(self, capsys):
        # Global flags parse both before and after the command name.
        code, payload = run_json(
            capsys, "--wall-ms", "0", "--json", "-e", "chase", LINEAR, DB
        )
        assert code == EXIT_INCOMPLETE
        assert payload["stopped_reason"] == "deadline"

    def test_rewrite_deadline(self, capsys):
        code, payload = run_json(
            capsys, "-e", "rewrite", LINEAR, "E(u,v)", "--wall-ms", "0", "--json"
        )
        assert code == EXIT_INCOMPLETE
        assert payload["stopped_reason"] == "deadline"

    def test_fc_search_deadline(self, capsys):
        code, payload = run_json(
            capsys,
            "-e", "fc-search", LINEAR, DB, "E(x,x)",
            "--wall-ms", "0", "--json",
        )
        assert code == EXIT_INCOMPLETE
        assert payload["stopped_reason"] == "deadline"

    def test_generous_budget_reaches_the_fixpoint(self, capsys):
        code, payload = run_json(
            capsys,
            "-e", "chase", "E(x,y) -> E(y,x)", DB,
            "--wall-ms", "60000", "--json",
        )
        assert code == EXIT_OK
        assert payload["stopped_reason"] == "fixpoint"
        assert payload["status"] == "saturated"

    def test_memory_flag_far_above_usage_is_inert(self, capsys):
        code, payload = run_json(
            capsys,
            "-e", "chase", "E(x,y) -> E(y,x)", DB,
            "--max-rss-mb", "1000000", "--json",
        )
        assert code == EXIT_OK
        assert payload["stopped_reason"] == "fixpoint"


class TestSigint:
    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_interrupted_run_emits_well_formed_json(self, tmp_path):
        # An fc-search with no finite counter-model (LINEAR plus
        # transitivity forces E(x,x) in any finite model) and huge
        # budgets, interrupted for real: the payload must still be one
        # well-formed JSON object with stopped_reason "cancelled" and
        # exit code 130.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        theory = LINEAR + "\nE(x,y), E(y,z) -> E(x,z)"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "-e", "fc-search", theory, DB, "E(x,x)",
                "--max-elements", "10",
                "--max-nodes", "100000000",
                "--json",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        time.sleep(1.5)  # let it get deep into the search
        process.send_signal(signal.SIGINT)
        try:
            out, err = process.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            pytest.fail("interrupted run did not unwind cooperatively")
        assert process.returncode == EXIT_INTERRUPTED, (out, err)
        payload = json.loads(out)
        assert payload["stopped_reason"] == "cancelled"
        assert payload["exit_code"] == EXIT_INTERRUPTED
