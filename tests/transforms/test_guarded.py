"""Tests for the Section 5.6 guarded → binary translation."""

import pytest

from repro.chase import certain_boolean, chase
from repro.lf import parse_query, parse_structure, parse_theory, satisfies
from repro.transforms import guarded_to_binary

GUARDED = parse_theory(
    """
    P(x,y,z) -> exists w. R(y,z,w)
    R(x,y,z) -> exists w. P(z,y,w)
    P(x,y,z), S(y) -> G(z)
    """
)
DB = parse_structure("P(a,b,c)\nS(b)")


class TestTranslationShape:
    def test_output_is_binary(self):
        translation = guarded_to_binary(GUARDED)
        assert translation.theory.signature.is_binary

    def test_tgps_detected(self):
        translation = guarded_to_binary(GUARDED)
        assert translation.tgps == {"R", "P"}

    def test_not_guarded_rejected(self):
        unguarded = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        # transitivity *is* guarded? No: no body atom contains x, y, z.
        with pytest.raises(ValueError):
            guarded_to_binary(unguarded)

    def test_multihead_rejected(self):
        theory = parse_theory("E(x,y) -> U(x), U(y)")
        with pytest.raises(ValueError):
            guarded_to_binary(theory)

    def test_witness_must_be_last(self):
        theory = parse_theory("U(y) -> exists z. R(z,y)")
        with pytest.raises(ValueError):
            guarded_to_binary(theory)


class TestDatabaseTranslation:
    def test_tgp_fact_guarded_by_own_element(self):
        translation = guarded_to_binary(GUARDED)
        translated = translation.translate_database(parse_structure("R(a,b,c)"))
        # R is a TGP: c is the young element, a and b its parents
        assert translated.facts_with_pred("Rm_R")
        assert len(translated.facts_with_pred("F_1")) == 1
        assert len(translated.facts_with_pred("F_2")) == 1

    def test_non_tgp_fact_gets_fresh_guard(self):
        translation = guarded_to_binary(GUARDED)
        translated = translation.translate_database(parse_structure("S(b)"))
        monadic = [f for f in translated.facts() if f.pred.startswith("Qm_S")]
        assert len(monadic) == 1

    def test_original_elements_kept(self):
        translation = guarded_to_binary(GUARDED)
        translated = translation.translate_database(DB)
        assert DB.domain() <= translated.domain()


class TestSemantics:
    def test_positive_atomic_query(self):
        """G(c) is certain originally; its translation is certain in T'."""
        assert certain_boolean(DB, GUARDED, parse_query("G('c')"), max_depth=4) is True
        translation = guarded_to_binary(GUARDED)
        translated_db = translation.translate_database(DB)
        translated_query = translation.translate_query(parse_query("G('c')"))
        verdict = certain_boolean(
            translated_db, translation.theory, translated_query, max_depth=6
        )
        assert verdict is True

    def test_negative_atomic_query(self):
        assert certain_boolean(DB, GUARDED, parse_query("G('a')"), max_depth=4) is not True
        translation = guarded_to_binary(GUARDED)
        translated_db = translation.translate_database(DB)
        translated_query = translation.translate_query(parse_query("G('a')"))
        verdict = certain_boolean(
            translated_db, translation.theory, translated_query, max_depth=6
        )
        assert verdict is not True

    def test_tgp_query(self):
        """R(b,c,w) for some w is certain; the binary form agrees."""
        assert (
            certain_boolean(DB, GUARDED, parse_query("R('b','c',w)"), max_depth=4)
            is True
        )
        translation = guarded_to_binary(GUARDED)
        translated_db = translation.translate_database(DB)
        translated_query = translation.translate_query(parse_query("R('b','c',w)"))
        verdict = certain_boolean(
            translated_db, translation.theory, translated_query, max_depth=6
        )
        assert verdict is True

    def test_chase_growth_parallels_original(self):
        """Both chases keep creating elements (the P/R ping-pong)."""
        original = chase(DB, GUARDED, max_depth=4)
        translation = guarded_to_binary(GUARDED)
        translated = chase(
            translation.translate_database(DB), translation.theory, max_depth=8
        )
        assert len(original.new_elements) >= 3
        assert len(translated.new_elements) >= 3


class TestConstantsRejected:
    def test_constant_in_non_tgp_atom_rejected(self):
        theory = parse_theory(
            """
            P(x,y,z) -> exists w. R(y,z,w)
            P(x,y,'fixed') -> G(x)
            """
        )
        with pytest.raises(ValueError):
            guarded_to_binary(theory)
