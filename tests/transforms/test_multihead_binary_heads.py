"""Tests for Sections 5.1 and 5.3 transformations."""

import pytest

from repro.chase import certain_boolean, chase
from repro.lf import (
    Constant,
    Rule,
    Variable,
    atom,
    parse_query,
    parse_structure,
    parse_theory,
)
from repro.lf.rules import Theory
from repro.transforms import (
    atoms_to_binary_encoding,
    decode_structure_binary,
    encode_structure_binary,
    is_frontier_one,
    multihead_to_singlehead,
    split_frontier_one_heads,
)

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestMultiheadToSinglehead:
    def test_single_head_untouched(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        assert multihead_to_singlehead(theory) == theory

    def test_datalog_multihead_split(self):
        theory = parse_theory("E(x,y) -> U(x), U(y)")
        converted = multihead_to_singlehead(theory)
        assert converted.is_single_head
        assert len(converted) == 2

    def test_existential_multihead_join(self):
        theory = Theory(
            [Rule((atom("U", x),), (atom("R", x, z), atom("S", z, x)))]
        )
        converted = multihead_to_singlehead(theory)
        assert converted.is_single_head
        # one join TGD plus two splitters
        assert len(converted) == 3
        assert len(converted.tgds()) == 1

    def test_shared_witness_preserved(self):
        """The witness of R and S must be the same element."""
        theory = Theory(
            [Rule((atom("U", x),), (atom("R", x, z), atom("S", z, x)))]
        )
        converted = multihead_to_singlehead(theory)
        database = parse_structure("U(a)")
        result = chase(database, converted, max_depth=5)
        r_facts = result.structure.facts_with_pred("R")
        s_facts = result.structure.facts_with_pred("S")
        assert len(r_facts) == 1 and len(s_facts) == 1
        assert next(iter(r_facts)).args[1] == next(iter(s_facts)).args[0]

    def test_certain_answers_preserved(self):
        theory = Theory(
            [Rule((atom("U", x),), (atom("R", x, z), atom("S", z, x)))]
        )
        converted = multihead_to_singlehead(theory)
        database = parse_structure("U(a)")
        query = parse_query("R('a', v), S(v, 'a')")
        assert certain_boolean(database, theory, query, max_depth=4) is True
        assert certain_boolean(database, converted, query, max_depth=4) is True


class TestBinaryEncoding:
    TERNARY = parse_theory("P(x,y,z) -> exists w. P(y,z,w)")

    def test_rules_become_binary(self):
        encoded = atoms_to_binary_encoding(self.TERNARY)
        assert encoded.signature.is_binary
        assert encoded.signature.max_arity == 2

    def test_head_is_multihead(self):
        encoded = atoms_to_binary_encoding(self.TERNARY)
        assert len(encoded.rules[0].head) == 3  # one A^i per position

    def test_structure_roundtrip(self):
        database = parse_structure("P(a,b,c)\nQ(a)")
        encoded = encode_structure_binary(database)
        decoded = decode_structure_binary(encoded, database.signature)
        assert decoded.same_facts(database)

    def test_encoded_chase_simulates_original(self):
        database = parse_structure("P(a,b,c)")
        encoded_db = encode_structure_binary(database)
        encoded_theory = atoms_to_binary_encoding(self.TERNARY)
        result = chase(encoded_db, encoded_theory, max_depth=2)
        decoded = decode_structure_binary(result.structure, database.signature)
        # The original chase at depth 2 creates P(b,c,w1), P(c,w1,w2)
        original = chase(database, self.TERNARY, max_depth=2)
        assert len(decoded.facts_with_pred("P")) == len(
            original.structure.facts_with_pred("P")
        )


class TestFrontierOneSplit:
    def test_recognizer(self):
        good = parse_theory("E(x,y), E(u,y) -> exists z. R(y,z)").rules[0]
        bad = parse_theory("E(x,y) -> exists z. R(x,y,z)").rules[0]
        assert is_frontier_one(good)
        assert not is_frontier_one(bad)

    def test_spade5_rules_untouched(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        assert split_frontier_one_heads(theory) == theory

    def test_multi_witness_head_split(self):
        theory = Theory(
            [Rule((atom("U", y),), (atom("T", y, z, w),))]
        )
        converted = split_frontier_one_heads(theory)
        # two binary-head TGDs plus a join rule
        assert len(converted) == 3
        tgds = converted.tgds()
        assert all(r.head_atom.arity == 2 for r in tgds)

    def test_split_certain_answers(self):
        theory = Theory(
            [Rule((atom("U", y),), (atom("T", y, z, w),))]
        )
        converted = split_frontier_one_heads(theory)
        database = parse_structure("U(a)")
        query = parse_query("T('a', v, u)")
        assert certain_boolean(database, theory, query, max_depth=4) is True
        assert certain_boolean(database, converted, query, max_depth=4) is True

    def test_wide_frontier_rejected(self):
        theory = parse_theory("E(x,y) -> exists z. R(x,y,z)")
        with pytest.raises(ValueError):
            split_frontier_one_heads(theory)
