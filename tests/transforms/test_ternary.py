"""Tests for the Section 5.2 general → ternary reduction."""

import pytest

from repro.chase import certain_boolean, chase
from repro.lf import Constant, Variable, atom, parse_query, parse_structure, parse_theory
from repro.transforms import flatten_atom, ternary_reduction

x, y, z, t = Variable("x"), Variable("y"), Variable("z"), Variable("t")


class TestFlattenAtom:
    def test_small_atoms_untouched(self):
        small = atom("P", x, y, z)
        assert flatten_atom(small, {}) == [small]

    def test_arity4_chain_shape(self):
        chain = flatten_atom(atom("R", x, y, z, t), {})
        assert [a.pred for a in chain] == ["R__1", "R__2", "R__last"]
        assert chain[0].args[:2] == (x, y)
        assert chain[1].args[1] == z
        assert chain[2].args[1] == t
        # list nodes are threaded
        assert chain[0].args[2] == chain[1].args[0]
        assert chain[1].args[2] == chain[2].args[0]

    def test_arity5_chain_shape(self):
        v = Variable("v")
        chain = flatten_atom(atom("R", x, y, z, t, v), {})
        assert [a.pred for a in chain] == ["R__1", "R__2", "R__3", "R__last"]
        assert chain[-1].args[1] == v

    def test_fresh_counter_shared(self):
        fresh = {}
        first = flatten_atom(atom("R", x, y, z, t), fresh)
        second = flatten_atom(atom("R", x, y, z, t), fresh)
        first_nodes = {a.args[2] for a in first[:-1]}
        second_nodes = {a.args[2] for a in second[:-1]}
        assert not first_nodes & second_nodes


class TestTernaryReduction:
    QUATERNARY = parse_theory("P(x,y,z,x) -> exists t. R(x,y,z,t)")

    def test_output_is_ternary(self):
        reduction = ternary_reduction(self.QUATERNARY)
        assert reduction.theory.signature.max_arity <= 3

    def test_paper_cascade_count(self):
        """The worked example produces exactly three rules."""
        reduction = ternary_reduction(self.QUATERNARY)
        assert len(reduction.theory) == 3

    def test_small_theory_untouched(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        assert ternary_reduction(theory).theory == theory

    def test_database_translation(self):
        reduction = ternary_reduction(self.QUATERNARY)
        database = parse_structure("P(a,b,c,a)")
        translated = reduction.translate_database(database)
        assert translated.signature.max_arity <= 3
        assert len(translated.facts_with_pred("P__1")) == 1
        assert len(translated.facts_with_pred("P__last")) == 1
        # list nodes materialised as fresh constants
        assert translated.domain_size > database.domain_size

    def test_query_translation(self):
        reduction = ternary_reduction(self.QUATERNARY)
        query = parse_query("R(x,y,z,t)")
        translated = reduction.translate_query(query)
        assert all(a.arity <= 3 for a in translated.atoms)

    def test_certain_answers_preserved(self):
        """Chase(D', T') ⊨ Q' iff Chase(D, T) ⊨ Q on the worked example."""
        reduction = ternary_reduction(self.QUATERNARY)
        database = parse_structure("P(a,b,c,a)")
        translated_db = reduction.translate_database(database)

        positive = parse_query("R('a', 'b', 'c', t)")
        negative = parse_query("R('b', 'a', 'c', t)")
        assert certain_boolean(database, self.QUATERNARY, positive, max_depth=4) is True
        assert (
            certain_boolean(
                translated_db,
                reduction.theory,
                reduction.translate_query(positive),
                max_depth=6,
            )
            is True
        )
        assert certain_boolean(database, self.QUATERNARY, negative, max_depth=4) is not True
        assert (
            certain_boolean(
                translated_db,
                reduction.theory,
                reduction.translate_query(negative),
                max_depth=6,
            )
            is not True
        )

    def test_multihead_rejected(self):
        theory = parse_theory("E(x,y) -> U(x), U(y)")
        with pytest.raises(ValueError):
            ternary_reduction(theory)

    def test_big_body_viewed(self):
        theory = parse_theory("R(x,y,z,t) -> E(x,t)")
        reduction = ternary_reduction(theory)
        rule = reduction.theory.rules[0]
        assert all(a.arity <= 3 for a in rule.body)
        assert rule.is_datalog
