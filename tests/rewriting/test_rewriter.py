"""Tests for the UCQ rewriting engine and the BDD facade.

The key cross-check throughout: the rewriting answer over D must agree
with the chase answer (Definition 2 of the paper).
"""

import pytest

from repro.errors import RewritingBudgetExceeded, RuleError
from repro.chase import certain_boolean
from repro.lf import Rule, Variable, atom, parse_query, parse_structure, parse_theory
from repro.lf.rules import Theory
from repro.config import OnBudget
from repro.rewriting import (
    RewriteConfig,
    answer_by_rewriting,
    answers_by_rewriting,
    bdd_profile,
    cq_subsumes,
    is_bdd_for,
    kappa,
    rewrite,
)

LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")
EXAMPLE7 = parse_theory(
    """
    E(x,y) -> exists z. E(y,z)
    E(x,y), E(u,y) -> R(x,u)
    """
)
TRANSITIVE = parse_theory("E(x,y), E(y,z) -> E(x,z)")


class TestRewriteBasics:
    def test_no_rules_identity(self):
        result = rewrite(parse_query("E(x,y)"), Theory([]))
        assert result.saturated
        assert len(result.ucq) == 1

    def test_datalog_resolution(self):
        theory = parse_theory("R(x,y) -> S(x,y)")
        result = rewrite(parse_query("S(x,y)", free=["x", "y"]), theory)
        assert result.saturated
        assert len(result.ucq) == 2  # S itself, plus R

    def test_linear_path_collapses_to_edge(self):
        result = rewrite(parse_query("E(x,y), E(y,z)"), LINEAR)
        assert result.saturated
        assert len(result.ucq) == 1
        only = result.ucq.disjuncts[0]
        assert len([a for a in only.atoms if not a.is_equality]) == 1

    def test_blocked_by_free_variable(self):
        # z1 of the head would have to unify with the free variable y.
        result = rewrite(parse_query("E(x,y)", free=["y"]), LINEAR)
        assert result.saturated
        assert len(result.ucq) == 1

    def test_blocked_by_shared_variable_without_factorization(self):
        config = RewriteConfig(factorize=False)
        result = rewrite(parse_query("E(x,y), E(u,y)", free=["x", "u"]), EXAMPLE7, config)
        # without factorisation the existential step is blocked: only
        # the original query remains
        assert result.saturated
        assert len(result.ucq) == 1

    def test_factorization_unblocks(self):
        result = rewrite(parse_query("E(x,y), E(u,y)", free=["x", "u"]), EXAMPLE7)
        assert result.saturated
        assert len(result.ucq) > 1

    def test_example7_r_query(self):
        result = rewrite(parse_query("R(x,u)", free=["x", "u"]), EXAMPLE7)
        assert result.saturated
        assert len(result.ucq) == 3
        assert result.max_width == 3

    def test_multi_head_rejected(self):
        x, y = Variable("x"), Variable("y")
        theory = Theory([Rule((atom("E", x, y),), (atom("U", x), atom("U", y)))])
        with pytest.raises(RuleError):
            rewrite(parse_query("U(x)"), theory)

    def test_unsatisfiable_query(self):
        q = parse_query("E(x,y), 'a' = 'b'")
        result = rewrite(q, LINEAR)
        assert result.saturated
        assert len(result.ucq) == 0


class TestBudgets:
    def test_transitive_raises_by_default(self):
        with pytest.raises(RewritingBudgetExceeded):
            rewrite(
                parse_query("E(x,y)", free=["x", "y"]),
                TRANSITIVE,
                RewriteConfig(max_steps=200, max_queries=30),
            )

    def test_transitive_quiet_return(self):
        result = rewrite(
            parse_query("E(x,y)", free=["x", "y"]),
            TRANSITIVE,
            RewriteConfig(max_steps=200, max_queries=30, on_budget=OnBudget.RETURN),
        )
        assert not result.saturated

    def test_is_bdd_for_unknown(self):
        verdict = is_bdd_for(
            TRANSITIVE,
            parse_query("E(x,y)", free=["x", "y"]),
            RewriteConfig(max_steps=200, max_queries=30),
        )
        assert verdict is None

    def test_is_bdd_for_positive(self):
        assert is_bdd_for(LINEAR, parse_query("E(x,y), E(y,z)")) is True

    def test_bad_on_budget(self):
        with pytest.raises(ValueError):
            RewriteConfig(on_budget="nope")


class TestKappa:
    def test_example7_kappa(self):
        profile = bdd_profile(EXAMPLE7)
        assert profile.saturated
        assert profile.kappa == 3

    def test_linear_kappa(self):
        assert kappa(LINEAR) == 2

    def test_profile_rewriting_of(self):
        profile = bdd_profile(EXAMPLE7)
        datalog_rule = EXAMPLE7.rules[1]
        assert profile.rewriting_of(datalog_rule).saturated
        with pytest.raises(KeyError):
            profile.rewriting_of(parse_theory("Q(x,y) -> Q(y,x)").rules[0])


class TestSoundnessAgainstChase:
    """Definition 2: D ⊨ Φ′ iff Chase(D,T) ⊨ Φ."""

    @pytest.mark.parametrize(
        "query_text",
        [
            "E(x,y)",
            "E(x,y), E(y,z)",
            "E(x,y), E(y,z), E(z,w)",
            "E('b', y)",
            "E(x, 'b')",
        ],
    )
    def test_linear_agreement(self, query_text):
        database = parse_structure("E(a,b)")
        query = parse_query(query_text)
        from_rewriting = answer_by_rewriting(database, LINEAR, query)
        from_chase = certain_boolean(database, LINEAR, query, max_depth=8)
        if from_chase is not None:
            assert from_rewriting == from_chase

    @pytest.mark.parametrize(
        "db_text,expected",
        [
            ("E(a,b)", True),           # chain grows, R(b,b) provable
            ("U(a)", False),            # no E at all
        ],
    )
    def test_example7_r_exists(self, db_text, expected):
        database = parse_structure(db_text)
        query = parse_query("R(x,u)")
        assert answer_by_rewriting(database, EXAMPLE7, query) is expected

    def test_example7_answers(self):
        database = parse_structure("E(a,b)")
        answers = answers_by_rewriting(
            database, EXAMPLE7, parse_query("R(x,u)", free=["x", "u"])
        )
        # Only the constant pair (a,a): E(a,b) and E(a,b) share target b.
        from repro.lf import Constant
        a, b = Constant("a"), Constant("b")
        # (a,a): E(a,b) shares target b with itself; (b,b): in the chase
        # b gets a successor shared by both body atoms.
        assert answers == {(a, a), (b, b)}

    def test_rewriting_sound_on_empty_database(self):
        database = parse_structure("U(c)")
        assert not answer_by_rewriting(database, LINEAR, parse_query("E(x,y)"))

    def test_budget_raises_in_answering(self):
        with pytest.raises(RewritingBudgetExceeded):
            answers_by_rewriting(
                parse_structure("E(a,b)"),
                TRANSITIVE,
                parse_query("E(x,y)", free=["x", "y"]),
                RewriteConfig(max_steps=100, max_queries=20, on_budget=OnBudget.RETURN),
            )


class TestRewritingSemantics:
    def test_every_disjunct_contained_in_certain_semantics(self):
        """Each disjunct q of Φ′ is sound: q(D) implies Chase(D) ⊨ Φ.

        We check it on the canonical database of each disjunct.
        """
        from repro.rewriting.subsume import freeze, normalize_equalities

        query = parse_query("R(x,u)")
        result = rewrite(query.boolean(), EXAMPLE7)
        for disjunct in result.ucq:
            normal = normalize_equalities(disjunct.boolean())
            canonical, _ = freeze(normal)
            verdict = certain_boolean(canonical, EXAMPLE7, query, max_depth=8)
            assert verdict is True


class TestEmptyRewritingResult:
    """The empty rewriting (``false``) and hand-built results must not
    crash the result surface — κ aggregation and ``__str__`` touch
    ``max_width`` on every run."""

    UNSAT = None  # built lazily: an E-atom plus a ground contradiction

    @classmethod
    def unsat_query(cls):
        from repro.lf import ConjunctiveQuery, Constant

        return ConjunctiveQuery(
            [atom("E", Variable("x"), Variable("y")),
             atom("=", Constant("a"), Constant("b"))],
            (),
        )

    def test_unsatisfiable_query_rewrites_to_empty(self):
        from repro.rewriting import legacy_rewrite

        for engine in (rewrite, legacy_rewrite):
            result = engine(self.unsat_query(), Theory([]))
            assert result.saturated
            assert len(result.ucq) == 0
            assert result.max_width == 0
            assert "0 disjuncts" in str(result)

    def test_hand_built_empty_union(self):
        from repro.lf import UnionOfConjunctiveQueries
        from repro.rewriting import RewritingResult

        result = RewritingResult(
            UnionOfConjunctiveQueries([]), saturated=True, steps=0, generated=0)
        assert result.max_width == 0
        assert "max width 0" in str(result)

    def test_hand_built_none_union(self):
        from repro.rewriting import RewritingResult

        result = RewritingResult(None, saturated=False, steps=3, generated=1)
        assert result.max_width == 0
        assert "budget-exhausted" in str(result)
        assert "0 disjuncts" in str(result)


class TestPrunedResurrection:
    """Eager pruning must not veto a kept query's factorisation.

    Regression: with ``E(x,y) -> exists z. R(x,z)`` and
    ``R(x,y) -> E(x,x)``, the single-atom query ``R(x,w)`` first
    reaches ``consider`` as a *rewrite product* (prunable — eagerly
    pruned, the kept ``R & R`` disjunct subsumes it) and only later as
    the expansion-time factorisation of that same ``R & R`` disjunct
    (non-prunable — must be kept).  The pruned arrival's seen-marker
    used to drop the second as a duplicate, so ``R(x,w)``'s own
    rewrite step (to ``E(x,w)``) never ran and the eager rewriting
    lost a disjunct the exact closure keeps.
    """

    THEORY = parse_theory(
        """
        E(x, y) -> exists z. R(x, z)
        R(x, y) -> E(x, x)
        """
    )
    QUERY = parse_query("E(x, x), R(x, y)", free=[])

    def test_eager_keeps_resurrected_factorisation(self):
        from repro.rewriting import legacy_rewrite, ucq_equivalent

        for engine in (rewrite, legacy_rewrite):
            eager = engine(
                self.QUERY, self.THEORY,
                config=RewriteConfig(eager_subsumption=True),
            )
            exact = engine(
                self.QUERY, self.THEORY,
                config=RewriteConfig(eager_subsumption=False),
            )
            assert eager.saturated and exact.saturated
            assert ucq_equivalent(eager.ucq, exact.ucq)
            # the disjunct the bug lost: any E edge certifies the query
            assert answer_by_rewriting(
                parse_structure("E(a,b)"), self.THEORY, self.QUERY
            )
