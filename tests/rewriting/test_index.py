"""Unit tests for the subsumption index behind the worklist engine.

The index never decides containment — it only *filters*: every filter
must be a necessary condition for ``cq_subsumes``, so a candidate list
missing a true subsumer would be a soundness bug in the engine.  The
tests here pin the filter semantics (signatures, constant sets, link
sets) and the indexed final minimisation against the quadratic
reference sweep.
"""

import pytest

from repro.lf import ConjunctiveQuery, Constant, Variable, atom, parse_query
from repro.rewriting import SubsumptionIndex, cq_subsumes, minimize_ucq, signature_of
from repro.rewriting.index import (
    available_links,
    minimize_indexed,
    required_links,
)


class TestSignatures:
    def test_signature_components(self):
        query = parse_query("R(x,u)", free=["x", "u"])
        assert signature_of(query) == (2, 2, (("R", 1),))

    def test_signature_counts_predicate_multiplicity(self):
        query = parse_query("E(x,y), E(y,z), R(z,x)")
        assert signature_of(query) == (0, 3, (("E", 2), ("R", 1)))

    def test_equality_atoms_are_invisible(self):
        plain = parse_query("E(x,y)", free=["x"])
        with_eq = ConjunctiveQuery(
            list(plain.atoms) + [atom("=", Variable("x"), Constant("a"))],
            plain.free,
        )
        assert signature_of(with_eq)[2] == signature_of(plain)[2]

    def test_empty_query_signature(self):
        assert signature_of(ConjunctiveQuery([], ())) == (0, 0, ())


class TestLinks:
    def test_join_produces_a_link(self):
        query = parse_query("E(x,y), R(y,z)", free=["x"])
        assert required_links(query) == frozenset({(("E", 1), ("R", 0))})

    def test_same_slot_repetition_is_no_link(self):
        # y occupies ("E", 1) in both atoms: one distinct slot, no pair
        query = parse_query("E(x,y), E(u,y)", free=["x", "u"])
        assert required_links(query) == frozenset()

    def test_available_links_mirror_canonical_database(self):
        specific = parse_query("E(a,b), R(b,c)")
        assert (("E", 1), ("R", 0)) in available_links(specific)

    def test_link_filter_is_necessary(self):
        # general joins E into R; a specific query whose canonical DB
        # has no such join cannot be subsumed by it
        general = parse_query("E(x,y), R(y,z)", free=["x"])
        unlinked = parse_query("E(x,y), R(u,z)", free=["x"])
        assert required_links(general) <= available_links(
            parse_query("E(x,y), R(y,z)", free=["x"]))
        assert not required_links(general) <= available_links(unlinked)
        assert not cq_subsumes(general, unlinked)


class TestSubsumerCandidates:
    def test_candidates_are_sound(self):
        # every true subsumer must appear among the candidates
        index = SubsumptionIndex()
        kept = [
            parse_query("E(x,y)", free=["x"]),
            parse_query("E(x,y), E(y,z)", free=["x"]),
            parse_query("R(x,y)", free=["x"]),
        ]
        for query in kept:
            index.add(query)
        probe = parse_query("E(x,y), E(y,z), E(z,w)", free=["x"])
        candidates = list(index.subsumer_candidates(probe))
        for query in kept:
            if cq_subsumes(query, probe):
                assert query in candidates

    def test_constant_filter_prunes(self):
        index = SubsumptionIndex()
        with_const = ConjunctiveQuery(
            [atom("E", Constant("a"), Variable("x"))], (Variable("x"),))
        index.add(with_const)
        constant_free = parse_query("E(u,x)", free=["x"])
        # a subsumer mentioning 'a' can never map into a canonical DB
        # without it — the index must not even propose it
        assert with_const not in list(index.subsumer_candidates(constant_free))
        assert not cq_subsumes(with_const, constant_free)

    def test_empty_query_subsumes_any_boolean(self):
        index = SubsumptionIndex()
        empty = ConjunctiveQuery([], ())
        index.add(empty)
        probe = parse_query("E(x,y)")
        assert empty in list(index.subsumer_candidates(probe))
        assert cq_subsumes(empty, probe)


class TestMinimizeIndexed:
    def test_matches_reference_on_duplicates_modulo_renaming(self):
        d1 = parse_query("E(x,y)", free=["x"])
        d2 = parse_query("E(u,w)", free=["u"])
        assert [str(q) for q in minimize_indexed([d1, d2])] == [
            str(q) for q in minimize_ucq([d1, d2])]

    def test_matches_reference_on_dominance_chain(self):
        chain = [
            parse_query("E(x,y)", free=["x"]),
            parse_query("E(x,y), E(y,z)", free=["x"]),
            parse_query("E(x,y), E(y,z), E(z,w)", free=["x"]),
        ]
        assert [str(q) for q in minimize_indexed(chain)] == [
            str(q) for q in minimize_ucq(chain)]
        assert len(minimize_indexed(chain)) == 1

    def test_matches_reference_on_incomparable_family(self):
        def marked(k):
            vs = [Variable(f"v{i}") for i in range(k + 1)]
            atoms = [atom("E", vs[i], vs[i + 1]) for i in range(k)]
            atoms += [atom("U", vs[0]), atom("V", vs[k])]
            return ConjunctiveQuery(atoms, (vs[0],))

        family = [marked(k) for k in range(1, 8)]
        assert [str(q) for q in minimize_indexed(family)] == [
            str(q) for q in minimize_ucq(family)]
        assert len(minimize_indexed(family)) == 7

    def test_empty_disjunct_dominates(self):
        empty = ConjunctiveQuery([], ())
        others = [parse_query("E(x,y)"), parse_query("R(x,y), R(y,z)")]
        result = minimize_indexed([empty] + others)
        assert [str(q) for q in result] == ["true"]
        assert [str(q) for q in minimize_ucq([empty] + others)] == ["true"]

    def test_mixed_arities_never_merge(self):
        boolean = parse_query("E(x,y)")
        unary = parse_query("E(x,y)", free=["x"])
        assert len(minimize_indexed([boolean, unary])) == 2
