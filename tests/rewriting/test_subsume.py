"""Unit tests for repro.rewriting.subsume (containment machinery)."""

from repro.lf import Constant, Variable, atom, cq, parse_query
from repro.rewriting import (
    clear_subsume_cache,
    cq_equivalent,
    cq_subsumes,
    freeze,
    minimize_ucq,
    normalize_equalities,
    subsume_cache_disabled,
    ucq_equivalent,
    ucq_subsumes,
)
from repro.lf.queries import UnionOfConjunctiveQueries

x, y, z, u, w = (Variable(n) for n in "xyzuw")
a, b = Constant("a"), Constant("b")


class TestNormalizeEqualities:
    def test_existential_substituted(self):
        q = cq([atom("E", x, y), atom("=", x, a)])
        normal = normalize_equalities(q)
        assert atom("E", a, y) in normal.atoms
        assert not any(at.is_equality for at in normal.atoms)

    def test_free_variable_kept(self):
        q = cq([atom("E", x, y), atom("=", x, a)], free=(x,))
        normal = normalize_equalities(q)
        assert normal.free == (x,)
        assert any(at.is_equality for at in normal.atoms)
        assert atom("E", a, y) in normal.atoms

    def test_two_free_variables_merged(self):
        q = cq([atom("E", x, y), atom("E", u, y), atom("=", u, x)], free=(x, u))
        normal = normalize_equalities(q)
        assert normal.free == (x, u)
        # relational atoms identified
        relational = [at for at in normal.atoms if not at.is_equality]
        assert len(relational) == 1

    def test_inconsistent_constants(self):
        q = cq([atom("E", x, y), atom("=", a, b)])
        assert normalize_equalities(q) is None

    def test_var_var_chain(self):
        q = cq([atom("E", x, y), atom("=", y, z), atom("=", z, a)])
        normal = normalize_equalities(q)
        assert atom("E", x, a) in normal.atoms

    def test_no_equalities_noop(self):
        q = cq([atom("E", x, y)])
        assert normalize_equalities(q) == q


class TestFreeze:
    def test_variables_become_nulls(self):
        structure, table = freeze(cq([atom("E", x, y)]))
        assert len(structure) == 1
        assert table[x] != table[y]

    def test_shared_variables_shared_elements(self):
        structure, table = freeze(cq([atom("E", x, y), atom("E", y, z)]))
        fact_args = {arg for fact in structure.facts() for arg in fact.args}
        assert len(fact_args) == 3

    def test_pinned_free_variable(self):
        q = cq([atom("E", x, y), atom("=", x, a)], free=(x,))
        structure, table = freeze(q)
        assert table[x] == a
        assert atom("E", a, table[y]) in structure

    def test_merged_free_variables(self):
        q = cq([atom("E", x, y), atom("=", u, x)], free=(x, u))
        structure, table = freeze(q)
        assert table[x] == table[u]


class TestCQSubsumes:
    def test_shorter_path_contains_longer(self):
        edge = parse_query("E(x,y)")
        path = parse_query("E(x,y), E(y,z)")
        assert cq_subsumes(edge, path)
        assert not cq_subsumes(path, edge)

    def test_free_variables_pinned(self):
        general = parse_query("E(x,y)", free=["x"])
        specific = parse_query("E(x,y), E(y,z)", free=["x"])
        assert cq_subsumes(general, specific)
        backwards = parse_query("E(x,y), E(y,z)", free=["z"])
        assert not cq_subsumes(general, backwards)

    def test_free_arity_mismatch(self):
        assert not cq_subsumes(parse_query("E(x,y)", free=["x"]), parse_query("E(x,y)"))

    def test_constant_pinning(self):
        general = parse_query("E('a', y)")
        specific_match = parse_query("E('a', y), E(y, z)")
        specific_miss = parse_query("E('b', y)")
        assert cq_subsumes(general, specific_match)
        assert not cq_subsumes(general, specific_miss)

    def test_equality_constrained_specific(self):
        general = parse_query("E(u, y), E(x, y)", free=["x", "u"])
        specific = cq([atom("E", x, y), atom("=", u, x)], free=(x, u))
        assert cq_subsumes(general, specific)
        assert not cq_subsumes(specific, general)

    def test_equivalence_up_to_renaming(self):
        left = parse_query("E(x,y), E(y,z)")
        right = parse_query("E(u,w), E(w,x)")
        assert cq_equivalent(left, right)

    def test_redundant_atom_equivalence(self):
        lean = parse_query("E(x,y)")
        padded = parse_query("E(x,y), E(u,w)")
        assert cq_equivalent(lean, padded)


class TestMinimize:
    def test_drops_subsumed(self):
        edge = parse_query("E(x,y)")
        path = parse_query("E(x,y), E(y,z)")
        kept = minimize_ucq([path, edge])
        assert kept == [edge]

    def test_keeps_incomparable(self):
        left = parse_query("E(x,y)")
        right = parse_query("R(x,y)")
        assert len(minimize_ucq([left, right])) == 2

    def test_equivalent_collapse(self):
        left = parse_query("E(x,y)")
        right = parse_query("E(u,w)")
        assert len(minimize_ucq([left, right])) == 1


class TestCaching:
    def test_cached_and_uncached_agree(self):
        pairs = [
            (parse_query("E(x,y)"), parse_query("E(x,y), E(y,z)")),
            (parse_query("E(x,y), E(y,x)"), parse_query("E(x,x)")),
            (parse_query("R(x,y)"), parse_query("E(x,y)")),
            (cq([atom("E", x, y), atom("=", x, a)], free=(x,)),
             cq([atom("E", a, y), atom("=", x, a)], free=(x,))),
        ]
        clear_subsume_cache()
        cached = [cq_subsumes(g, s) for g, s in pairs]
        cached_again = [cq_subsumes(g, s) for g, s in pairs]  # warm hits
        with subsume_cache_disabled():
            uncached = [cq_subsumes(g, s) for g, s in pairs]
        assert cached == cached_again == uncached

    def test_clear_is_safe_between_checks(self):
        edge = parse_query("E(x,y)")
        path = parse_query("E(x,y), E(y,z)")
        assert cq_subsumes(edge, path)
        clear_subsume_cache()
        assert cq_subsumes(edge, path)

    def test_disabled_context_restores(self):
        from repro.rewriting import subsume

        assert subsume._CACHE_ENABLED
        with subsume_cache_disabled():
            assert not subsume._CACHE_ENABLED
        assert subsume._CACHE_ENABLED


class TestUCQ:
    def test_ucq_subsumes(self):
        big = UnionOfConjunctiveQueries([parse_query("E(x,y)"), parse_query("R(x,y)")])
        small = UnionOfConjunctiveQueries([parse_query("E(x,y), E(y,z)")])
        assert ucq_subsumes(big, small)
        assert not ucq_subsumes(small, big)

    def test_ucq_equivalent(self):
        left = UnionOfConjunctiveQueries([parse_query("E(x,y)")])
        right = UnionOfConjunctiveQueries(
            [parse_query("E(u,w)"), parse_query("E(x,y), E(y,z)")]
        )
        assert ucq_equivalent(left, right)
