"""Unit tests for repro.rewriting.unify."""

from repro.lf import Constant, Variable, atom
from repro.rewriting import Unifier, mgu, unify_all

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a, b = Constant("a"), Constant("b")


class TestUnifier:
    def test_trivial_find(self):
        assert Unifier().find(x) == x

    def test_union_and_find(self):
        u = Unifier()
        assert u.union(x, y)
        assert u.find(x) == u.find(y)

    def test_long_chain_path_compression(self):
        u = Unifier()
        variables = [Variable(f"v{i}") for i in range(50)]
        for left, right in zip(variables, variables[1:]):
            assert u.union(left, right)
        root = u.find(variables[0])
        assert all(u.find(v) == root for v in variables)

    def test_constant_becomes_representative(self):
        u = Unifier()
        u.union(x, a)
        assert u.find(x) == a

    def test_constant_clash(self):
        u = Unifier()
        assert u.union(x, a)
        assert not u.union(x, b)

    def test_same_constant_ok(self):
        u = Unifier()
        u.union(x, a)
        assert u.union(y, a)
        assert u.find(x) == u.find(y)

    def test_class_of(self):
        u = Unifier()
        u.union(x, y)
        u.union(y, z)
        assert u.class_of(x) == {x, y, z}
        assert u.class_of(w) == {w}

    def test_substitution_prefers_listed_variables(self):
        u = Unifier()
        u.union(x, y)
        sub = u.substitution(prefer=[y])
        assert sub.get(x) == y

    def test_substitution_priority_order(self):
        u = Unifier()
        u.union(x, y)
        sub = u.substitution(prefer=[x, y])
        assert sub.get(y) == x

    def test_substitution_constant_wins(self):
        u = Unifier()
        u.union(x, y)
        u.union(y, a)
        sub = u.substitution(prefer=[x])
        assert sub[x] == a
        assert sub[y] == a


class TestMGU:
    def test_simple(self):
        sub = mgu(atom("E", x, y), atom("E", z, w))
        assert sub is not None
        e1 = atom("E", x, y).substitute(sub)
        e2 = atom("E", z, w).substitute(sub)
        assert e1 == e2

    def test_with_constants(self):
        sub = mgu(atom("E", x, a), atom("E", b, y))
        assert sub[x] == b
        assert sub[y] == a

    def test_predicate_mismatch(self):
        assert mgu(atom("E", x, y), atom("R", x, y)) is None

    def test_arity_mismatch(self):
        assert mgu(atom("E", x, y), atom("E", x)) is None

    def test_constant_clash(self):
        assert mgu(atom("E", a, x), atom("E", b, y)) is None

    def test_repeated_variables(self):
        sub = mgu(atom("E", x, x), atom("E", y, z))
        merged = {atom("E", y, z).substitute(sub).args}
        assert len({t for pair in merged for t in pair}) == 1

    def test_unify_all(self):
        unifier = unify_all([(atom("E", x, y), atom("E", z, w)), (atom("U", x), atom("U", a))])
        assert unifier is not None
        assert unifier.find(z) == a

    def test_unify_all_failure(self):
        assert unify_all([(atom("E", x, a), atom("E", x, b))]) is None
