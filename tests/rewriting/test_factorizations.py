"""Direct tests of the factorisation step primitives.

``_factorizations`` and ``_protect_free_variables`` are shared by both
engines (the worklist engine additionally calls them on pruned
disjuncts — the completeness recovery), so their contract is pinned
here on the paper's own query shapes rather than through full rewrite
runs.
"""

from repro.lf import ConjunctiveQuery, Constant, Variable, atom, parse_query
from repro.rewriting import cq_subsumes
from repro.rewriting.rewriter import _factorizations, _protect_free_variables

#: Example 7's datalog-body shape: two E-atoms sharing their target.
EXAMPLE7_BODY = parse_query("E(x,y), E(u,y)", free=["x", "u"])


class TestFactorizations:
    def test_single_atom_has_none(self):
        assert list(_factorizations(parse_query("R(x,u)", free=["x", "u"]))) == []

    def test_distinct_predicates_never_pair(self):
        assert list(_factorizations(parse_query("E(x,y), R(x,y)"))) == []

    def test_example7_body_merges_the_sources(self):
        factored = [str(f) for f in _factorizations(EXAMPLE7_BODY)]
        # x and u merge; the equality atom keeps the free tuple intact
        assert factored == ["(x, u) <- u = x & E(x, y)"]

    def test_every_factorization_is_contained_in_its_parent(self):
        parent = parse_query("E(x,y), E(y,z), E(u,z)", free=["x"])
        factored = list(_factorizations(parent))
        assert len(factored) == 3
        for child in factored:
            assert cq_subsumes(parent, child)
            assert child.free == parent.free

    def test_prefer_controls_the_representative(self):
        preferred = [
            str(f) for f in _factorizations(
                EXAMPLE7_BODY,
                prefer=(Variable("u"), Variable("x"), Variable("y")),
            )
        ]
        assert preferred == ["(x, u) <- x = u & E(u, y)"]

    def test_constant_clash_blocks_the_pair(self):
        query = ConjunctiveQuery(
            [atom("E", Variable("x"), Constant("a")),
             atom("E", Variable("u"), Constant("b"))],
            (Variable("x"), Variable("u")),
        )
        assert list(_factorizations(query)) == []

    def test_constant_absorbs_the_variable(self):
        query = parse_query("E(x,a), E(u,y)", free=["x", "u"])
        assert [str(f) for f in _factorizations(query)] == [
            "(x, u) <- u = x & E(x, a)"]


class TestProtectFreeVariables:
    def test_renamed_free_variable_gets_an_anchor(self):
        new_atoms = [atom("E", Variable("x"), Variable("y"))]
        _protect_free_variables(
            EXAMPLE7_BODY, {Variable("u"): Variable("x")}, new_atoms)
        assert atom("=", Variable("u"), Variable("x")) in new_atoms

    def test_constant_image_gets_an_anchor(self):
        new_atoms = [atom("E", Constant("a"), Variable("y"))]
        _protect_free_variables(
            EXAMPLE7_BODY, {Variable("x"): Constant("a")}, new_atoms)
        assert atom("=", Variable("x"), Constant("a")) in new_atoms

    def test_untouched_free_variables_add_nothing(self):
        new_atoms = [atom("E", Variable("x"), Variable("z"))]
        _protect_free_variables(
            EXAMPLE7_BODY, {Variable("y"): Variable("z")}, new_atoms)
        assert len(new_atoms) == 1
