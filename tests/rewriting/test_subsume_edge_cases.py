"""Edge cases of the containment layer the engines lean on.

Each of these is a shape the worklist engine actually produces
(equality-laden disjuncts, constants in answer positions, the empty
query as the ``true`` rewriting) — a regression here silently corrupts
rewritings rather than crashing.
"""

from repro.lf import ConjunctiveQuery, Constant, Variable, atom, parse_query
from repro.rewriting import (
    cq_subsumes,
    minimize_ucq,
    normalize_equalities,
    ucq_equivalent,
)


class TestNormalizeEqualities:
    def test_ground_inconsistency_returns_none(self):
        query = ConjunctiveQuery(
            [atom("E", Variable("x"), Variable("y")),
             atom("=", Constant("a"), Constant("b"))],
            (),
        )
        assert normalize_equalities(query) is None

    def test_trivial_ground_equality_is_dropped(self):
        query = ConjunctiveQuery(
            [atom("E", Variable("x"), Variable("y")),
             atom("=", Constant("a"), Constant("a"))],
            (),
        )
        normal = normalize_equalities(query)
        assert normal is not None
        assert not any(a.is_equality for a in normal.atoms)

    def test_existential_equality_is_substituted_away(self):
        query = ConjunctiveQuery(
            [atom("E", Variable("x"), Variable("y")),
             atom("=", Variable("y"), Constant("a"))],
            (Variable("x"),),
        )
        normal = normalize_equalities(query)
        assert str(normal) == "(x) <- E(x, a)"

    def test_free_equality_keeps_the_anchor(self):
        # the free tuple must survive: the equality atom stays so x
        # still occurs even after the substitution into E
        query = ConjunctiveQuery(
            [atom("E", Variable("x"), Variable("y")),
             atom("=", Variable("x"), Constant("a"))],
            (Variable("x"),),
        )
        normal = normalize_equalities(query)
        assert normal.free == (Variable("x"),)
        assert any(a.is_equality for a in normal.atoms)
        assert atom("E", Constant("a"), Variable("y")) in normal.atoms


class TestConstantsInFreePositions:
    def test_variable_generalizes_constant(self):
        const = ConjunctiveQuery(
            [atom("E", Constant("a"), Variable("x"))], (Variable("x"),))
        general = ConjunctiveQuery(
            [atom("E", Variable("u"), Variable("x"))], (Variable("x"),))
        assert cq_subsumes(general, const)
        assert not cq_subsumes(const, general)

    def test_minimize_keeps_only_the_general_form(self):
        const = ConjunctiveQuery(
            [atom("E", Constant("a"), Variable("x"))], (Variable("x"),))
        general = ConjunctiveQuery(
            [atom("E", Variable("u"), Variable("x"))], (Variable("x"),))
        assert [str(q) for q in minimize_ucq([const, general])] == [
            "(x) <- E(u, x)"]

    def test_distinct_constants_are_incomparable(self):
        qa = ConjunctiveQuery(
            [atom("E", Constant("a"), Variable("x"))], (Variable("x"),))
        qb = ConjunctiveQuery(
            [atom("E", Constant("b"), Variable("x"))], (Variable("x"),))
        assert not cq_subsumes(qa, qb)
        assert not cq_subsumes(qb, qa)
        assert len(minimize_ucq([qa, qb])) == 2


class TestZeroAtomQueries:
    def test_empty_query_subsumes_every_boolean(self):
        empty = ConjunctiveQuery([], ())
        assert cq_subsumes(empty, parse_query("E(x,y)"))
        assert not cq_subsumes(parse_query("E(x,y)"), empty)

    def test_arity_mismatch_blocks_subsumption(self):
        # 'true' does not answer an open query: free arities differ
        empty = ConjunctiveQuery([], ())
        open_query = parse_query("R(x,u)", free=["x", "u"])
        assert not cq_subsumes(empty, open_query)
        assert not cq_subsumes(open_query, empty)
        assert len(minimize_ucq([empty, open_query])) == 2

    def test_empty_query_collapses_boolean_unions(self):
        empty = ConjunctiveQuery([], ())
        disjuncts = [empty, parse_query("E(x,y)"), parse_query("R(x,y), R(y,z)")]
        assert [str(q) for q in minimize_ucq(disjuncts)] == ["true"]


class TestDuplicatesModuloRenaming:
    def test_alpha_variants_collapse(self):
        d1 = parse_query("E(x,y)", free=["x"])
        d2 = parse_query("E(u,w)", free=["u"])
        kept = minimize_ucq([d1, d2])
        assert len(kept) == 1
        assert str(kept[0]) == "(u) <- E(u, w)"

    def test_collapsed_union_stays_equivalent(self):
        from repro.lf import UnionOfConjunctiveQueries

        d1 = parse_query("E(x,y), E(y,z)", free=["x"])
        d2 = parse_query("E(u,w), E(w,v)", free=["u"])
        before = UnionOfConjunctiveQueries([d1, d2])
        after = UnionOfConjunctiveQueries(minimize_ucq([d1, d2]))
        assert ucq_equivalent(before, after)
