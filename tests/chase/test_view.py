"""Tests for incremental chase views (``repro.chase.view``)."""

import pytest

from repro.config import OnBudget
from repro.errors import ChaseBudgetExceeded, ChaseError
from repro.chase import (
    ChaseConfig,
    ChaseView,
    IncrementalConfig,
    chase,
    chase_view,
    explain,
)
from repro.lf import parse_fact, parse_query, parse_structure, parse_theory
from repro.runtime import StopReason

TRANSITIVE = parse_theory("E(x,y), E(y,z) -> E(x,z)")
CHAIN = parse_structure("E(a,b)\nE(b,c)\nE(c,d)")


def rechase_facts(base_facts, theory):
    """The fact set of a from-scratch chase of the current base."""
    result = chase(
        parse_structure("\n".join(sorted(str(f) for f in base_facts))),
        theory,
        ChaseConfig(max_depth=None, max_facts=100_000),
    )
    assert result.saturated
    return result.structure.facts()


class TestConfig:
    def test_forces_trace_and_delta(self):
        config = IncrementalConfig()
        assert config.trace is True
        assert config.strategy.value == "delta"

    def test_oblivious_rejected(self):
        with pytest.raises(ValueError):
            IncrementalConfig(oblivious=True)

    def test_bad_max_update_rounds_rejected(self):
        with pytest.raises(ValueError):
            IncrementalConfig(max_update_rounds=0)

    def test_plain_chase_config_promoted(self):
        view = ChaseView(CHAIN, TRANSITIVE, ChaseConfig(max_depth=None))
        assert isinstance(view.config, IncrementalConfig)
        assert view.config.trace is True

    def test_non_ground_update_rejected(self):
        view = chase_view(CHAIN, TRANSITIVE, max_depth=None)
        with pytest.raises(ChaseError):
            view.update(adds=[parse_query("E(x,y)").atoms[0]])


class TestInsert:
    def test_insert_resumes_to_rechase_fixpoint(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        assert view.saturated
        result = view.update(adds=[parse_fact("E(d, e)")])
        assert result.saturated
        assert view.facts() == rechase_facts(view.base_facts(), TRANSITIVE)
        # the new closure facts are reported as the net delta
        assert parse_fact("E(a, e)") in result.added

    def test_insert_existing_base_fact_is_noop(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        before = view.facts()
        result = view.update(adds=[parse_fact("E(a, b)")])
        assert result.stats.adds_in == 0
        assert result.added == ()
        assert view.facts() == before

    def test_delta_is_seeded_with_only_new_facts(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        result = view.update(adds=[parse_fact("E(z1, z2)")])
        # the disconnected edge triggers nothing: one certifying round
        assert result.stats.delta_sizes[0] == 1
        assert result.stats.facts_added == 0

    def test_insert_derived_fact_becomes_extensional(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        derived = parse_fact("E(a, c)")
        assert view.level_of(derived) > 0
        view.update(adds=[derived])
        assert view.level_of(derived) == 0
        assert derived in view.base_facts()


class TestDelete:
    def test_delete_overdeletes_consequences(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        result = view.update(removes=[parse_fact("E(c, d)")])
        assert result.saturated
        assert view.facts() == rechase_facts(view.base_facts(), TRANSITIVE)
        assert parse_fact("E(a, d)") not in view.facts()
        assert result.stats.overdeleted >= 2  # E(b,d), E(a,d)

    def test_retract_non_base_fact_rejected(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        with pytest.raises(ChaseError):
            view.update(removes=[parse_fact("E(a, c)")])  # derived
        with pytest.raises(ChaseError):
            view.update(removes=[parse_fact("E(z, z)")])  # absent

    def test_rederive_through_alternative_support(self):
        # E(a,c) is derivable both via b and via x; killing the b-path
        # must keep it (multi-support provenance, not full rechase)
        db = parse_structure("E(a,b)\nE(b,c)\nE(a,x)\nE(x,c)")
        view = ChaseView(db, TRANSITIVE, max_depth=None)
        result = view.update(removes=[parse_fact("E(a, b)")])
        assert parse_fact("E(a, c)") in view.facts()
        assert result.stats.rederived >= 1
        assert view.facts() == rechase_facts(view.base_facts(), TRANSITIVE)

    def test_removed_base_fact_can_rederive(self):
        # E(a,c) is base *and* derivable: retracting it from the base
        # must bring it back as a derived fact
        db = parse_structure("E(a,b)\nE(b,c)\nE(a,c)")
        view = ChaseView(db, TRANSITIVE, max_depth=None)
        result = view.update(removes=[parse_fact("E(a, c)")])
        assert result.saturated
        fact = parse_fact("E(a, c)")
        assert fact in view.facts()
        assert fact not in view.base_facts()
        assert view.level_of(fact) > 0
        assert result.removed == ()  # net change: nothing actually left

    def test_mutual_support_collapses(self):
        theory = parse_theory("E(x,y) -> S(x,y)\nS(x,y) -> E(x,y)")
        view = ChaseView(parse_structure("E(a,b)"), theory, max_depth=None)
        assert parse_fact("S(a, b)") in view.facts()
        view.update(removes=[parse_fact("E(a, b)")])
        assert len(view) == 0  # the E/S cycle is not self-sustaining

    def test_unsuppression_reinvents_witness(self):
        # deleting the witness F(b,c) un-suppresses the existential
        # trigger from E(a,b): a fresh null must be invented
        theory = parse_theory("E(x,y) -> exists z. F(y,z)")
        db = parse_structure("E(a,b)\nF(b,c)")
        view = ChaseView(db, theory, max_depth=None)
        assert view.saturated and len(view) == 2
        result = view.update(removes=[parse_fact("F(b, c)")])
        assert result.saturated
        f_facts = view.structure.facts_with_pred("F")
        assert len(f_facts) == 1
        assert result.stats.nulls_invented == 1

    def test_orphaned_nulls_counted(self):
        theory = parse_theory("U(x) -> exists z. R(x,z)\nR(x,y) -> S(y)")
        view = ChaseView(parse_structure("U(a)"), theory, max_depth=None)
        result = view.update(removes=[parse_fact("U(a)")])
        assert len(view) == 0
        assert result.stats.nulls_orphaned == 1


class TestQueries:
    def test_certain_boolean_verdicts(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        hit = view.certain_one(parse_query("E('a','d')"))
        assert hit.verdict is True and hit.complete
        miss = view.certain_one(parse_query("E('d','a')"))
        assert miss.verdict is False
        view.update(adds=[parse_fact("E(d, a)")])
        assert view.certain_one(parse_query("E('d','a')")).verdict is True

    def test_certain_open_query_filters_nulls(self):
        theory = parse_theory("U(x) -> exists z. R(x,z)\nR(x,y) -> V(x)")
        view = ChaseView(parse_structure("U(a)"), theory, max_depth=None)
        answer = view.certain_one(parse_query("R(x,y)", free=["x", "y"]))
        assert answer.answers == set()  # the only row mentions a null
        assert answer.verdict is False
        v_answer = view.certain_one(parse_query("V(x)", free=["x"]))
        assert len(v_answer.answers) == 1

    def test_certain_batch_shares_call(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        answers = view.certain(
            [parse_query("E('a','c')"), parse_query("E('c','a')")]
        )
        assert [a.verdict for a in answers] == [True, False]

    def test_truncated_view_answers_incomplete(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        view = ChaseView(parse_structure("E(a,b)"), theory, max_depth=3)
        assert not view.saturated
        answer = view.certain_one(parse_query("E(x,x)"))
        assert answer.verdict is None and not answer.complete


class TestBudgets:
    def test_max_update_rounds_stashes_and_refreshes(self):
        chain = parse_structure(
            "\n".join(f"E(a{i},a{i + 1})" for i in range(8))
        )
        view = ChaseView(
            chain, TRANSITIVE,
            max_depth=None, max_update_rounds=1, on_budget=OnBudget.RETURN,
        )
        # the initial chase is a plain chase: saturated
        assert view.saturated
        result = view.update(adds=[parse_fact("E(a8, a9)")])
        assert not result.saturated
        assert result.stopped_reason is StopReason.BUDGET
        while not view.saturated:
            result = view.refresh()
        assert view.facts() == rechase_facts(view.base_facts(), TRANSITIVE)

    def test_max_facts_raises_when_configured(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        view = ChaseView(
            parse_structure("E(a,b)\nE(b,a)"), theory,
            max_depth=None, max_facts=20, on_budget=OnBudget.RAISE,
        )
        assert view.saturated  # the 2-cycle suppresses everything
        with pytest.raises(ChaseBudgetExceeded):
            # breaking the cycle un-suppresses an infinite E-chain
            view.update(removes=[parse_fact("E(b, a)")])
        assert not view.saturated

    def test_interrupted_update_leaves_consistent_view(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        view = ChaseView(
            parse_structure("E(a,b)\nE(b,a)"), theory,
            max_depth=None, max_facts=20, on_budget=OnBudget.RETURN,
        )
        result = view.update(removes=[parse_fact("E(b, a)")])
        assert not result.saturated
        # every present fact still has a recorded level
        for fact in view.facts():
            assert view.level_of(fact) >= 0


class TestBackends:
    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_update_stream_matches_rechase(self, backend):
        view = ChaseView(
            CHAIN, TRANSITIVE, max_depth=None, store=backend
        )
        script = [
            ([parse_fact("E(d, e)")], []),
            ([], [parse_fact("E(b, c)")]),
            ([parse_fact("E(c, a)")], [parse_fact("E(a, b)")]),
        ]
        for adds, removes in script:
            result = view.update(adds=adds, removes=removes)
            assert result.saturated
            assert view.facts() == rechase_facts(
                view.base_facts(), TRANSITIVE
            )

    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_backend_actually_selected(self, backend):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None, store=backend)
        assert view.structure.is_columnar == (backend == "columnar")


class TestIntrospection:
    def test_as_result_supports_explain(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        view.update(adds=[parse_fact("E(d, e)")])
        derivation = explain(view.as_result(), parse_fact("E(c, e)"))
        assert not derivation.is_leaf

    def test_update_stats_accumulate(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        view.update(adds=[parse_fact("E(d, e)")])
        view.update(removes=[parse_fact("E(d, e)")])
        assert len(view.update_stats) == 2
        first, second = view.update_stats
        assert first.adds_in == 1 and second.removes_in == 1
        payload = second.as_dict(timings=False)
        assert "wall_ms" not in payload
        assert payload["overdeleted"] == second.overdeleted
        assert "# update:" in second.render()

    def test_str_smoke(self):
        view = ChaseView(CHAIN, TRANSITIVE, max_depth=None)
        assert "saturated" in str(view)
        assert "base facts" in str(view)
