"""Tests for chase levels, certain answers, and termination criteria."""

import pytest

from repro.chase import (
    certain_answers,
    certain_boolean,
    chase,
    chase_entails,
    chase_levels,
    dependency_graph,
    is_weakly_acyclic,
    observed_derivation_depth,
    query_depth_profile,
    special_cycle_witness,
)
from repro.lf import Constant, atom, parse_query, parse_structure, parse_theory

a, d = Constant("a"), Constant("d")

TRANSITIVE = parse_theory("E(x,y), E(y,z) -> E(x,z)")
CHAIN4 = parse_structure("E(a,b)\nE(b,c)\nE(c,d)\nE(d,e)")
GROWING = parse_theory("E(x,y) -> exists z. E(y,z)")


class TestLevels:
    def test_chase_levels_monotone(self):
        levels = chase_levels(CHAIN4, TRANSITIVE, depth=5)
        for earlier, later in zip(levels, levels[1:]):
            assert later.contains_structure(earlier)

    def test_chase_levels_stop_at_saturation(self):
        levels = chase_levels(CHAIN4, TRANSITIVE, depth=50)
        assert len(levels) <= 4  # saturates quickly

    def test_level_zero_is_database(self):
        levels = chase_levels(CHAIN4, TRANSITIVE, depth=3)
        assert levels[0].same_facts(CHAIN4)

    def test_observed_derivation_depth_zero_for_database_fact(self):
        result = chase(CHAIN4, TRANSITIVE)
        assert observed_derivation_depth(result, parse_query("E('a','b')")) == 0

    def test_observed_derivation_depth_grows(self):
        result = chase(CHAIN4, TRANSITIVE)
        assert observed_derivation_depth(result, parse_query("E('a','e')")) == 2

    def test_observed_derivation_depth_none_when_absent(self):
        result = chase(CHAIN4, TRANSITIVE)
        assert observed_derivation_depth(result, parse_query("R(x,y)")) is None

    def test_minimum_over_matches(self):
        # E(x,y) matches database facts, so depth 0 even though derived
        # facts also match.
        result = chase(CHAIN4, TRANSITIVE)
        assert observed_derivation_depth(result, parse_query("E(x,y)")) == 0

    def test_missing_fact_level_is_a_hard_error(self):
        # Regression: a matched fact absent from fact_level used to be
        # silently treated as level 0, masking bookkeeping bugs in
        # hand-built or mis-merged results.
        from repro.chase import ChaseResult
        from repro.lf import parse_structure as ps

        structure = ps("E(a,b)\nE(b,c)")
        broken = ChaseResult(
            structure=structure,
            depth=1,
            saturated=True,
            fact_level={atom("E", Constant("a"), Constant("b")): 0},
        )
        with pytest.raises(ValueError, match="fact_level"):
            observed_derivation_depth(broken, parse_query("E('b','c')"))

    def test_complete_fact_level_still_answers(self):
        from repro.chase import ChaseResult
        from repro.lf import parse_structure as ps

        structure = ps("E(a,b)")
        result = ChaseResult(
            structure=structure,
            depth=0,
            saturated=True,
            fact_level={atom("E", Constant("a"), Constant("b")): 0},
        )
        assert observed_derivation_depth(result, parse_query("E(x,y)")) == 0

    def test_query_depth_profile(self):
        depth, result = query_depth_profile(CHAIN4, TRANSITIVE, parse_query("E('a','d')"), 10)
        assert depth == 2
        assert result.saturated


class TestCertain:
    def test_true_via_saturation(self):
        assert certain_boolean(CHAIN4, TRANSITIVE, parse_query("E('a','e')")) is True

    def test_false_via_saturation(self):
        assert certain_boolean(CHAIN4, TRANSITIVE, parse_query("E('e','a')")) is False

    def test_true_on_infinite_chase(self):
        query = parse_query("E(x,y), E(y,z), E(z,w)")
        assert certain_boolean(parse_structure("E(a,b)"), GROWING, query, max_depth=6) is True

    def test_unknown_on_budget(self):
        # A query that never becomes true, on a diverging chase.
        query = parse_query("E(x,x)")
        verdict = certain_boolean(parse_structure("E(a,b)"), GROWING, query, max_depth=4)
        assert verdict is None

    def test_answers_exclude_nulls(self):
        answers, complete = certain_answers(
            parse_structure("E(a,b)"),
            GROWING,
            parse_query("E(x,y)", free=["x", "y"]),
            max_depth=4,
        )
        assert answers == {(a, Constant("b"))}
        assert not complete

    def test_answers_complete_when_saturated(self):
        answers, complete = certain_answers(
            CHAIN4, TRANSITIVE, parse_query("E('a',y)", free=["y"])
        )
        assert complete
        assert len(answers) == 4

    def test_chase_entails_reuses_run(self):
        result = chase(CHAIN4, TRANSITIVE)
        assert chase_entails(result, parse_query("E('a','e')")) is True
        assert chase_entails(result, parse_query("E('e','a')")) is False


class TestWeakAcyclicity:
    def test_datalog_always_weakly_acyclic(self):
        assert is_weakly_acyclic(TRANSITIVE)

    def test_self_feeding_tgd_not_weakly_acyclic(self):
        assert not is_weakly_acyclic(GROWING)

    def test_nonrecursive_tgd_weakly_acyclic(self):
        assert is_weakly_acyclic(parse_theory("E(x,y) -> exists z. R(y,z)"))

    def test_two_step_special_cycle(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. R(y,z)
            R(x,y) -> exists z. E(y,z)
            """
        )
        assert not is_weakly_acyclic(theory)

    def test_normal_cycle_alone_is_fine(self):
        theory = parse_theory(
            """
            E(x,y) -> R(y,x)
            R(x,y) -> E(y,x)
            """
        )
        assert is_weakly_acyclic(theory)

    def test_witness_returned_for_bad_theory(self):
        witness = special_cycle_witness(GROWING)
        assert ("E", 0) in witness or ("E", 1) in witness

    def test_witness_empty_for_good_theory(self):
        assert special_cycle_witness(TRANSITIVE) == []

    def test_dependency_graph_edges(self):
        graph = dependency_graph(GROWING)
        # body positions (E,0) and (E,1) feed the special position (E,1)
        assert ("E", 1) in graph.special.get(("E", 1), set()) or (
            ("E", 1) in graph.special.get(("E", 0), set())
        )
        # frontier y: body (E,1) -> head (E,0) is a normal edge
        assert ("E", 0) in graph.normal.get(("E", 1), set())

    def test_weakly_acyclic_chase_terminates(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. R(y,z)
            R(x,y) -> S(x,y)
            """
        )
        assert is_weakly_acyclic(theory)
        result = chase(parse_structure("E(a,b)"), theory, max_depth=100)
        assert result.saturated
