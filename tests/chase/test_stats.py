"""Instrumentation: the counters on :class:`repro.chase.ChaseStats`.

The stats are part of the public result surface (CLI ``--stats`` /
``--json`` and the benchmarks read them), so their internal consistency
and determinism are pinned here.
"""

import json

from repro.chase import (
    ChaseConfig,
    ChaseStats,
    ChaseStrategy,
    RoundStats,
    chase,
    datalog_saturate,
)
from repro.chase.stats import TIMING_FIELDS
from repro.lf import parse_structure, parse_theory
from repro.zoo import chain_structure, transitive_theory


def growing_chain():
    return (
        parse_structure("E(a,b)"),
        parse_theory("E(x,y) -> exists z. E(y,z)"),
    )


class TestCounters:
    def test_every_round_is_recorded(self):
        database, theory = growing_chain()
        result = chase(database, theory, ChaseConfig(max_depth=5))
        assert result.stats is not None
        # 5 growing rounds, truncated: no empty closing round.
        assert [r.round for r in result.stats.rounds] == [1, 2, 3, 4, 5]
        assert result.stats.facts_added == len(result.structure) - 1
        assert result.stats.nulls_invented == len(result.new_elements)

    def test_saturating_run_includes_the_empty_closing_round(self):
        result = chase(chain_structure(4), transitive_theory(),
                       ChaseConfig(max_depth=10))
        assert result.saturated
        last = result.stats.rounds[-1]
        assert last.facts_added == 0
        # The closing round still enumerated (and rejected) triggers on
        # the naive path, or proved the delta empty on the delta path.
        assert result.stats.facts_added == len(result.structure) - 4

    def test_totals_are_sums_of_rounds(self):
        result = chase(chain_structure(5), transitive_theory(),
                       ChaseConfig(max_depth=10))
        stats = result.stats
        for name in ("triggers_evaluated", "triggers_fired",
                     "triggers_suppressed", "facts_added", "nulls_invented",
                     "index_probes"):
            assert getattr(stats, name) == sum(
                getattr(r, name) for r in stats.rounds
            ), name
        assert stats.delta_sizes == [r.delta_in for r in stats.rounds]

    def test_suppression_counts_existing_witnesses(self):
        # a -> b already has an E-successor: the existential trigger on
        # E(a,b) is suppressed, never fired.
        database = parse_structure("E(a,b), E(b,c), E(c,a)")
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        result = chase(database, theory, ChaseConfig(max_depth=4))
        assert result.saturated
        assert result.stats.triggers_fired == 0
        assert result.stats.triggers_suppressed >= 3

    def test_index_probes_are_attributed_to_rounds(self):
        database, theory = growing_chain()
        result = chase(database, theory, ChaseConfig(max_depth=3))
        assert result.stats.index_probes > 0
        assert all(r.index_probes >= 0 for r in result.stats.rounds)

    def test_oblivious_runs_report_naive(self):
        database, theory = growing_chain()
        result = chase(database, theory,
                       ChaseConfig(max_depth=3, oblivious=True))
        assert result.stats.strategy == "naive"

    def test_datalog_saturate_carries_stats(self):
        structure = chain_structure(4)
        saturated = datalog_saturate(structure, transitive_theory())
        assert saturated.stats is not None
        assert saturated.stats.triggers_fired > 0
        assert saturated.stats.facts_added == len(saturated.structure) - 4


class TestSerialization:
    def test_as_dict_round_trips_through_json(self):
        database, theory = growing_chain()
        stats = chase(database, theory, ChaseConfig(max_depth=3)).stats
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["strategy"] == "delta"
        assert len(payload["rounds"]) == 3
        assert payload["totals"]["facts_added"] == stats.facts_added

    def test_timings_false_strips_every_wall_time(self):
        database, theory = growing_chain()
        stats = chase(database, theory, ChaseConfig(max_depth=3)).stats
        payload = stats.as_dict(timings=False)
        assert "wall_ms" not in payload["totals"]
        for entry in payload["rounds"]:
            for key in TIMING_FIELDS:
                assert key not in entry

    def test_counters_deterministic_across_runs(self):
        # Everything except the wall times is a pure function of the
        # inputs — rerunning must give byte-identical timing-free dicts.
        database, theory = growing_chain()
        config = ChaseConfig(max_depth=4)
        first = chase(database, theory, config).stats.as_dict(timings=False)
        second = chase(database, theory, config).stats.as_dict(timings=False)
        assert first == second

    def test_render_is_deterministic_modulo_wall(self):
        database, theory = growing_chain()
        config = ChaseConfig(max_depth=4)

        def strip_wall(text):
            return [line.split(" wall=")[0] for line in text.splitlines()]

        first = chase(database, theory, config).stats.render()
        second = chase(database, theory, config).stats.render()
        assert strip_wall(first) == strip_wall(second)

    def test_empty_stats_render(self):
        stats = ChaseStats(strategy="naive", rounds=[RoundStats(round=1)])
        assert "round 1" in stats.render()
        assert stats.triggers_evaluated == 0
