"""Unit tests for the chase engine (repro.chase.engine)."""

import pytest

from repro.errors import ChaseBudgetExceeded, NewElementEmbargoViolation
from repro.lf import (
    Constant,
    Null,
    Structure,
    Variable,
    atom,
    parse_query,
    parse_structure,
    parse_theory,
)
from repro.config import OnBudget
from repro.chase import (
    ChaseConfig,
    chase,
    chase_with_embargo,
    datalog_saturate,
    is_model,
    violations,
)

a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestDatalogChase:
    def test_transitive_closure_saturates(self):
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        database = parse_structure("E(a,b)\nE(b,c)\nE(c,d)")
        result = chase(database, theory)
        assert result.saturated
        assert atom("E", a, Constant("d")) in result.structure
        assert len(result.structure.facts_with_pred("E")) == 6

    def test_no_new_elements_for_datalog(self):
        theory = parse_theory("E(x,y) -> E(y,x)")
        result = chase(parse_structure("E(a,b)"), theory)
        assert result.saturated
        assert not result.new_elements

    def test_input_not_mutated(self):
        theory = parse_theory("E(x,y) -> E(y,x)")
        database = parse_structure("E(a,b)")
        chase(database, theory)
        assert len(database) == 1

    def test_fact_levels(self):
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        database = parse_structure("E(a,b)\nE(b,c)\nE(c,d)\nE(d,e)")
        result = chase(database, theory)
        assert result.fact_level[atom("E", a, b)] == 0
        assert result.fact_level[atom("E", a, c)] == 1
        # a->e requires two rounds of the parallel chase:
        # round 1 gives spans of length ≤ 2 hops, round 2 composes them.
        assert result.fact_level[atom("E", a, Constant("e"))] == 2

    def test_truncate_matches_levels(self):
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        database = parse_structure("E(a,b)\nE(b,c)\nE(c,d)\nE(d,e)")
        result = chase(database, theory)
        level0 = result.truncate(0)
        assert level0.same_facts(database)
        level1 = result.truncate(1)
        assert atom("E", a, c) in level1
        assert atom("E", a, Constant("e")) not in level1


class TestExistentialChase:
    def test_restricted_chase_reuses_witness(self):
        # E(a,b) with rule E(x,y) -> exists z. E(y,z): b needs a witness,
        # but a already has one (b), so only one null per new frontier.
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        result = chase(parse_structure("E(a,b)"), theory, max_depth=4)
        assert len(result.new_elements) == 4  # one per round: a chain

    def test_witness_not_created_when_satisfied(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        loop = parse_structure("E(a,a)")
        result = chase(loop, theory, max_depth=10)
        assert result.saturated
        assert not result.new_elements

    def test_oblivious_chase_always_creates(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        loop = parse_structure("E(a,a)")
        result = chase(loop, theory, ChaseConfig(max_depth=1, oblivious=True))
        assert result.new_elements  # created despite the existing loop

    def test_shared_witness_per_head_atom(self):
        # Two rules demanding the same head atom R(y, z) on the same y
        # share the witness (Lemma 3(iv) discipline).
        theory = parse_theory(
            """
            U(x) -> exists z. R(x,z)
            V(x) -> exists z. R(x,z)
            """
        )
        database = parse_structure("U(a)\nV(a)")
        result = chase(database, theory)
        assert result.saturated
        assert len(result.structure.facts_with_pred("R")) == 1

    def test_distinct_frontiers_get_distinct_witnesses(self):
        theory = parse_theory("U(x) -> exists z. R(x,z)")
        database = parse_structure("U(a)\nU(b)")
        result = chase(database, theory)
        assert len(result.structure.facts_with_pred("R")) == 2
        assert len(result.new_elements) == 2

    def test_null_provenance(self):
        theory = parse_theory("U(x) -> exists z. R(x,z)")
        result = chase(parse_structure("U(a)"), theory)
        null = result.new_elements[0]
        assert null.rule_index == 0
        assert null.level == 1

    def test_example1_chain_never_triggers_triangle_rule(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
            U(x,y) -> exists z. U(y,z)
            """
        )
        result = chase(parse_structure("E(a,b)"), theory, max_depth=8)
        assert not result.structure.facts_with_pred("U")
        assert len(result.structure.facts_with_pred("E")) == 9

    def test_example1_triangle_diverges_on_U(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
            U(x,y) -> exists z. U(y,z)
            """
        )
        triangle = parse_structure("E(a,b)\nE(b,c)\nE(c,a)")
        result = chase(triangle, theory, max_depth=5)
        assert not result.saturated
        assert result.structure.facts_with_pred("U")

    def test_multi_existential_rule(self):
        theory = parse_theory("U(x) -> exists y, z. T(x, y, z)")
        result = chase(parse_structure("U(a)"), theory)
        assert result.saturated
        fact = next(iter(result.structure.facts_with_pred("T")))
        assert isinstance(fact.args[1], Null)
        assert isinstance(fact.args[2], Null)
        assert fact.args[1] != fact.args[2]


class TestBudgets:
    def test_max_depth(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        result = chase(parse_structure("E(a,b)"), theory, max_depth=3)
        assert result.depth == 3
        assert not result.saturated

    def test_max_facts_return(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        result = chase(
            parse_structure("E(a,b)"),
            theory,
            ChaseConfig(max_depth=None, max_facts=5, max_elements=None),
        )
        assert not result.saturated
        assert len(result.structure) >= 5

    def test_max_facts_raise(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        with pytest.raises(ChaseBudgetExceeded):
            chase(
                parse_structure("E(a,b)"),
                theory,
                ChaseConfig(max_depth=None, max_facts=5, max_elements=None, on_budget=OnBudget.RAISE),
            )

    def test_all_budgets_none_rejected(self):
        with pytest.raises(ValueError):
            ChaseConfig(max_depth=None, max_facts=None, max_elements=None)

    def test_bad_on_budget_rejected(self):
        with pytest.raises(ValueError):
            ChaseConfig(max_depth=1, on_budget="explode")


class TestEmbargo:
    def test_embargo_raises_when_witness_needed(self):
        theory = parse_theory("U(x) -> exists z. R(x,z)")
        with pytest.raises(NewElementEmbargoViolation):
            chase_with_embargo(parse_structure("U(a)"), theory)

    def test_embargo_passes_when_witness_exists(self):
        theory = parse_theory("U(x) -> exists z. R(x,z)")
        database = parse_structure("U(a)\nR(a,b)")
        result = chase_with_embargo(database, theory)
        assert result.saturated

    def test_embargo_allows_datalog(self):
        theory = parse_theory(
            """
            U(x) -> exists z. R(x,z)
            R(x,y) -> S(y,x)
            """
        )
        database = parse_structure("U(a)\nR(a,b)")
        result = chase_with_embargo(database, theory)
        assert result.saturated
        assert atom("S", b, a) in result.structure


class TestDatalogSaturate:
    def test_ignores_tgds(self):
        theory = parse_theory(
            """
            U(x) -> exists z. R(x,z)
            E(x,y), E(y,z) -> E(x,z)
            """
        )
        database = parse_structure("U(a)\nE(a,b)\nE(b,c)")
        result = datalog_saturate(database, theory)
        assert result.saturated
        assert not result.structure.facts_with_pred("R")
        assert atom("E", a, c) in result.structure


class TestModelChecking:
    def test_is_model_positive(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        triangle = parse_structure("E(a,b)\nE(b,c)\nE(c,a)")
        assert is_model(triangle, theory)

    def test_is_model_negative(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        chain = parse_structure("E(a,b)")
        assert not is_model(chain, theory)

    def test_violations_reported(self):
        theory = parse_theory("E(x,y) -> E(y,x)")
        chain = parse_structure("E(a,b)\nE(c,d)")
        found = violations(chain, theory)
        assert len(found) == 2
        rule, binding = found[0]
        assert rule.is_datalog

    def test_violations_limit(self):
        theory = parse_theory("E(x,y) -> E(y,x)")
        big = Structure(
            atom("E", Constant(f"v{i}"), Constant(f"w{i}")) for i in range(30)
        )
        assert len(violations(big, theory, limit=7)) == 7

    def test_saturated_chase_is_model(self):
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> P(x)
            """
        )
        result = chase(parse_structure("E(a,b)\nE(b,c)"), theory)
        assert result.saturated
        assert is_model(result.structure, theory)
