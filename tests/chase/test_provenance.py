"""Tests for chase provenance (derivation trees)."""

import pytest

from repro.errors import ChaseError
from repro.chase import (
    ChaseConfig,
    chase,
    deepest_derivation,
    explain,
    explain_all,
    observed_derivation_depth,
)
from repro.lf import parse_fact, parse_query, parse_structure, parse_theory

TRANSITIVE = parse_theory("E(x,y), E(y,z) -> E(x,z)")
CHAIN = parse_structure("E(a,b)\nE(b,c)\nE(c,d)\nE(d,e)")


def traced(database, theory, depth=6):
    return chase(database, theory, ChaseConfig(max_depth=depth, trace=True))


class TestExplain:
    def test_database_fact_is_leaf(self):
        result = traced(CHAIN, TRANSITIVE)
        derivation = explain(result, parse_fact("E(a, b)"))
        assert derivation.is_leaf
        assert derivation.height == 0
        assert derivation.size == 0

    def test_derived_fact_has_tree(self):
        result = traced(CHAIN, TRANSITIVE)
        derivation = explain(result, parse_fact("E(a, c)"))
        assert not derivation.is_leaf
        assert derivation.rule_index == 0
        assert len(derivation.premises) == 2
        assert all(p.is_leaf for p in derivation.premises)

    def test_height_bounds_parallel_level(self):
        result = traced(CHAIN, TRANSITIVE)
        for fact in result.structure.facts():
            derivation = explain(result, fact)
            assert derivation.height >= result.fact_level[fact]

    def test_untraced_run_rejected(self):
        result = chase(CHAIN, TRANSITIVE, ChaseConfig(max_depth=6))
        with pytest.raises(ChaseError):
            explain(result, parse_fact("E(a, c)"))

    def test_unknown_fact_rejected(self):
        result = traced(CHAIN, TRANSITIVE)
        with pytest.raises(ChaseError):
            explain(result, parse_fact("E(e, a)"))

    def test_existential_premises_recorded(self):
        theory = parse_theory(
            """
            U(x) -> exists z. R(x,z)
            R(x,y) -> S(y)
            """
        )
        result = traced(parse_structure("U(a)"), theory)
        s_fact = next(iter(result.structure.facts_with_pred("S")))
        derivation = explain(result, s_fact)
        assert derivation.rule_index == 1
        r_premise = derivation.premises[0]
        assert r_premise.rule_index == 0
        assert r_premise.premises[0].is_leaf

    def test_render_names_rules(self):
        result = traced(CHAIN, TRANSITIVE)
        text = explain(result, parse_fact("E(a, c)")).render(TRANSITIVE)
        assert "E(a, c)" in text
        assert "rule 0" in text
        assert "database" in text

    def test_rules_used(self):
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> B(y,x)
            """
        )
        result = traced(CHAIN, theory)
        b_fact = parse_fact("B(c, a)")
        derivation = explain(result, b_fact)
        assert derivation.rules_used() == [0, 1]


class TestHelpers:
    def test_explain_all_limit(self):
        result = traced(CHAIN, TRANSITIVE)
        derivations = explain_all(result, "E", limit=3)
        assert len(derivations) == 3

    def test_deepest_derivation(self):
        result = traced(CHAIN, TRANSITIVE)
        deepest = deepest_derivation(result)
        assert result.fact_level[deepest.fact] == result.depth

    def test_deepest_height_at_least_observed_depth(self):
        result = traced(CHAIN, TRANSITIVE)
        deepest = deepest_derivation(result)
        observed = observed_derivation_depth(
            result, parse_query("E('a','e')")
        )
        assert deepest.height >= observed
