"""Tests for chase provenance (multi-support records, derivation trees)."""

import pytest

from repro.errors import ChaseError
from repro.chase import (
    DEFAULT_MAX_SUPPORTS,
    ChaseConfig,
    SupportStore,
    alternative_derivations,
    chase,
    deepest_derivation,
    explain,
    explain_all,
    observed_derivation_depth,
)
from repro.lf import parse_fact, parse_query, parse_structure, parse_theory

TRANSITIVE = parse_theory("E(x,y), E(y,z) -> E(x,z)")
CHAIN = parse_structure("E(a,b)\nE(b,c)\nE(c,d)\nE(d,e)")


def traced(database, theory, depth=6):
    return chase(database, theory, ChaseConfig(max_depth=depth, trace=True))


class TestExplain:
    def test_database_fact_is_leaf(self):
        result = traced(CHAIN, TRANSITIVE)
        derivation = explain(result, parse_fact("E(a, b)"))
        assert derivation.is_leaf
        assert derivation.height == 0
        assert derivation.size == 0

    def test_derived_fact_has_tree(self):
        result = traced(CHAIN, TRANSITIVE)
        derivation = explain(result, parse_fact("E(a, c)"))
        assert not derivation.is_leaf
        assert derivation.rule_index == 0
        assert len(derivation.premises) == 2
        assert all(p.is_leaf for p in derivation.premises)

    def test_height_bounds_parallel_level(self):
        result = traced(CHAIN, TRANSITIVE)
        for fact in result.structure.facts():
            derivation = explain(result, fact)
            assert derivation.height >= result.fact_level[fact]

    def test_untraced_run_rejected(self):
        result = chase(CHAIN, TRANSITIVE, ChaseConfig(max_depth=6))
        with pytest.raises(ChaseError):
            explain(result, parse_fact("E(a, c)"))

    def test_unknown_fact_rejected(self):
        result = traced(CHAIN, TRANSITIVE)
        with pytest.raises(ChaseError):
            explain(result, parse_fact("E(e, a)"))

    def test_existential_premises_recorded(self):
        theory = parse_theory(
            """
            U(x) -> exists z. R(x,z)
            R(x,y) -> S(y)
            """
        )
        result = traced(parse_structure("U(a)"), theory)
        s_fact = next(iter(result.structure.facts_with_pred("S")))
        derivation = explain(result, s_fact)
        assert derivation.rule_index == 1
        r_premise = derivation.premises[0]
        assert r_premise.rule_index == 0
        assert r_premise.premises[0].is_leaf

    def test_render_names_rules(self):
        result = traced(CHAIN, TRANSITIVE)
        text = explain(result, parse_fact("E(a, c)")).render(TRANSITIVE)
        assert "E(a, c)" in text
        assert "rule 0" in text
        assert "database" in text

    def test_rules_used(self):
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> B(y,x)
            """
        )
        result = traced(CHAIN, theory)
        b_fact = parse_fact("B(c, a)")
        derivation = explain(result, b_fact)
        assert derivation.rules_used() == [0, 1]


class TestSupportStore:
    F = parse_fact("E(a, c)")
    P1 = (parse_fact("E(a, b)"), parse_fact("E(b, c)"))
    P2 = (parse_fact("E(a, x)"), parse_fact("E(x, c)"))

    def test_records_multiple_supports(self):
        store = SupportStore()
        assert store.record(self.F, 0, self.P1)
        assert store.record(self.F, 0, self.P2)
        assert len(store.supports(self.F)) == 2
        assert store.first(self.F).premises == self.P1

    def test_duplicate_support_dropped(self):
        store = SupportStore()
        assert store.record(self.F, 0, self.P1)
        assert not store.record(self.F, 0, self.P1)
        assert store.support_count == 1

    def test_bound_enforced_and_at_capacity(self):
        store = SupportStore(max_supports=2)
        assert not store.at_capacity(self.F)
        store.record(self.F, 0, self.P1)
        assert not store.at_capacity(self.F)
        store.record(self.F, 1, self.P1)
        assert store.at_capacity(self.F)
        assert not store.record(self.F, 2, self.P1[:1])
        assert len(store.supports(self.F)) == 2

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            SupportStore(max_supports=0)

    def test_self_support_rejected(self):
        store = SupportStore()
        loop = parse_fact("E(a, a)")
        assert not store.record(loop, 0, (loop, loop))
        assert loop not in store

    def test_dependents_reverse_index(self):
        store = SupportStore()
        store.record(self.F, 0, self.P1)
        assert store.dependents(self.P1[0]) == frozenset([self.F])
        assert store.dependents(self.F) == frozenset()

    def test_discard_forgets_supports_keeps_premise_role(self):
        store = SupportStore()
        downstream = parse_fact("E(a, d)")
        store.record(self.F, 0, self.P1)
        store.record(downstream, 0, (self.F, parse_fact("E(c, d)")))
        store.discard(self.F)
        assert self.F not in store
        assert store.dependents(self.P1[0]) == frozenset()
        # F still supports downstream: DRed rederivation needs that edge
        assert store.dependents(self.F) == frozenset([downstream])

    def test_copy_is_independent(self):
        store = SupportStore()
        store.record(self.F, 0, self.P1)
        clone = store.copy()
        clone.record(self.F, 0, self.P2)
        assert len(store.supports(self.F)) == 1
        assert len(clone.supports(self.F)) == 2

    def test_default_bound(self):
        assert SupportStore().max_supports == DEFAULT_MAX_SUPPORTS


class TestAlternativeDerivations:
    def test_all_supports_become_trees(self):
        # E(a,c) has two one-step derivations in the diamond
        db = parse_structure("E(a,b)\nE(b,c)\nE(a,x)\nE(x,c)")
        result = traced(db, TRANSITIVE)
        trees = alternative_derivations(result, parse_fact("E(a, c)"))
        assert len(trees) == 2
        premise_sets = {
            frozenset(p.fact for p in tree.premises) for tree in trees
        }
        assert len(premise_sets) == 2

    def test_database_fact_single_leaf(self):
        result = traced(CHAIN, TRANSITIVE)
        trees = alternative_derivations(result, parse_fact("E(a, b)"))
        assert len(trees) == 1 and trees[0].is_leaf

    def test_derived_without_record_raises(self):
        result = traced(CHAIN, TRANSITIVE)
        fact = parse_fact("E(a, c)")
        result.provenance.discard(fact)  # corrupt the trace
        with pytest.raises(ChaseError):
            explain(result, fact)
        with pytest.raises(ChaseError):
            alternative_derivations(result, fact)


class TestHelpers:
    def test_explain_all_limit(self):
        result = traced(CHAIN, TRANSITIVE)
        derivations = explain_all(result, "E", limit=3)
        assert len(derivations) == 3

    def test_deepest_derivation(self):
        result = traced(CHAIN, TRANSITIVE)
        deepest = deepest_derivation(result)
        assert result.fact_level[deepest.fact] == result.depth

    def test_deepest_height_at_least_observed_depth(self):
        result = traced(CHAIN, TRANSITIVE)
        deepest = deepest_derivation(result)
        observed = observed_derivation_depth(
            result, parse_query("E('a','e')")
        )
        assert deepest.height >= observed
