"""Tests for semi-naive datalog evaluation."""

import pytest

from hypothesis import HealthCheck, given, settings

from repro.errors import ChaseBudgetExceeded
from repro.chase import datalog_saturate, seminaive_saturate
from repro.lf import atom, parse_structure, parse_theory
from repro.zoo import random_edges_database, transitive_theory

TRANSITIVE = transitive_theory()


class TestCorrectness:
    def test_matches_naive_on_chain(self):
        database = parse_structure("E(a,b)\nE(b,c)\nE(c,d)\nE(d,e)")
        naive = datalog_saturate(database, TRANSITIVE).structure
        semi = seminaive_saturate(database, TRANSITIVE)
        assert naive.same_facts(semi)

    def test_matches_naive_on_random_graphs(self):
        for seed in range(5):
            database = random_edges_database(15, 30, seed=seed)
            naive = datalog_saturate(database, TRANSITIVE).structure
            semi = seminaive_saturate(database, TRANSITIVE)
            assert naive.same_facts(semi), f"seed {seed}"

    def test_multiple_rules(self):
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> B(y,x)
            B(x,y), B(y,z) -> C(x,z)
            """
        )
        database = parse_structure("E(a,b)\nE(b,c)")
        naive = datalog_saturate(database, theory).structure
        semi = seminaive_saturate(database, theory)
        assert naive.same_facts(semi)

    def test_existential_rules_ignored(self):
        theory = parse_theory(
            """
            U(x) -> exists z. R(x,z)
            E(x,y), E(y,z) -> E(x,z)
            """
        )
        database = parse_structure("U(a)\nE(a,b)\nE(b,c)")
        semi = seminaive_saturate(database, theory)
        assert not semi.facts_with_pred("R")
        assert atom("E", *parse_structure("E(a,c)").sorted_facts()[0].args) in semi

    def test_input_not_mutated(self):
        database = parse_structure("E(a,b)\nE(b,c)")
        seminaive_saturate(database, TRANSITIVE)
        assert len(database) == 2

    def test_already_saturated_noop(self):
        database = parse_structure("E(a,b)")
        semi = seminaive_saturate(database, TRANSITIVE)
        assert semi.same_facts(database)

    def test_budget(self):
        database = random_edges_database(30, 90, seed=3)
        with pytest.raises(ChaseBudgetExceeded):
            seminaive_saturate(database, TRANSITIVE, max_facts=50)


class TestPropertyAgainstNaive:
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(seed=__import__("hypothesis").strategies.integers(min_value=0, max_value=1000))
    def test_fixpoint_agreement_fuzzed(self, seed):
        database = random_edges_database(8, 14, predicates=("E", "B"), seed=seed)
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            B(x,y) -> E(y,x)
            E(x,y), B(x,y) -> Both(x,y)
            """
        )
        naive = datalog_saturate(database, theory).structure
        semi = seminaive_saturate(database, theory)
        assert naive.same_facts(semi)
