"""Regression tests for two engine fixes.

1.  ``chase_step`` replaced any *falsy-looking* config via
    ``config or ChaseConfig(max_depth=1)``; it now substitutes the
    default only for ``None``, so a passed config is always honored.
2.  Oblivious witness keys used to derive their uniqueness from the
    enclosing scope's invented-null count (an evaluation-order
    accident); they now carry an explicit per-round trigger serial.
"""

import pytest

from repro.chase import ChaseConfig, chase, chase_step
from repro.chase.engine import _oblivious_key, _witness_key
from repro.errors import NewElementEmbargoViolation
from repro.lf import Constant, Variable, parse_rule, parse_structure, parse_theory
from repro.lf.terms import NullFactory


class TestChaseStepConfig:
    def test_passed_config_is_honored(self):
        # allow_new_elements=False must make the step raise — under the
        # old `config or default` idiom a default could silently be
        # substituted and invent a witness instead.
        structure = parse_structure("E(a,b)")
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        config = ChaseConfig(max_depth=1, allow_new_elements=False)
        with pytest.raises(NewElementEmbargoViolation):
            chase_step(structure, theory, NullFactory.above(structure.domain()),
                       level=1, config=config)

    def test_oblivious_config_reaches_the_step(self):
        # b already has a successor; non-oblivious suppresses, oblivious
        # must still invent a fresh witness.
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        plain = parse_structure("E(a,b), E(b,c), E(c,a)")
        produced, invented = chase_step(
            plain, theory, NullFactory.above(plain.domain()), level=1,
            config=ChaseConfig(max_depth=1, oblivious=True),
        )
        assert len(invented) == 3  # one witness per trigger, none shared

    def test_none_config_defaults_to_one_round(self):
        structure = parse_structure("E(a,b)")
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        produced, invented = chase_step(
            structure, theory, NullFactory.above(structure.domain()), level=1
        )
        assert len(produced) == 1 and len(invented) == 1


class TestObliviousKeys:
    def test_serial_distinguishes_identical_bindings(self):
        binding = {Variable("x"): Constant("a")}
        first = _oblivious_key(0, binding, 0)
        second = _oblivious_key(0, binding, 1)
        assert first != second

    def test_key_is_independent_of_binding_insertion_order(self):
        forward = {Variable("x"): Constant("a"), Variable("y"): Constant("b")}
        backward = {Variable("y"): Constant("b"), Variable("x"): Constant("a")}
        assert _oblivious_key(2, forward, 5) == _oblivious_key(2, backward, 5)

    def test_oblivious_chase_is_deterministic(self):
        database = parse_structure("E(a,b), E(b,c)")
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        config = ChaseConfig(max_depth=3, oblivious=True)
        first = chase(database, theory, config)
        second = chase(database, theory, config)
        assert first.structure.same_facts(second.structure)
        assert first.fact_level == second.fact_level

    def test_oblivious_never_shares_witnesses(self):
        # Two rules demanding the same head atom share a witness in the
        # non-oblivious chase (the "atom" key) but not obliviously.
        database = parse_structure("E(a,b), R(a,b)")
        theory = parse_theory(
            "E(x,y) -> exists z. S(y,z)\nR(x,y) -> exists z. S(y,z)"
        )
        restricted = chase(database, theory, ChaseConfig(max_depth=1))
        oblivious = chase(database, theory,
                          ChaseConfig(max_depth=1, oblivious=True))
        assert len(restricted.structure.facts_with_pred("S")) == 1
        assert len(oblivious.structure.facts_with_pred("S")) == 2


class TestWitnessKeys:
    def test_atom_shaped_rules_share_a_key(self):
        rule_a = parse_rule("E(x,y) -> exists z. S(y,z)")
        rule_b = parse_rule("R(u,v) -> exists w. S(v,w)")
        binding_a = {Variable("x"): Constant("a"), Variable("y"): Constant("b")}
        binding_b = {Variable("u"): Constant("c"), Variable("v"): Constant("b")}
        assert _witness_key(rule_a, 0, binding_a) == _witness_key(rule_b, 1, binding_b)

    def test_other_shapes_key_per_rule(self):
        rule = parse_rule("E(x,y) -> exists z. S(z,y)")  # witness first
        binding = {Variable("x"): Constant("a"), Variable("y"): Constant("b")}
        key = _witness_key(rule, 3, binding)
        assert key[0] == "rule" and key[1] == 3
