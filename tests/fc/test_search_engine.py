"""Tests for the incremental search engine (PR: perf search rebuild).

Covers the engine-specific surface: :class:`SearchConfig`, frontier
heuristics, the copy-on-write/saturation counters, canonical dedup
(including the alpha-renaming regression), budget policies, and parity
with :func:`legacy_search` on fixed workloads.
"""

import pytest

from repro.chase import is_model
from repro.config import OnBudget
from repro.errors import ModelSearchExhausted
from repro.lf import parse_query, parse_structure, parse_theory, satisfies
from repro.fc import (
    SEARCH_TIMING_FIELDS,
    SearchConfig,
    SearchHeuristic,
    SearchStats,
    every_finite_model_satisfies,
    legacy_search,
    search_finite_model,
)
from repro.zoo import section55_database, section55_query, section55_theory

LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")
DB = parse_structure("E(a,b)")

#: A theory whose search tree contains two branches that differ *only*
#: in the names of invented nulls: the A-rule invents two exchangeable
#: witnesses n1, n2 for E(a,·), and the B-rule's reuse branches
#: F(a,n1) / F(a,n2) are then isomorphic over the constants.
FORK = parse_theory(
    """
    A(x) -> exists y, z. E(x,y), E(x,z)
    B(x) -> exists w. F(x,w)
    """
)
FORK_DB = parse_structure("A(a), B(a)")
FORK_FORBIDDEN = parse_query("E(x,y), F(x,z)")


class TestCanonicalDedupRegression:
    """Two branches differing only in invented null names must count as
    one node (the satellite regression of this PR)."""

    def test_alpha_variant_branches_collapse(self):
        on = search_finite_model(
            FORK_DB,
            FORK,
            forbidden=FORK_FORBIDDEN,
            config=SearchConfig(max_elements=4, max_nodes=5000),
        )
        off = search_finite_model(
            FORK_DB,
            FORK,
            forbidden=FORK_FORBIDDEN,
            config=SearchConfig(
                max_elements=4, max_nodes=5000, canonical_dedup=False
            ),
        )
        # The raw engine visits F(a,n1) and F(a,n2) as two nodes; the
        # canonical engine counts the second as a duplicate.
        assert on.stats.duplicates >= 1
        assert on.stats.nodes < off.stats.nodes
        assert on.stats.nodes + on.stats.duplicates >= off.stats.nodes
        # Dedup must not change the verdict, nor exhaustiveness.
        assert on.found == off.found
        assert on.stats.exhausted and off.stats.exhausted

    def test_legacy_also_visits_alpha_variants(self):
        legacy = legacy_search(
            FORK_DB, FORK, forbidden=FORK_FORBIDDEN, max_elements=4
        )
        on = search_finite_model(
            FORK_DB,
            FORK,
            forbidden=FORK_FORBIDDEN,
            config=SearchConfig(max_elements=4, max_nodes=5000),
        )
        assert on.stats.nodes < legacy.stats.nodes
        assert on.found == legacy.found


class TestSearchConfig:
    def test_defaults(self):
        config = SearchConfig()
        assert config.max_elements == 10
        assert config.heuristic is SearchHeuristic.DFS
        assert config.canonical_dedup is True

    def test_heuristic_accepts_strings(self):
        config = SearchConfig(heuristic="smallest-domain")
        assert config.heuristic is SearchHeuristic.SMALLEST_DOMAIN

    def test_invalid_heuristic_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(heuristic="depth-charge")

    def test_with_overrides(self):
        config = SearchConfig(max_elements=4)
        bumped = config.with_overrides(max_nodes=7)
        assert bumped.max_nodes == 7
        assert bumped.max_elements == 4
        assert config.max_nodes == 50_000

    def test_config_wins_over_keyword_arguments(self):
        config = SearchConfig(max_elements=3)
        outcome = search_finite_model(DB, LINEAR, max_elements=99, config=config)
        assert outcome.found
        assert outcome.model.domain_size <= 3


class TestHeuristics:
    @pytest.mark.parametrize(
        "heuristic", ["dfs", "smallest-domain", "fewest-violations"]
    )
    def test_all_heuristics_find_a_model(self, heuristic):
        outcome = search_finite_model(
            DB,
            LINEAR,
            config=SearchConfig(max_elements=5, heuristic=heuristic),
        )
        assert outcome.found
        assert is_model(outcome.model, LINEAR)
        assert outcome.stats.heuristic == heuristic

    @pytest.mark.parametrize(
        "heuristic", ["dfs", "smallest-domain", "fewest-violations"]
    )
    def test_exhaustive_verdicts_agree_across_heuristics(self, heuristic):
        outcome = search_finite_model(
            DB,
            LINEAR,
            forbidden=parse_query("E(x,y)"),
            config=SearchConfig(max_elements=4, heuristic=heuristic),
        )
        assert not outcome.found
        assert outcome.stats.exhausted

    def test_smallest_domain_finds_minimal_closure(self):
        outcome = search_finite_model(
            DB,
            LINEAR,
            config=SearchConfig(max_elements=8, heuristic="smallest-domain"),
        )
        assert outcome.found
        assert outcome.model.domain_size == 2


class TestBudgets:
    def test_node_budget_clears_exhausted(self):
        outcome = search_finite_model(
            DB,
            LINEAR,
            forbidden=parse_query("E(x,x)"),
            config=SearchConfig(max_elements=3, max_nodes=1),
        )
        assert not outcome.stats.exhausted

    def test_node_budget_raise_policy(self):
        with pytest.raises(ModelSearchExhausted):
            search_finite_model(
                DB,
                LINEAR,
                forbidden=parse_query("E(x,x)"),
                config=SearchConfig(
                    max_elements=3, max_nodes=1, on_budget=OnBudget.RAISE
                ),
            )

    def test_saturation_budget_prunes_state(self):
        # The transitive-closure rule saturates quadratically: a tiny
        # max_facts budget prunes every branch at materialisation.
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> E(x,z)
            """
        )
        outcome = search_finite_model(
            parse_structure("E(a,b)"),
            theory,
            forbidden=parse_query("E(x,x)"),
            config=SearchConfig(max_elements=6, max_facts=4),
        )
        assert outcome.stats.saturation_pruned >= 1
        assert not outcome.stats.exhausted


class TestStats:
    def test_cow_counters(self):
        outcome = search_finite_model(
            FORK_DB,
            FORK,
            forbidden=FORK_FORBIDDEN,
            config=SearchConfig(max_elements=4),
        )
        stats = outcome.stats
        assert stats.engine == "delta"
        assert 0 < stats.states_materialised <= stats.states_created
        assert stats.canonical_keys > 0
        assert stats.frontier_peak >= 1

    def test_canonical_keys_zero_when_dedup_off(self):
        outcome = search_finite_model(
            FORK_DB,
            FORK,
            forbidden=FORK_FORBIDDEN,
            config=SearchConfig(max_elements=4, canonical_dedup=False),
        )
        assert outcome.stats.canonical_keys == 0

    def test_as_dict_strips_timings(self):
        stats = SearchStats(nodes=3, wall_ms=1.25)
        with_timings = stats.as_dict()
        without = stats.as_dict(timings=False)
        for field in SEARCH_TIMING_FIELDS:
            assert field in with_timings
            assert field not in without
        assert without["nodes"] == 3

    def test_render_is_hash_prefixed(self):
        stats = SearchStats(nodes=3)
        lines = stats.render().splitlines()
        assert lines
        assert all(line.startswith("#") for line in lines)

    def test_saturation_counters_populated(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y) -> B(y,x)
            """
        )
        outcome = search_finite_model(
            parse_structure("E(a,b)"), theory, config=SearchConfig(max_elements=4)
        )
        assert outcome.found
        assert outcome.stats.saturation_new_facts > 0
        assert outcome.stats.saturation_rounds > 0


class TestLegacyParity:
    """Fixed-example parity; the hypothesis suite fuzzes the same
    contract in tests/property/test_search_parity.py."""

    CASES = [
        (LINEAR, DB, None, 5),
        (LINEAR, DB, parse_query("E(x,x)"), 5),
        (LINEAR, DB, parse_query("E(x,y)"), 4),
        (FORK, FORK_DB, FORK_FORBIDDEN, 4),
    ]

    @pytest.mark.parametrize("theory,db,forbidden,me", CASES)
    def test_same_verdict_and_valid_models(self, theory, db, forbidden, me):
        new = search_finite_model(
            db, theory, forbidden=forbidden, config=SearchConfig(max_elements=me)
        )
        old = legacy_search(db, theory, forbidden=forbidden, max_elements=me)
        assert new.found == old.found
        for outcome in (new, old):
            if outcome.found:
                assert is_model(outcome.model, theory)
                assert outcome.model.contains_structure(db)
                if forbidden is not None:
                    assert not satisfies(outcome.model, forbidden)

    def test_section55_parity(self):
        theory, database = section55_theory(), section55_database()
        phi = section55_query().boolean()
        verdict, stats = every_finite_model_satisfies(
            database, theory, phi, max_elements=6, max_nodes=30_000
        )
        legacy = legacy_search(
            database, theory, forbidden=phi, max_elements=6, max_nodes=30_000
        )
        assert verdict
        assert stats.exhausted
        assert not legacy.found
        assert legacy.stats.exhausted

    def test_legacy_stats_engine_marker(self):
        old = legacy_search(DB, LINEAR, max_elements=4)
        assert old.stats.engine == "legacy"
        assert old.stats.states_created >= old.stats.nodes - 1
