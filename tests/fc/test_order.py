"""Tests for the ordering-conjecture machinery (Section 5.5)."""

from repro.lf import parse_query, parse_structure, parse_theory
from repro.fc import (
    default_candidates,
    find_ordering,
    ordering_implies_query,
    search_finite_model,
)
from repro.zoo import (
    remark3_theory,
    section55_database,
    section55_query,
    section55_theory,
)


class TestCandidates:
    def test_pool_covers_binary_predicates(self):
        theory = parse_theory("E(x,y) -> exists z. R(y,z)")
        pool = default_candidates(theory)
        predicates = {a.pred for q in pool for a in q.atoms}
        assert predicates == {"E", "R"}

    def test_compositions_included(self):
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        pool = default_candidates(theory, max_length=2)
        assert any(len(q.atoms) == 2 for q in pool)


class TestFindOrdering:
    def test_successor_transitivity_defines_ordering(self):
        """The natural non-FC theory: E itself orders the chase."""
        witness = find_ordering(
            remark3_theory(), parse_structure("E(a,b)"), min_size=5
        )
        assert witness is not None
        assert witness.size >= 5
        assert {a.pred for a in witness.query.atoms} == {"E"}

    def test_section55_defines_no_small_ordering(self):
        """The paper's point: this non-FC theory defines no ordering
        (within the bounded candidate pool and chase truncation)."""
        witness = find_ordering(
            section55_theory(), section55_database(), min_size=5
        )
        assert witness is None

    def test_plain_chain_not_ordered_without_transitivity(self):
        # a successor chain is not *totally* ordered by E (non-adjacent
        # elements are incomparable), so no witness of size ≥ 3
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        witness = find_ordering(theory, parse_structure("E(a,b)"), min_size=3)
        assert witness is None or len(witness.query.atoms) > 1


class TestOrderingImpliesQuery:
    def test_finite_models_of_ordering_theory_satisfy_reflexive(self):
        """The true half of Conjecture 2, on successor+transitivity."""
        theory = remark3_theory()
        database = parse_structure("E(a,b)")
        witness = find_ordering(theory, database, min_size=5)
        assert witness is not None
        outcome = search_finite_model(database, theory, max_elements=5)
        assert outcome.found
        assert ordering_implies_query(witness, outcome.model)
