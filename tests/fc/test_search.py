"""Tests for the finite-model search (repro.fc.search)."""

import pytest

from repro.chase import is_model
from repro.errors import ModelSearchExhausted
from repro.lf import parse_query, parse_structure, parse_theory, satisfies
from repro.fc import (
    every_finite_model_satisfies,
    find_counter_model,
    search_finite_model,
)
from repro.zoo import section55_database, section55_query, section55_theory

LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")
DB = parse_structure("E(a,b)")


class TestBasicSearch:
    def test_finds_smallest_loop_closure(self):
        outcome = search_finite_model(DB, LINEAR, max_elements=5)
        assert outcome.found
        assert is_model(outcome.model, LINEAR)
        assert outcome.model.contains_structure(DB)
        # reuse-first exploration: the 2-element closure E(b,a) or E(b,b)
        assert outcome.model.domain_size <= 3

    def test_respects_forbidden_query(self):
        loop = parse_query("E(x,x)")
        outcome = search_finite_model(DB, LINEAR, forbidden=loop, max_elements=5)
        assert outcome.found
        assert not satisfies(outcome.model, loop)
        assert is_model(outcome.model, LINEAR)

    def test_datalog_saturation_inside_search(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y) -> B(y,x)
            """
        )
        outcome = search_finite_model(DB, theory, max_elements=4)
        assert outcome.found
        assert is_model(outcome.model, theory)
        assert outcome.model.facts_with_pred("B")

    def test_already_model_returned_immediately(self):
        triangle = parse_structure("E(a,b)\nE(b,c)\nE(c,a)")
        outcome = search_finite_model(triangle, LINEAR, max_elements=4)
        assert outcome.found
        assert outcome.model.same_facts(triangle)
        assert outcome.stats.nodes == 1

    def test_node_budget(self):
        outcome = search_finite_model(
            DB, LINEAR, forbidden=parse_query("E(x,y)"), max_elements=3, max_nodes=5
        )
        # E(a,b) itself satisfies E(x,y): pruned at the root, exhausted
        assert not outcome.found
        assert outcome.stats.pruned_by_query >= 1

    def test_find_counter_model_raises_when_impossible(self):
        # every model of LINEAR ⊇ {E(a,b)} satisfies "an edge exists"
        with pytest.raises(ModelSearchExhausted):
            find_counter_model(DB, LINEAR, parse_query("E(x,y)"), max_elements=4)

    def test_find_counter_model_positive(self):
        model = find_counter_model(DB, LINEAR, parse_query("E(x,x)"), max_elements=5)
        assert not satisfies(model, parse_query("E(x,x)"))


class TestSection55:
    """The paper's non-FC theory: the search *proves* (within bounds)
    that every finite model satisfies Φ = E(x,y) ∧ R(y,y)."""

    def test_every_finite_model_satisfies_phi(self):
        theory, database = section55_theory(), section55_database()
        phi = section55_query().boolean()
        verdict, stats = every_finite_model_satisfies(
            database, theory, phi, max_elements=6, max_nodes=30_000
        )
        assert verdict
        assert stats.exhausted  # the bounded claim is proved, not sampled

    def test_some_finite_model_exists_at_all(self):
        theory, database = section55_theory(), section55_database()
        outcome = search_finite_model(database, theory, max_elements=6)
        assert outcome.found
        assert is_model(outcome.model, theory)

    def test_phi_true_in_found_models(self):
        theory, database = section55_theory(), section55_database()
        phi = section55_query().boolean()
        outcome = search_finite_model(database, theory, max_elements=6)
        assert satisfies(outcome.model, phi)

    def test_fc_theory_contrast(self):
        """Contrast: on the FC theory LINEAR the analogous search *does*
        find a model avoiding the loop."""
        verdict, _stats = every_finite_model_satisfies(
            DB, LINEAR, parse_query("E(x,x)"), max_elements=5
        )
        assert not verdict


class TestCrossCheckWithPipeline:
    def test_search_agrees_with_theorem2(self):
        """Both routes produce a counter-model for the same (T, D, Q)."""
        from repro.core import build_finite_counter_model

        query = parse_query("E(x,x)")
        pipeline_result = build_finite_counter_model(LINEAR, DB, query)
        searched = find_counter_model(DB, LINEAR, query, max_elements=6)
        for model in (pipeline_result.model, searched):
            assert is_model(model, LINEAR)
            assert model.contains_structure(DB)
            assert not satisfies(model, query)
