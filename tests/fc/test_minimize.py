"""Tests for counter-model minimisation."""

from repro.chase import is_model
from repro.core import build_finite_counter_model
from repro.fc import minimize_model, search_finite_model
from repro.lf import Null, atom, parse_query, parse_structure, parse_theory, satisfies

LINEAR = parse_theory("E(x,y) -> exists z. E(y,z)")
DB = parse_structure("E(a,b)")


class TestMinimize:
    def test_padding_removed(self):
        # a valid 2-cycle model plus an irrelevant padded component
        model = parse_structure("E(a,b)\nE(b,a)")
        padded = model.copy()
        padded.add_fact(atom("E", Null(50), Null(51)))
        padded.add_fact(atom("E", Null(51), Null(50)))
        small = minimize_model(padded, LINEAR, DB, forbidden=parse_query("E(x,x)"))
        assert small.domain_size == 2
        assert small.same_facts(model)

    def test_redundant_fact_removed(self):
        model = parse_structure("E(a,b)\nE(b,a)\nE(a,a)")
        small = minimize_model(model, LINEAR, DB)
        # E(a,a) is redundant: a already has a successor
        assert len(small) == 2

    def test_certificate_preserved(self):
        query = parse_query("E(x,x)")
        result = build_finite_counter_model(LINEAR, DB, query)
        small = minimize_model(result.model, LINEAR, DB, forbidden=query.boolean())
        assert small.domain_size <= result.model_size
        assert is_model(small, LINEAR)
        assert small.contains_structure(DB)
        assert not satisfies(small, query.boolean())

    def test_database_facts_never_dropped(self):
        model = parse_structure("E(a,b)\nE(b,a)")
        small = minimize_model(model, LINEAR, DB)
        assert small.contains_structure(DB)

    def test_no_fact_pass(self):
        model = parse_structure("E(a,b)\nE(b,a)\nE(a,a)")
        small = minimize_model(model, LINEAR, DB, drop_facts=False)
        assert len(small) == 3  # only whole-element drops attempted

    def test_search_plus_minimize(self):
        theory = parse_theory(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y) -> B(y)
            """
        )
        outcome = search_finite_model(DB, theory, max_elements=6)
        small = minimize_model(outcome.model, theory, DB)
        assert is_model(small, theory)
        assert small.domain_size <= outcome.model.domain_size
