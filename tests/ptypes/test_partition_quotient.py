"""Tests for the ≡_n partition and the quotient M_n(C) (Def. 4, 5, Lemma 1)."""

import pytest

from repro.lf import Constant, Null, Structure, atom
from repro.ptypes import (
    TypePartition,
    equivalent,
    induced_projection,
    is_homomorphic_image,
    projections_compatible,
    quotient,
)

a, b = Constant("a"), Constant("b")
n = [Null(i) for i in range(40)]


def chain(length, start=0):
    return Structure(atom("E", n[start + i], n[start + i + 1]) for i in range(length))


class TestPartition:
    def test_partition_refines_with_n(self):
        s = chain(12)
        sizes = [len(TypePartition(s, size).classes()) for size in (1, 2, 3)]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1  # all elements alike at n=1

    def test_partition_matches_pairwise_equivalence(self):
        s = chain(8)
        partition = TypePartition(s, 2)
        for left in s.domain():
            for right in s.domain():
                assert partition.same_class(left, right) == equivalent(s, left, right, 2)

    def test_constants_singletons(self):
        s = Structure([atom("E", a, n[0]), atom("E", b, n[1]), atom("E", n[0], n[1])])
        partition = TypePartition(s, 1)
        assert partition.class_index(a) != partition.class_index(b)

    def test_restricted_elements(self):
        s = chain(10)
        interior = [n[i] for i in range(3, 8)]
        partition = TypePartition(s, 2, elements=interior)
        classes = partition.classes()
        members = {e for group in classes for e in group}
        assert members == set(interior)

    def test_restricted_partition_uses_full_structure_types(self):
        s = chain(10)
        # n3..n7 are all interior chain elements; within the full chain
        # they all have in+out edges, so at n=2 they are one class.
        partition = TypePartition(s, 2, elements=[n[i] for i in range(3, 8)])
        assert len(partition.classes()) == 1

    def test_len(self):
        s = chain(6)
        assert len(TypePartition(s, 2)) == 3


class TestQuotient:
    def test_example3_quotient_shape(self):
        """Example 3: M_n of an (uncolored) chain is a chain with a loop."""
        s = chain(12)
        q = quotient(s, 3)
        m = q.structure
        loops = [f for f in m.facts_with_pred("E") if f.args[0] == f.args[1]]
        assert len(loops) == 1

    def test_minimal_relations(self):
        s = chain(8)
        assert is_homomorphic_image(quotient(s, 2))

    def test_projection_total_and_constantfixing(self):
        s = Structure([atom("E", a, n[0]), atom("E", n[0], n[1])])
        q = quotient(s, 2)
        assert q.project(a) == a
        assert set(q.projection) == set(s.domain())

    def test_projection_is_homomorphism(self):
        s = chain(8)
        q = quotient(s, 2)
        for fact in s.facts():
            assert q.project_fact(fact) in q.structure

    def test_fiber(self):
        s = chain(8)
        q = quotient(s, 2)
        image = q.project(n[3])
        assert n[3] in q.fiber(image)
        assert q.project(n[4]) == image  # middle elements merge at n=2

    def test_lemma1_compatibility(self):
        s = chain(12)
        finer = quotient(s, 3)
        coarser = quotient(s, 2)
        assert projections_compatible(finer, coarser)

    def test_lemma1_induced_projection(self):
        s = chain(12)
        finer = quotient(s, 3)
        coarser = quotient(s, 2)
        mapping = induced_projection(finer, coarser)
        for element in s.domain():
            assert mapping[finer.project(element)] == coarser.project(element)

    def test_induced_projection_is_homomorphism(self):
        """Lemma 1 second claim: M_{n-1} is a homomorphic image of M_n."""
        s = chain(12)
        finer = quotient(s, 3)
        coarser = quotient(s, 2)
        mapping = induced_projection(finer, coarser)
        for fact in finer.structure.facts():
            assert fact.substitute(mapping) in coarser.structure

    def test_incompatible_quotients_rejected(self):
        left = quotient(chain(4), 2)
        right = quotient(chain(4, start=10), 2)
        with pytest.raises(ValueError):
            projections_compatible(left, right)

    def test_restricted_quotient_drops_frontier_facts(self):
        s = chain(10)
        interior = [n[i] for i in range(0, 6)]
        q = quotient(s, 2, elements=interior)
        assert q.structure.domain_size <= len(interior)
        # no fact of the quotient involves an element outside the interior
        assert all(e in q.projection for e in interior)
