"""Tests for positive n-types (Definition 3/4) — repro.ptypes.ptype."""

import pytest

from repro.lf import Constant, Null, Structure, Variable, atom, cq, parse_structure
from repro.ptypes import (
    boolean_type_queries,
    equivalent,
    less_equal,
    ptp_as_query_set,
    ptp_contains,
    type_queries,
    type_subsumed,
    types_equal,
)

a, b, c = Constant("a"), Constant("b"), Constant("c")
n = [Null(i) for i in range(20)]


def chain(length):
    """A chain of nulls n0 -> n1 -> ... (no constants)."""
    return Structure(atom("E", n[i], n[i + 1]) for i in range(length))


class TestTypeQueries:
    def test_n1_queries_about_element_alone(self):
        s = Structure([atom("E", n[0], n[1]), atom("U", n[0])])
        queries = type_queries(s, n[0], 1)
        # only atoms on {n0} (+ constants): the unary atom
        assert any("U" in str(q) for q in queries)
        assert not any("E" in str(q) for q in queries)

    def test_loop_visible_at_n1(self):
        s = Structure([atom("E", n[0], n[0])])
        queries = type_queries(s, n[0], 1)
        assert any("E" in str(q) for q in queries)

    def test_constants_included_automatically(self):
        s = Structure([atom("E", a, n[0])])
        queries = type_queries(s, n[0], 1)
        # the atom E(a, y) has one variable: present at n=1
        assert any("E" in str(q) for q in queries)

    def test_constant_element_gets_equality(self):
        s = Structure([atom("E", a, b)])
        queries = type_queries(s, a, 1)
        assert any(at.is_equality for q in queries for at in q.atoms)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            type_queries(chain(2), n[0], 0)

    def test_queries_true_at_origin(self):
        s = chain(5)
        for size in (1, 2, 3):
            for query in type_queries(s, n[2], size):
                assert ptp_contains(s, n[2], query)

    def test_relation_restriction(self):
        s = Structure([atom("E", n[0], n[1]), atom("K", n[0])])
        queries = type_queries(s, n[0], 2, relation_names=["E"])
        assert not any("K" in str(q) for q in queries)


class TestOrders:
    def test_chain_middle_elements_equivalent(self):
        s = chain(10)
        # middle elements: same type at n=2 (have both in and out edges)
        assert equivalent(s, n[3], n[6], 2)

    def test_chain_endpoints_differ_at_n2(self):
        s = chain(10)
        assert not equivalent(s, n[0], n[5], 2)   # n0 has no predecessor
        assert not equivalent(s, n[10], n[5], 2)  # n10 has no successor

    def test_chain_all_equal_at_n1(self):
        s = chain(10)
        assert equivalent(s, n[0], n[10], 1)

    def test_distance_from_start_matters(self):
        s = chain(10)
        # n1 has an incoming path of length 1 but not 2: differs from n2 at n=3
        assert not equivalent(s, n[1], n[2], 3)
        assert equivalent(s, n[1], n[2], 2)

    def test_less_equal_strict_direction(self):
        s = chain(10)
        # everything true at the start is true in the middle, not conversely
        assert less_equal(s, n[0], n[5], 3)
        assert not less_equal(s, n[5], n[0], 3)

    def test_constants_never_merge(self):
        s = Structure([atom("E", a, n[0]), atom("E", b, n[1])])
        assert not equivalent(s, a, b, 1)

    def test_example2_types(self):
        """Example 2 of the paper: Chase vs triangle M' at sizes 2 and 3.

        We state it at the element ``b`` (which has a predecessor in
        both structures, like every element the quotient identifies);
        at the root ``a`` of the chase even ``ptp_2`` differs, since the
        triangle gives ``a`` an incoming edge the chain's root lacks.
        Elements are anonymous — the paper's Θ contains only E and U.
        """
        # chase: b0 -> b1 -> b2 -> ...   (b1 plays the paper's "a"→"b" edge)
        chase_chain = Structure(atom("E", n[i], n[i + 1]) for i in range(9))
        # triangle on anonymous elements t0 -> t1 -> t2 -> t0
        t = [Null(100), Null(101), Null(102)]
        triangle = Structure(
            [atom("E", t[0], t[1]), atom("E", t[1], t[2]), atom("E", t[2], t[0])]
        )
        # ptp_2 of a mid-chain element agrees with the triangle...
        assert types_equal(chase_chain, n[4], triangle, t[1], 2)
        # ...but ptp_3 differs: the triangle satisfies the 3-cycle.
        assert not types_equal(chase_chain, n[4], triangle, t[1], 3)
        # At the chase's root even ptp_2 differs (no incoming edge).
        assert not types_equal(chase_chain, n[0], triangle, t[0], 2)

    def test_cross_structure_subsumption(self):
        small = chain(3)
        big = chain(6)
        # middle of the small chain embeds into the big chain's middle
        assert type_subsumed(small, n[1], big, n[3], 2)


class TestBooleanQueries:
    def test_zero_budget(self):
        assert boolean_type_queries(chain(3), 0) == []

    def test_sentences_true_in_structure(self):
        s = chain(4)
        for sentence in boolean_type_queries(s, 3):
            assert s.satisfies(sentence)

    def test_detects_new_sentaccording_to_loop(self):
        looped = Structure([atom("E", n[0], n[0])])
        sentences = boolean_type_queries(looped, 1)
        plain = chain(3)
        assert any(not plain.satisfies(q) for q in sentences)

    def test_boolean_part_matters_cross_structure(self):
        """A disconnected difference invisible to anchored queries."""
        # source has an extra disconnected loop; target does not
        source = Structure([atom("E", n[0], n[1]), atom("R", n[5], n[5])])
        target = Structure([atom("E", n[0], n[1])])
        # anchored (connected) queries at n0 agree up to n=2...
        queries = type_queries(source, n[0], 2)
        assert all(
            target.satisfies(q, {q.free[0]: n[0]}) for q in queries
        )
        # ...but the full cross-structure check sees the loop
        assert not type_subsumed(source, n[0], target, n[0], 2)


class TestGeneratorSets:
    def test_equal_sets_imply_equivalence(self):
        s = chain(10)
        left = ptp_as_query_set(s, n[4], 2)
        right = ptp_as_query_set(s, n[5], 2)
        assert left == right
        assert equivalent(s, n[4], n[5], 2)

    def test_sets_differ_for_distinct_types(self):
        s = chain(10)
        assert ptp_as_query_set(s, n[0], 2) != ptp_as_query_set(s, n[5], 2)
