"""Memoisation of the brute-force type-query enumerator."""

from repro.lf import Constant
from repro.ptypes import clear_type_query_cache, enumerate_type_queries
from repro.ptypes import bruteforce


def setup_function(_fn):
    clear_type_query_cache()


def test_repeat_enumeration_is_cached():
    relations = {"E": 2, "U": 1}
    constants = [Constant("a")]
    first = list(enumerate_type_queries(relations, constants, 2, 2))
    assert bruteforce._TYPE_QUERY_CACHE
    second = list(enumerate_type_queries(relations, constants, 2, 2))
    assert first == second
    assert len(bruteforce._TYPE_QUERY_CACHE) == 1


def test_cache_key_distinguishes_parameters():
    relations = {"E": 2}
    constants = [Constant("a")]
    list(enumerate_type_queries(relations, constants, 2, 1))
    list(enumerate_type_queries(relations, constants, 2, 2))
    list(enumerate_type_queries(relations, constants, 2, 2, include_equalities=False))
    assert len(bruteforce._TYPE_QUERY_CACHE) == 3


def test_constant_order_does_not_split_cache():
    relations = {"E": 2}
    a, b = Constant("a"), Constant("b")
    first = list(enumerate_type_queries(relations, [a, b], 2, 1))
    second = list(enumerate_type_queries(relations, [b, a], 2, 1))
    assert first == second
    assert len(bruteforce._TYPE_QUERY_CACHE) == 1


def test_generator_contract_preserved():
    # Callers may consume lazily / partially; the memo must not break
    # the iterator protocol or mutate across consumers.
    relations = {"E": 2}
    constants = [Constant("a")]
    gen = enumerate_type_queries(relations, constants, 2, 1)
    head = next(gen)
    rest = list(gen)
    full = list(enumerate_type_queries(relations, constants, 2, 1))
    assert [head, *rest] == full


def test_clear_cache():
    list(enumerate_type_queries({"E": 2}, [], 2, 1))
    assert bruteforce._TYPE_QUERY_CACHE
    clear_type_query_cache()
    assert not bruteforce._TYPE_QUERY_CACHE
