"""Documentation consistency: the docs must not drift from the code.

Parses DESIGN.md, EXPERIMENTS.md, README.md and docs/paper_map.md for
references to modules, functions, benchmark files and example scripts,
and checks that each one actually exists.  Cheap insurance against the
most common open-source rot.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "paper_map.md",
]

_MODULE_REF = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)(?:\.([A-Za-z_][A-Za-z_0-9]*))?`")
_BENCH_REF = re.compile(r"bench_[a-z0-9_]+\.py")
_EXAMPLE_REF = re.compile(r"`([a-z_]+\.py)`")


def _doc_text():
    return "\n".join(path.read_text() for path in DOCS if path.exists())


class TestDocsExist:
    def test_all_doc_files_present(self):
        for path in DOCS:
            assert path.exists(), path


class TestModuleReferences:
    def test_referenced_modules_import(self):
        text = _doc_text()
        seen = set()
        for match in _MODULE_REF.finditer(text):
            dotted, attribute = match.group(1), match.group(2)
            if (dotted, attribute) in seen:
                continue
            seen.add((dotted, attribute))
            # the dotted part may itself end in an attribute (e.g.
            # `repro.core.build_finite_counter_model`): try the module,
            # then fall back to importing the parent and getattr.
            try:
                module = importlib.import_module(dotted)
            except ModuleNotFoundError:
                parent, _, leaf = dotted.rpartition(".")
                module = importlib.import_module(parent)
                assert hasattr(module, leaf), f"{dotted} referenced in docs"
                module = getattr(module, leaf)
            if attribute:
                assert hasattr(module, attribute), (
                    f"{dotted}.{attribute} referenced in docs"
                )
        assert seen, "no module references found — regex broken?"


class TestBenchmarkReferences:
    def test_referenced_bench_files_exist(self):
        text = _doc_text()
        names = set(_BENCH_REF.findall(text))
        assert names
        for name in names:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_file_is_documented(self):
        text = _doc_text()
        for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert path.name in text, f"{path.name} not mentioned in the docs"


class TestExampleReferences:
    def test_readme_example_table_matches_directory(self):
        readme = (ROOT / "README.md").read_text()
        documented = {
            name for name in _EXAMPLE_REF.findall(readme)
            if (ROOT / "examples" / name).exists() or name.endswith(".py")
        }
        on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
        missing = {n for n in documented if n not in on_disk and not n.startswith("bench")}
        # every documented example exists
        assert not {n for n in missing if "/" not in n and n in readme and
                    (ROOT / "examples" / n).suffix == ".py" and n not in on_disk}, missing

    def test_every_example_runs_has_main(self):
        for path in sorted((ROOT / "examples").glob("*.py")):
            text = path.read_text()
            assert "def main()" in text and "__main__" in text, path.name
