"""Integration: the paper's narrative, executed end to end.

Each test tells one of the paper's stories with the real machinery —
these are the executable versions of the prose arguments in Sections
2.1, 3.2–3.3, and 5.5.
"""

import pytest

from repro.chase import ChaseConfig, certain_boolean, chase, chase_with_embargo, datalog_saturate, is_model
from repro.coloring import conservativity_report, natural_coloring
from repro.errors import NewElementEmbargoViolation
from repro.lf import parse_query, parse_structure, satisfies, structure_homomorphism
from repro.ptypes import TypePartition, quotient
from repro.skeleton import lemma3_report, skeleton, verify_lemma4
from repro.vtdag import is_vtdag
from repro.zoo import (
    example1_database,
    example1_theory,
    example1_triangle,
    example7_database,
    example7_theory,
    example9_database,
    example9_theory,
    remark3_database,
    remark3_theory,
    section55_database,
    section55_query,
    section55_theory,
)


class TestSection21Story:
    """Why the naive homomorphic image fails (Section 2.1 / Example 1)."""

    def test_triangle_is_homomorphic_image_of_chase(self):
        chased = chase(example1_database(), example1_theory(), max_depth=6)
        mapping = structure_homomorphism(chased.structure, example1_triangle())
        assert mapping is not None

    def test_image_not_model_chase_diverges(self):
        triangle = example1_triangle()
        assert not is_model(triangle, example1_theory())
        rechased = chase(triangle, example1_theory(), max_depth=6)
        assert not rechased.saturated
        assert rechased.structure.facts_with_pred("U")

    def test_chase_never_has_u(self):
        chased = chase(example1_database(), example1_theory(), max_depth=8)
        assert not chased.structure.facts_with_pred("U")


class TestSection32Story:
    """The skeleton: simple enough to be a VTDAG, rich enough to rebuild
    the chase (Definitions 12, Lemmas 3 and 4)."""

    def test_skeleton_properties_all_examples(self):
        for theory, database in (
            (example1_theory(), example1_database()),
            (example7_theory(), example7_database()),
            (example9_theory(), example9_database()),
        ):
            result = skeleton(database, theory, max_depth=4)
            report = lemma3_report(result)
            assert report.all_hold, report.details
            assert is_vtdag(result.structure)
            verdict, reason = verify_lemma4(result, theory)
            assert verdict, reason


class TestSection33Story:
    """Example 8: datalog saturation on the quotient derives atoms that
    are not projections of chase atoms, yet needs no new elements
    (Lemma 5)."""

    def test_example8_new_datalog_derivations(self):
        theory, database = example7_theory(), example7_database()
        chased = chase(database, theory, max_depth=14)
        skel = skeleton(database, theory, max_depth=14)
        colored = natural_coloring(skel.structure, 3)
        from repro.ptypes.partition import TypePartition
        from repro.lf import Null

        # interior deep enough that two same-hue same-type chain levels
        # both fit (hue period 5 for m = 3: levels 5 and 10 merge)
        interior = {
            e for e in skel.structure.domain()
            if not isinstance(e, Null) or e.level <= 10
        }
        partition = TypePartition(colored.structure, 3, elements=interior)
        quotiented = quotient(colored.structure, 3, partition=partition)
        stripped = quotiented.structure.restrict_signature(
            colored.base_relations
        )
        # q_eta(Chase): the projection of chase facts over the interior
        projected_flesh = {
            fact.substitute(quotiented.projection)
            for fact in chased.structure.facts_with_pred("R")
            if all(arg in quotiented.projection for arg in fact.args)
        }
        # the saturation derives R-atoms beyond the projections
        saturated = datalog_saturate(stripped, theory).structure
        new_atoms = saturated.facts_with_pred("R") - projected_flesh
        assert new_atoms, "Example 8 expects extra datalog derivations"
        # ...but Lemma 5: the full chase needs no new elements
        final = chase_with_embargo(stripped, theory)
        assert final.saturated


class TestSection55Story:
    """The non-FC theory: chase avoids Φ, every finite model has it."""

    def test_chase_avoids_phi(self):
        verdict = certain_boolean(
            section55_database(),
            section55_theory(),
            section55_query().boolean(),
            max_depth=10,
        )
        assert verdict is not True

    def test_r_atoms_follow_doubling_pattern(self):
        """Chase has R(a_i, a_{2i}): spot-check the first few."""
        chased = chase(section55_database(), section55_theory(), max_depth=9)
        r_facts = chased.structure.facts_with_pred("R")
        # R(a0,a0) given; rule walks (x,y) -> (x+1, y+2)
        assert len(r_facts) >= 4

    def test_paper_finite_model_argument(self):
        """Build the cycle model by hand and replay the paper's proof
        that Φ becomes true."""
        theory = section55_theory()
        # a lasso: a0 -> a1 -> a2 -> a3 -> a1  (m=1, n=3)
        model = parse_structure(
            """
            E(a0,a1)
            E(a1,a2)
            E(a2,a3)
            E(a3,a1)
            R(a0,a0)
            """
        )
        saturated = datalog_saturate(model, theory).structure
        assert is_model(saturated, theory)
        assert satisfies(saturated, section55_query().boolean())
