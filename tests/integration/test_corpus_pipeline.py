"""Integration: the Theorem-2 pipeline across the corpus, cross-checked
against the independent finite-model search and the rewriting engine."""

import pytest

from repro.chase import certain_boolean, is_model
from repro.core import build_finite_counter_model, certify_counter_model
from repro.fc import search_finite_model
from repro.lf import satisfies
from repro.rewriting import RewriteConfig, answer_by_rewriting
from repro.zoo import theorem2_corpus

CORPUS = theorem2_corpus()
IDS = [name for name, *_ in CORPUS]


@pytest.mark.parametrize("name,theory,database,query", CORPUS, ids=IDS)
class TestCorpus:
    def test_pipeline_produces_verified_model(self, name, theory, database, query):
        result = build_finite_counter_model(theory, database, query)
        assert result.model is not None, result.attempts
        assert certify_counter_model(result, theory, database, query)

    def test_search_agrees(self, name, theory, database, query):
        outcome = search_finite_model(
            database, theory, forbidden=query.boolean(), max_elements=6
        )
        # the search may or may not find one within 6 elements, but if
        # it does, the model must verify like the pipeline's
        if outcome.found:
            assert is_model(outcome.model, theory)
            assert not satisfies(outcome.model, query.boolean())

    def test_rewriting_confirms_not_certain(self, name, theory, database, query):
        config = RewriteConfig(max_steps=5_000, max_queries=500)
        assert answer_by_rewriting(database, theory, query.boolean(), config) is False


class TestPipelineInternalsAgree:
    def test_model_is_homomorphic_image_of_chase_prefix(self):
        """The counter-model contains a homomorphic image of the chase:
        the paper's M′ (Section 2.1), realised by q_η."""
        from repro.chase import ChaseConfig, chase
        from repro.lf import structure_homomorphism
        from repro.zoo import example7_database, example7_theory
        from repro.lf import parse_query

        theory, database = example7_theory(), example7_database()
        query = parse_query("R(x,u), P(u,w)")
        result = build_finite_counter_model(theory, database, query)
        prefix = chase(database, theory, ChaseConfig(max_depth=3)).structure
        mapping = structure_homomorphism(prefix, result.model)
        assert mapping is not None

    def test_flag_predicate_invisible_in_model(self):
        from repro.lf import parse_query
        from repro.zoo import example1_database, example1_theory

        theory, database = example1_theory(), example1_database()
        result = build_finite_counter_model(theory, database, parse_query("U(x,y)"))
        flag = result.prepared.flag_predicate
        assert not result.model.facts_with_pred(flag)

    def test_eta_at_least_kappa(self):
        from repro.lf import parse_query
        from repro.zoo import example7_database, example7_theory

        result = build_finite_counter_model(
            example7_theory(), example7_database(), parse_query("R(x,u), P(u,w)")
        )
        assert result.eta >= result.kappa
