"""The unified config contract: OnBudget, BudgetedConfig, overrides.

One budget vocabulary across the chase, the rewriter, and the
pipeline — including the deprecation shim for legacy string values.
"""

import dataclasses

import pytest

from repro.chase import ChaseConfig, ChaseStrategy, chase
from repro.config import BudgetedConfig, OnBudget, coerce_enum
from repro.core import PipelineConfig, build_finite_counter_model
from repro.lf import parse_query, parse_structure, parse_theory
from repro.rewriting import RewriteConfig, rewrite


class TestOnBudget:
    def test_members_compare_equal_to_their_strings(self):
        # str subclassing keeps existing `== "raise"` call sites valid.
        assert OnBudget.RAISE == "raise"
        assert OnBudget.RETURN == "return"

    def test_coerce_passes_members_through_silently(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert OnBudget.coerce(OnBudget.RAISE) is OnBudget.RAISE

    def test_coerce_warns_on_legacy_strings(self):
        with pytest.warns(DeprecationWarning, match="OnBudget.RETURN"):
            assert OnBudget.coerce("return") is OnBudget.RETURN

    def test_coerce_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="on_budget"):
            OnBudget.coerce("explode")
        with pytest.raises(ValueError, match="on_budget"):
            OnBudget.coerce(7)

    def test_coerce_enum_without_deprecation_is_silent(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            member = coerce_enum("naive", ChaseStrategy, "strategy")
        assert member is ChaseStrategy.NAIVE


@pytest.mark.parametrize(
    "config_cls, default",
    [
        (ChaseConfig, OnBudget.RETURN),
        (RewriteConfig, OnBudget.RAISE),
        (PipelineConfig, OnBudget.RAISE),
    ],
)
class TestSharedContract:
    def test_defaults(self, config_cls, default):
        config = config_cls()
        assert isinstance(config, BudgetedConfig)
        assert config.on_budget is default
        assert config.should_raise is (default is OnBudget.RAISE)

    def test_legacy_strings_accepted_with_warning(self, config_cls, default):
        with pytest.warns(DeprecationWarning):
            config = config_cls(on_budget="raise")
        assert config.on_budget is OnBudget.RAISE
        assert config.should_raise

    def test_with_overrides_returns_validated_copy(self, config_cls, default):
        config = config_cls()
        other = OnBudget.RETURN if default is OnBudget.RAISE else OnBudget.RAISE
        copy = config.with_overrides(on_budget=other)
        assert copy is not config
        assert copy.on_budget is other
        assert config.on_budget is default  # original untouched
        assert dataclasses.replace(config) is not config

    def test_with_overrides_rejects_unknown_fields(self, config_cls, default):
        with pytest.raises(TypeError):
            config_cls().with_overrides(no_such_field=1)

    def test_with_overrides_without_arguments_is_identity(self, config_cls, default):
        config = config_cls()
        assert config.with_overrides() is config


class TestEnginesHonorThePolicy:
    def test_chase_returns_partial_by_default(self):
        database = parse_structure("E(a,b)")
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        result = chase(database, theory, ChaseConfig(max_facts=3, max_depth=None))
        assert not result.saturated

    def test_chase_raises_when_asked(self):
        from repro.errors import ChaseBudgetExceeded

        database = parse_structure("E(a,b)")
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        config = ChaseConfig(max_facts=3, max_depth=None,
                             on_budget=OnBudget.RAISE)
        with pytest.raises(ChaseBudgetExceeded):
            chase(database, theory, config)

    def test_rewrite_return_policy_reports_unsaturated(self):
        # transitive closure with free endpoints: the rewriting expands
        # to paths of every length, so a 1-step budget cannot saturate
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        config = RewriteConfig(max_steps=1, on_budget=OnBudget.RETURN)
        result = rewrite(parse_query("E(u,v)", free=["u", "v"]), theory, config)
        assert not result.saturated

    def test_pipeline_return_policy_yields_partial_result(self):
        # An impossible schedule: with RETURN the pipeline hands back
        # the result object (model=None, reasons in attempts) instead
        # of raising PipelineError.
        theory = parse_theory("E(x,y) -> exists z. E(y,z)")
        database = parse_structure("E(a,b)")
        query = parse_query("E(x,x)")
        config = PipelineConfig(chase_depths=(2,), on_budget=OnBudget.RETURN)
        result = build_finite_counter_model(theory, database, query, config)
        assert result.model is None
        assert not result.query_certain
        assert result.attempts
