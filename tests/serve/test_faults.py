"""Fault battery: SLA trips must degrade, never wedge.

Every cell asserts the same three-part contract: the faulted request
returns a *well-formed* JSON response carrying ``stopped_reason`` and
the incomplete/interrupted exit code; the tenant session stays usable
afterwards; and the worker pool neither grows nor leaks threads.

Deadline and memory trips use the real guard paths (a ``wall_ms: 0``
budget, a 1 MB RSS ceiling).  The injected variants use
``repro.testing.inject_fault`` — the hook is process-wide and
non-nestable, so those tests run requests strictly serially while the
hook is installed (pytest runs this file single-threaded; the shared
server's pool only sees our own requests).
"""

import pytest

from repro.serve import ServeConfig, ServerThread, worker_thread_count
from repro.testing import inject_fault

pytestmark = pytest.mark.timeout(120)

LINEAR = "E(x,y) -> exists z. E(y,z)"
NONTERM = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> E(x,z)"
EXAMPLE7 = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(u,y) -> R(x,u)"
DB = "E(a,b)"

WORKERS = 2


@pytest.fixture(scope="module")
def server():
    with ServerThread(workers=WORKERS) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with server.client() as c:
        yield c


def assert_session_usable(client, tenant):
    """The recovery half of every fault test: same tenant, next request."""
    assert client.request("ping", tenant=tenant)["status"] == "pong"
    again = client.request(
        "chase", theory=LINEAR, database=DB, tenant=tenant,
        params={"depth": 2},
    )
    assert again["status"] == "truncated"
    assert again["ok"] is True


def assert_pool_intact():
    count = worker_thread_count()
    assert 0 < count <= WORKERS


class TestDeadline:
    def test_chase_deadline_budget(self, client):
        response = client.request(
            "chase", theory=NONTERM, database=DB, tenant="deadline",
            params={"depth": 10_000, "wall_ms": 0},
        )
        assert response["status"] == "truncated"
        assert response["stopped_reason"] == "deadline"
        assert response["exit_code"] == 2
        assert response["ok"] is True  # degraded, not failed
        assert_session_usable(client, "deadline")
        assert_pool_intact()

    def test_injected_chase_deadline(self, client):
        with inject_fault("chase", "deadline") as injector:
            response = client.request(
                "chase", theory=LINEAR, database=DB, tenant="deadline-inj",
                params={"depth": 8},
            )
        assert injector.tripped
        assert response["stopped_reason"] == "deadline"
        assert response["exit_code"] == 2
        assert_session_usable(client, "deadline-inj")
        assert_pool_intact()

    def test_injected_rewrite_deadline(self, client):
        with inject_fault("rewrite", "deadline"):
            response = client.request(
                "rewrite", theory=EXAMPLE7, query="R(x,u)",
                free=["x", "u"], tenant="deadline-inj",
            )
        assert response["status"] == "budget-exhausted"
        assert response["stopped_reason"] == "deadline"
        assert response["exit_code"] == 2
        # a budget-truncated rewriting must NOT enter the artifact cache
        retry = client.request(
            "rewrite", theory=EXAMPLE7, query="R(x,u)",
            free=["x", "u"], tenant="deadline-inj",
        )
        assert retry["status"] == "saturated"
        assert "cached" not in retry
        assert_pool_intact()


class TestMemory:
    def test_chase_rss_ceiling(self, client):
        response = client.request(
            "chase", theory=NONTERM, database=DB, tenant="memory",
            params={"depth": 10_000, "max_rss_mb": 1},
        )
        assert response["status"] == "truncated"
        assert response["stopped_reason"] == "memory"
        assert response["exit_code"] == 2
        assert_session_usable(client, "memory")
        assert_pool_intact()

    def test_injected_fc_search_memory(self, client):
        with inject_fault("fc-search", "memory"):
            response = client.request(
                "fc-search", theory=LINEAR, database=DB, query="E(x,x)",
                tenant="memory-inj",
            )
        assert response["stopped_reason"] == "memory"
        assert response["exit_code"] == 2
        assert_session_usable(client, "memory-inj")
        assert_pool_intact()


class TestCancellation:
    def test_cancel_op_unwinds_long_search(self, client):
        tenant = "cancel"
        rid = client.submit(
            "fc-search", theory=NONTERM, database=DB, query="E(x,x)",
            tenant=tenant,
            params={"max_elements": 30, "max_nodes": 100_000_000},
        )
        ack = client.request("cancel", target=rid)
        assert ack["status"] == "cancelling"
        assert ack["counts"]["cancelled"] == 1
        response = client.response_for(rid)
        assert response["stopped_reason"] == "cancelled"
        assert response["exit_code"] == 130
        assert response["ok"] is True
        assert_session_usable(client, tenant)
        assert_pool_intact()

    def test_cancel_unknown_id(self, client):
        ack = client.request("cancel", target=99999)
        assert ack["status"] == "not-found"
        assert ack["counts"]["cancelled"] == 0

    def test_disconnect_cancels_inflight(self, server, client):
        # a client that vanishes mid-job must not pin a worker forever
        doomed = server.client()
        doomed.submit(
            "fc-search", theory=NONTERM, database=DB, query="E(x,x)",
            tenant="disconnect",
            params={"max_elements": 30, "max_nodes": 100_000_000},
        )
        import time
        for _ in range(100):  # until the job is counted in flight
            if server.server._jobs:
                break
            time.sleep(0.05)
        before = server.server.cancelled
        doomed.close()
        for _ in range(200):  # the reader notices EOF, trips the token
            if server.server.cancelled > before and not server.server._jobs:
                break
            time.sleep(0.05)
        assert server.server.cancelled > before
        assert not server.server._jobs
        assert_session_usable(client, "disconnect")
        assert_pool_intact()


class TestThreadHygiene:
    def test_no_threads_after_shutdown(self):
        with ServerThread(workers=2) as handle:
            with handle.client() as client:
                client.request("chase", theory=LINEAR, database=DB,
                               params={"depth": 2})
                assert 0 < worker_thread_count() <= 2 + WORKERS
        # our pool is gone; the module server's (if booted) may remain
        assert worker_thread_count() <= WORKERS

    def test_faulted_jobs_leave_no_extra_threads(self, client):
        baseline = worker_thread_count()
        for _ in range(3 * WORKERS):
            response = client.request(
                "chase", theory=NONTERM, database=DB, tenant="hygiene",
                params={"depth": 10_000, "wall_ms": 0},
            )
            assert response["stopped_reason"] == "deadline"
        assert worker_thread_count() <= max(baseline, WORKERS)
        assert_session_usable(client, "hygiene")
