"""Admission-layer battery: WRR determinism, caps, bounded queues.

The hypothesis property drives the
:class:`~repro.serve.admission.AdmissionController` with arbitrary
interleavings of tenant submissions, dispatch rounds, and completions,
and checks it against an independent list-based reimplementation of
the documented weighted-round-robin rules — dispatch order must match
*exactly*, and the per-tenant inflight cap and global worker bound
must never be exceeded.  A second pass over the same event script must
reproduce the identical dispatch sequence (dispatch order is a pure
function of the submit/complete history).

The end-to-end half drives a real saturated server under both
``REPRO_STORE`` backends and checks the wire-level contract: over-limit
requests shed with a well-formed ``overloaded`` envelope, admitted
requests all answered.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import ServerThread
from repro.serve.admission import AdmissionController, Pending
from repro.testing import inject_serve_fault

pytestmark = pytest.mark.timeout(120)

TENANTS = ("alpha", "beta", "gamma")

LINEAR = "E(x,y) -> exists z. E(y,z)"
DB = "E(a,b)"


class ReferenceWRR:
    """Independent reimplementation of the dispatch rules (lists, no
    deque rotation) — the oracle the controller is checked against."""

    def __init__(self, workers, cap, weights):
        self.workers = workers
        self.cap = cap
        self.weights = weights
        self.ring = []
        self.queues = {}
        self.credit = {}
        self.inflight = {}
        self.total = 0

    def submit(self, tenant, rid):
        queue = self.queues.setdefault(tenant, [])
        if not queue:
            self.ring.append(tenant)
            self.credit[tenant] = self.weights.get(tenant, 1)
        queue.append(rid)

    def dispatch(self):
        out = []
        while self.total < self.workers:
            picked = None
            for _ in range(len(self.ring)):
                tenant = self.ring[0]
                if self.inflight.get(tenant, 0) >= self.cap:
                    self.ring.append(self.ring.pop(0))
                    continue
                picked = tenant
                break
            if picked is None:
                break
            rid = self.queues[picked].pop(0)
            self.inflight[picked] = self.inflight.get(picked, 0) + 1
            self.total += 1
            out.append((picked, rid))
            if not self.queues[picked]:
                self.ring.pop(0)
                self.credit[picked] = self.weights.get(picked, 1)
            else:
                self.credit[picked] -= 1
                if self.credit[picked] <= 0:
                    self.credit[picked] = self.weights.get(picked, 1)
                    self.ring.append(self.ring.pop(0))
        return out

    def complete(self, tenant):
        self.inflight[tenant] -= 1
        self.total -= 1


def run_script(workers, cap, weights, events):
    """Drive one controller through *events*; returns the dispatch
    sequence, asserting the caps and the oracle along the way."""
    controller = AdmissionController(
        workers=workers,
        max_pending=10_000,  # no shedding: this property is about order
        tenant_max_inflight=cap,
        tenant_weights=weights,
    )
    oracle = ReferenceWRR(workers, cap, weights)
    dispatched = []
    running = []  # dispatch-order FIFO of tenants to complete
    rids = iter(range(1, 10_000))

    def do_dispatch():
        run, expired = controller.next_dispatch()
        assert expired == []  # no deadlines in this battery
        got = [(entry.tenant, entry.rid) for entry in run]
        assert got == oracle.dispatch()
        dispatched.extend(got)
        running.extend(tenant for tenant, _ in got)

    for event in events:
        if event[0] == "submit":
            rid = next(rids)
            assert controller.try_admit(Pending(event[1], rid)) is None
            oracle.submit(event[1], rid)
            do_dispatch()  # the server pumps after every admit
        elif event[0] == "complete" and running:
            tenant = running.pop(0)
            controller.complete(tenant)
            oracle.complete(tenant)
            do_dispatch()  # ... and after every completion
        snap = controller.snapshot()
        assert snap["inflight"] <= workers
        for name, stats in snap["tenants"].items():
            assert stats["inflight"] <= cap, (
                f"tenant {name} exceeded its inflight cap"
            )
    # Drain what's left so the script always ends at a fixpoint.
    while running or controller.pending_total:
        if running:
            tenant = running.pop(0)
            controller.complete(tenant)
            oracle.complete(tenant)
        do_dispatch()
        if not running and controller.pending_total:
            # capped tenants with nothing running cannot happen: a
            # pending entry with zero inflight anywhere must dispatch
            raise AssertionError("stuck backlog with idle workers")
    assert controller.inflight_total == 0
    assert controller.snapshot()["tenants"] == {}  # idle tenants pruned
    return dispatched


EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(TENANTS)),
        st.tuples(st.just("complete")),
    ),
    max_size=60,
)
WEIGHTS = st.dictionaries(
    st.sampled_from(TENANTS), st.integers(min_value=1, max_value=3)
)


@pytest.mark.parametrize("backend", ["dict", "columnar"])
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    workers=st.integers(min_value=1, max_value=4),
    cap=st.integers(min_value=1, max_value=4),
    weights=WEIGHTS,
    events=EVENTS,
)
def test_wrr_dispatch_is_deterministic_and_capped(
    backend, workers, cap, weights, events
):
    previous = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = backend
    try:
        first = run_script(workers, cap, weights, events)
        second = run_script(workers, cap, weights, events)
    finally:
        if previous is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = previous
    assert first == second  # pure function of the event history


def test_admit_prefers_immediate_dispatch():
    controller = AdmissionController(workers=2, max_pending=0)
    # max_pending=0 still admits what can run *right now* (the server
    # pumps after every admit, so the queue is empty at each arrival)...
    for rid in (1, 2):
        assert controller.try_admit(Pending("a", rid)) is None
        run, _ = controller.next_dispatch()
        assert [(e.tenant, e.rid) for e in run] == [("a", rid)]
    # ... and sheds what cannot (both workers busy, nowhere to queue).
    assert controller.try_admit(Pending("a", 3)) == "overloaded"
    assert controller.snapshot()["shed"]["overloaded"] == 1


def test_tenant_queue_bound_sheds_only_the_noisy_tenant():
    controller = AdmissionController(
        workers=1, max_pending=100, tenant_max_pending=2
    )
    assert controller.try_admit(Pending("hog", 1)) is None
    controller.next_dispatch()  # hog occupies the only worker
    for rid in (2, 3):
        assert controller.try_admit(Pending("hog", rid)) is None
    assert controller.try_admit(Pending("hog", 4)) == "overloaded"
    # The victim's queue is its own; the hog's overflow is not its problem.
    assert controller.try_admit(Pending("victim", 5)) is None
    snap = controller.snapshot()
    assert snap["tenants"]["hog"]["shed"] == 1
    assert snap["tenants"]["victim"]["shed"] == 0


def test_retry_after_scales_with_backlog():
    controller = AdmissionController(workers=1, max_pending=100)
    idle = controller.retry_after_ms()
    for rid in range(1, 30):
        controller.try_admit(Pending("a", rid))
    controller.next_dispatch()
    assert controller.retry_after_ms() >= idle
    assert isinstance(controller.retry_after_ms(), int)


@pytest.mark.parametrize("backend", ["dict", "columnar"])
def test_admission_end_to_end_sheds_and_recovers(backend, monkeypatch):
    """A saturated real server sheds with a well-formed envelope and
    answers everything it admitted — under both store backends."""
    monkeypatch.setenv("REPRO_STORE", backend)
    with ServerThread(
        workers=1, max_pending=2, drain_ms=500.0
    ) as handle:
        with handle.client() as client:
            with inject_serve_fault("slow", delay_ms=200.0, ops=("chase",)):
                # One in the worker, two queued, the rest must shed.
                rids = [
                    client.submit(
                        "chase", theory=LINEAR, database=DB,
                        tenant="burst", params={"depth": 2},
                    )
                    for _ in range(6)
                ]
                responses = {rid: client.response_for(rid) for rid in rids}
            good = [r for r in responses.values() if r["ok"]]
            shed = [r for r in responses.values() if not r["ok"]]
            assert len(good) == 3 and len(shed) == 3
            for response in good:
                assert response["status"] == "truncated"  # depth budget
            for response in shed:
                assert response["error"] == "overloaded"
                assert response["status"] == "shed"
                assert isinstance(response["retry_after_ms"], int)
                assert response["retry_after_ms"] > 0
                assert response["tenant"] == "burst"
            # The server recovered: same tenant, next request is served.
            assert client.request("ping", tenant="burst")["status"] == "pong"
            metrics = client.request("metrics")
            assert metrics["admission"]["shed"]["overloaded"] == 3
            assert metrics["admission"]["pending"] == 0
