"""Chaos battery: overload, wedged workers, bursts, drain-under-fire.

Every scenario drives a real server through
:func:`repro.testing.inject_serve_fault` (slow workers, stuck jobs)
and client-side burst arrivals, and asserts the overload contract:

* memory stays bounded — the backlog never exceeds the configured
  queue bounds and every admission structure is empty again after the
  storm;
* no tenant starves — the weighted round-robin dispatcher interleaves
  backlogged tenants;
* every shed request gets a *well-formed* response (``overloaded`` +
  ``retry_after_ms``, or a ``queue_deadline`` shed with
  ``stopped_reason``);
* the SIGTERM drain contract holds mid-overload: queued requests are
  answered with the draining error, wedged ones are cancelled
  cooperatively, the pool exits clean.

The faults are deterministic (no real clock assertions beyond generous
sleeps around explicit cancellation), so the battery is tier-1.
"""

import threading

import pytest

from repro.payloads import EXIT_ERROR, EXIT_INCOMPLETE, EXIT_INTERRUPTED
from repro.serve import (
    ServeOverloaded,
    ServeTimeout,
    ServerThread,
    worker_thread_count,
)
from repro.testing import inject_serve_fault

pytestmark = pytest.mark.timeout(120)

LINEAR = "E(x,y) -> exists z. E(y,z)"
DB = "E(a,b)"


def submit_chase(client, tenant, **params):
    merged = {"depth": 2}
    merged.update(params)
    return client.submit(
        "chase", theory=LINEAR, database=DB, tenant=tenant, params=merged
    )


def assert_well_formed(response, rid):
    assert response["id"] == rid
    assert isinstance(response["ok"], bool)
    assert "exit_code" in response
    if response.get("error") == "overloaded":
        assert response["ok"] is False
        assert response["status"] == "shed"
        assert isinstance(response["retry_after_ms"], int)
        assert response["retry_after_ms"] > 0


class TestBurstOverload:
    def test_multi_tenant_burst_is_bounded_and_answered(self):
        """A 4x-capacity multi-tenant burst: bounded backlog, every
        request answered well-formed, all bookkeeping drains to zero."""
        tenants = ("alpha", "beta", "gamma")
        # Global bound ≥ sum of tenant bounds: queue *space* is never
        # what fairness rests on (dispatch order is), so every tenant
        # can always stage its own share.
        with ServerThread(
            workers=2, max_pending=9, tenant_max_pending=3, drain_ms=500.0
        ) as handle:
            clients = {t: handle.client() for t in tenants}
            try:
                with inject_serve_fault(
                    "slow", delay_ms=30.0, ops=("chase",)
                ):
                    submitted = []  # (tenant, rid) in submit order
                    for wave in range(4):  # sustained: several waves
                        for tenant in tenants:
                            for _ in range(3):
                                rid = submit_chase(clients[tenant], tenant)
                                submitted.append((tenant, rid))
                    responses = {
                        (tenant, rid): clients[tenant].response_for(rid)
                        for tenant, rid in submitted
                    }
                good_by_tenant = {t: 0 for t in tenants}
                shed = 0
                for (tenant, rid), response in responses.items():
                    assert_well_formed(response, rid)
                    if response["ok"]:
                        good_by_tenant[tenant] += 1
                    else:
                        assert response["error"] == "overloaded"
                        shed += 1
                assert shed > 0  # the burst really was over capacity
                for tenant in tenants:
                    assert good_by_tenant[tenant] > 0, (
                        f"tenant {tenant} got no work through the burst"
                    )
                admission = handle.server.admission
                # bounded memory: the backlog never exceeded the bound,
                # and the structures are empty again after the storm
                assert admission.pending_high_water <= 9
                metrics = clients[tenants[0]].request("metrics")
                assert metrics["admission"]["pending"] == 0
                assert metrics["admission"]["inflight"] == 0
                assert metrics["admission"]["tenants"] == {}
                assert metrics["admission"]["shed"]["overloaded"] == shed
            finally:
                for client in clients.values():
                    client.close()
        assert worker_thread_count() == 0  # pool joined on shutdown

    def test_no_cross_tenant_starvation(self):
        """One flooding tenant cannot keep a light tenant out of the
        pool: dispatches interleave while both are backlogged."""
        with ServerThread(
            workers=1, max_pending=100, tenant_max_pending=4,
            drain_ms=500.0,
        ) as handle:
            with handle.client() as hog, handle.client() as victim:
                with inject_serve_fault(
                    "slow", delay_ms=40.0, ops=("chase",)
                ):
                    hog_rids = [submit_chase(hog, "hog") for _ in range(8)]
                    victim_rids = [
                        submit_chase(victim, "victim") for _ in range(2)
                    ]
                    victim_responses = [
                        victim.response_for(rid) for rid in victim_rids
                    ]
                    hog_responses = [
                        hog.response_for(rid) for rid in hog_rids
                    ]
                # Both of the victim's requests were served, not shed.
                for response in victim_responses:
                    assert response["ok"] is True
                # The hog's overflow (queue bound 4) was shed, its
                # admitted work served.
                assert sum(1 for r in hog_responses if r["ok"]) == 5
                assert sum(
                    1 for r in hog_responses
                    if r.get("error") == "overloaded"
                ) == 3
                # Fairness: while the victim was backlogged the
                # dispatcher alternated — no long hog run inside the
                # victim's window.
                log = handle.server.admission.recent_dispatches()
                first = log.index("victim")
                last = len(log) - 1 - log[::-1].index("victim")
                window = log[first:last + 1]
                run = worst = 0
                for name in window:
                    run = run + 1 if name == "hog" else 0
                    worst = max(worst, run)
                assert worst <= 1, f"hog run of {worst} inside {window}"


class TestStuckWorker:
    def test_shed_envelope_is_well_formed(self):
        """With the pool wedged and no queue, every arrival sheds
        immediately with the full overloaded envelope."""
        with ServerThread(
            workers=1, max_pending=0, drain_ms=300.0
        ) as handle:
            with handle.client() as client:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(client, "stuck-tenant")
                    shed_rids = [
                        client.submit("ping", tenant=f"t{i}")
                        for i in range(3)
                    ]
                    for rid in shed_rids:
                        response = client.response_for(rid)
                        assert response["ok"] is False
                        assert response["status"] == "shed"
                        assert response["error"] == "overloaded"
                        assert response["exit_code"] == EXIT_ERROR
                        assert isinstance(response["retry_after_ms"], int)
                        assert response["retry_after_ms"] > 0
                        assert response["id"] == rid
                    # Free the wedged worker cooperatively.
                    cancel = client.request("cancel", target=wedged)
                    assert cancel["status"] == "cancelling"
                    response = client.response_for(wedged)
                    assert response["id"] == wedged
                    assert response.get("stopped_reason") == "cancelled"
                # Server healthy again.
                assert client.request("ping")["status"] == "pong"

    def test_queue_deadline_sheds_expired_requests(self):
        """A request whose SLA expires while queued behind a wedged
        worker is shed at dispatch with ``stopped_reason`` set — no
        worker time is spent on it while others wait."""
        import time

        with ServerThread(
            workers=1, max_pending=10, drain_ms=300.0
        ) as handle:
            with handle.client() as client:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(client, "wedge")
                    # Two SLA'd requests stuck in the queue...
                    doomed = submit_chase(client, "sla", wall_ms=80)
                    trailing = submit_chase(client, "sla", wall_ms=80)
                    time.sleep(0.4)  # both deadlines expire in-queue
                    client.request("cancel", target=wedged)
                    doomed_response = client.response_for(doomed)
                    trailing_response = client.response_for(trailing)
                    client.response_for(wedged)
                # First expired head: shed early (others were waiting).
                assert doomed_response["ok"] is False
                assert doomed_response["status"] == "shed"
                assert doomed_response["error"] == "queue_deadline"
                assert doomed_response["stopped_reason"] == "deadline"
                assert doomed_response["exit_code"] == EXIT_INCOMPLETE
                # Last in line (nobody behind it): dispatched, and the
                # worker's guard degrades it the usual way instead.
                assert trailing_response["ok"] is True
                assert trailing_response["status"] == "truncated"
                assert trailing_response["stopped_reason"] == "deadline"


class TestRetryClient:
    def test_retry_rides_out_a_wedged_pool(self):
        with ServerThread(
            workers=1, max_pending=0, drain_ms=300.0
        ) as handle:
            with handle.client() as blocker, handle.client() as retrier:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(blocker, "wedge")
                    result = {}

                    def retry() -> None:
                        result["response"] = retrier.request_with_retry(
                            "ping", max_retries=10,
                            base_delay_ms=30.0, seed=7,
                        )

                    thread = threading.Thread(target=retry)
                    thread.start()
                    import time

                    time.sleep(0.2)
                    blocker.request("cancel", target=wedged)
                    thread.join(timeout=30.0)
                    assert not thread.is_alive()
                    blocker.response_for(wedged)
                assert result["response"]["status"] == "pong"

    def test_retry_cap_raises_typed_overloaded(self):
        with ServerThread(
            workers=1, max_pending=0, drain_ms=300.0
        ) as handle:
            with handle.client() as blocker, handle.client() as retrier:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(blocker, "wedge")
                    sleeps: list = []
                    with pytest.raises(ServeOverloaded) as excinfo:
                        retrier.request_with_retry(
                            "ping", max_retries=2, base_delay_ms=5.0,
                            max_delay_ms=10.0, seed=11,
                            sleep=sleeps.append,
                        )
                    assert excinfo.value.attempts == 3
                    assert excinfo.value.op == "ping"
                    assert (
                        excinfo.value.response["error"] == "overloaded"
                    )
                    assert len(sleeps) == 2
                    # Seeded jitter: the schedule is reproducible.
                    again: list = []
                    with pytest.raises(ServeOverloaded):
                        retrier.request_with_retry(
                            "ping", max_retries=2, base_delay_ms=5.0,
                            max_delay_ms=10.0, seed=11,
                            sleep=again.append,
                        )
                    assert again == sleeps
                    blocker.request("cancel", target=wedged)
                    blocker.response_for(wedged)

    def test_non_idempotent_ops_never_resent(self):
        with ServerThread(
            workers=1, max_pending=0, drain_ms=300.0
        ) as handle:
            with handle.client() as blocker, handle.client() as retrier:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(blocker, "wedge")
                    sleeps: list = []
                    with pytest.raises(ServeOverloaded) as excinfo:
                        retrier.request_with_retry(
                            "view-update", view="v", adds="E(c,d).",
                            max_retries=5, sleep=sleeps.append,
                        )
                    assert excinfo.value.attempts == 1
                    assert sleeps == []  # a mutation is never replayed
                    blocker.request("cancel", target=wedged)
                    blocker.response_for(wedged)

    def test_socket_timeout_raises_typed_serve_timeout(self):
        with ServerThread(
            workers=1, max_pending=10, drain_ms=300.0
        ) as handle:
            client = handle.client(timeout=0.5)
            try:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(client, "wedge")
                    queued = submit_chase(client, "wedge")
                    with pytest.raises(ServeTimeout) as excinfo:
                        client.response_for(wedged)
                    assert excinfo.value.waiting_for == wedged
                    assert excinfo.value.pending_ids == [wedged, queued]
                    assert str(wedged) in str(excinfo.value)
            finally:
                client.close()  # disconnect cancels the wedged job


class TestDrainMidOverload:
    def test_sigterm_drain_contract_holds_under_overload(self):
        """Shutdown while the pool is wedged and the queue is full:
        queued requests get the draining error, the wedged job is
        cancelled cooperatively, exit code honours the signal, and the
        pool joins clean — no request goes unanswered."""
        handle = ServerThread(
            workers=1, max_pending=10, drain_ms=300.0
        )
        with handle:
            client = handle.client()
            try:
                with inject_serve_fault(
                    "stuck", ops=("chase",), max_hits=1, timeout_s=20.0
                ):
                    wedged = submit_chase(client, "wedge")
                    queued = [
                        client.submit("ping", tenant="q")
                        for _ in range(3)
                    ]
                    # Wait until the server has actually admitted the
                    # backlog (the submits race the shutdown otherwise).
                    import time

                    waited = 0.0
                    admission = handle.server.admission
                    while (
                        admission.pending_total < 3 and waited < 10.0
                    ):
                        time.sleep(0.02)
                        waited += 0.02
                    assert admission.pending_total == 3
                    # SIGTERM mid-overload (what run_server's handler does).
                    handle.shutdown(exit_code=EXIT_INTERRUPTED)
                    for rid in queued:
                        response = client.response_for(rid)
                        assert response["ok"] is False
                        assert response["error"] == "server is draining"
                        assert response["exit_code"] == EXIT_ERROR
                        assert response["id"] == rid
                    wedged_response = client.response_for(wedged)
                    assert (
                        wedged_response.get("stopped_reason") == "cancelled"
                    )
            finally:
                client.close()
        assert handle.exit_code == EXIT_INTERRUPTED
        assert worker_thread_count() == 0
