"""Protocol and session behaviour of the serve front-end.

One module-scoped server on a loopback TCP socket; each test opens its
own client.  Payload *content* parity with the CLI is pinned by the
hypothesis battery in ``tests/property/test_serve_parity.py``; here we
pin the protocol mechanics — envelopes, pipelining, caching, views,
tenancy, sockets, shutdown.
"""

import contextlib
import io
import json

import pytest

from repro.cli import main as cli_main
from repro.serve import ServeConfig, ServerThread

pytestmark = pytest.mark.timeout(120)

LINEAR = "E(x,y) -> exists z. E(y,z)"
EXAMPLE7 = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(u,y) -> R(x,u)"
TC = "E(x,y), E(y,z) -> E(x,z)"
DB = "E(a,b)"

#: Keys the server adds on top of the CLI ``--json`` payload.
ENVELOPE = {"id", "ok", "tenant", "cached"}


@pytest.fixture(scope="module")
def server():
    with ServerThread(workers=2) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with server.client() as c:
        yield c


def cli_json(*argv):
    """Run the CLI in-process with ``--json``, return (code, payload)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli_main([*argv, "--json"])
    return code, json.loads(out.getvalue())


class TestEnvelope:
    def test_ping(self, client):
        response = client.request("ping")
        assert response["status"] == "pong"
        assert response["ok"] is True
        assert response["exit_code"] == 0
        assert response["tenant"] == "default"

    def test_id_echoed(self, client):
        rid = client.submit("ping")
        assert client.response_for(rid)["id"] == rid

    def test_chase_payload_matches_cli(self, client):
        response = client.request(
            "chase", theory=LINEAR, database=DB, params={"depth": 3}
        )
        code, expected = cli_json("-e", "chase", LINEAR, DB, "--depth", "3")
        body = {k: v for k, v in response.items() if k not in ENVELOPE}
        body["stats"].pop("hom", None)
        expected["stats"].pop("hom", None)
        # wall-clock fields aside, the payloads must be identical
        from tests.test_cli_json import strip_timings
        assert strip_timings(body) == strip_timings(expected)
        assert response["exit_code"] == code

    def test_malformed_json_line(self, client):
        client.send_raw(b"this is not json")
        response = client.recv()
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_non_object_request(self, client):
        client.send_raw(json.dumps([1, 2, 3]))
        response = client.recv()
        assert response["ok"] is False

    def test_unknown_op(self, client):
        response = client.request("frobnicate")
        assert response["status"] == "error"
        assert response["exit_code"] == 1
        assert "unknown op" in response["error"]

    def test_missing_field(self, client):
        response = client.request("chase", theory=LINEAR)  # no database
        assert response["status"] == "error"
        assert "database" in response["error"]

    def test_parse_error_is_wellformed(self, client):
        response = client.request("chase", theory="E(x,y -> broken", database=DB)
        assert response["status"] == "error"
        assert response["ok"] is False
        assert response["exit_code"] == 1

    def test_pipelined_responses_tagged(self, client):
        first = client.submit("chase", theory=LINEAR, database=DB,
                              params={"depth": 2})
        second = client.submit("classify", theory=LINEAR)
        # claim in reverse order: the buffer must sort it out
        assert client.response_for(second)["command"] == "classify"
        assert client.response_for(first)["command"] == "chase"


class TestWarmState:
    def test_rewrite_artifact_cache(self, client):
        kwargs = dict(theory=EXAMPLE7, query="R(x,u)", free=["x", "u"],
                      tenant="warm-test")
        cold = client.request("rewrite", **kwargs)
        warm = client.request("rewrite", **kwargs)
        assert cold["status"] == warm["status"] == "saturated"
        assert "cached" not in cold
        assert warm["cached"] is True
        body = lambda r: {k: v for k, v in r.items() if k not in ENVELOPE}
        assert body(warm) == body(cold)

    def test_truncated_rewriting_not_cached(self, client):
        kwargs = dict(theory=TC, query="E(x,y)", free=["x", "y"],
                      params={"max_steps": 100, "max_queries": 20},
                      tenant="warm-test")
        first = client.request("rewrite", **kwargs)
        assert first["status"] == "budget-exhausted"
        second = client.request("rewrite", **kwargs)
        assert "cached" not in second

    def test_sessions_isolated_by_tenant(self, client):
        client.request("chase", theory=LINEAR, database=DB, tenant="alpha",
                       params={"depth": 2})
        client.request("chase", theory=LINEAR, database=DB, tenant="beta",
                       params={"depth": 2})
        stats = client.request("stats")
        tenants = stats["registry"]["tenants"]
        assert "alpha" in tenants and "beta" in tenants
        assert tenants["alpha"]["theories"] == 1

    def test_parse_cache_hits_accumulate(self, client):
        tenant = "hit-counter"
        for _ in range(3):
            client.request("chase", theory=LINEAR, database=DB,
                           tenant=tenant, params={"depth": 2})
        stats = client.request("stats")["registry"]["tenants"][tenant]
        assert stats["parse_misses"] == 2  # one theory + one database
        assert stats["parse_hits"] >= 4

    def test_session_close(self, client):
        client.request("ping", tenant="ephemeral")
        response = client.request("session-close", tenant="ephemeral")
        assert response["status"] == "closed"
        again = client.request("session-close", tenant="ephemeral")
        assert again["status"] == "not-found"


class TestViews:
    def test_view_lifecycle_matches_cli_incremental(self, client):
        tenant = "view-test"
        created = client.request("view-create", view="tc", tenant=tenant,
                                 theory=TC, database="E(a,b)\nE(b,c)",
                                 params={"depth": 8})
        assert created["status"] == "saturated"
        updated = client.request("view-update", view="tc", tenant=tenant,
                                 adds=["E(c,d)"], removes=["E(a,b)"])
        assert updated["status"] == "saturated"
        # the CLI's one-shot incremental run over the same script must
        # land on the same fact set
        _, expected = cli_json(
            "-e", "chase", TC, "E(a,b)\nE(b,c)", "--depth", "8",
            "--incremental", "+ E(c,d)\n- E(a,b)",
        )
        assert updated["facts"] == expected["facts"]

    def test_view_query_three_valued(self, client):
        tenant = "view-test-q"
        client.request("view-create", view="v", tenant=tenant,
                       theory=TC, database="E(a,b)\nE(b,c)")
        certain = client.request("view-query", view="v", tenant=tenant,
                                 query="E('a','c')")
        assert certain["status"] == "certain"
        assert certain["exit_code"] == 0
        absent = client.request("view-query", view="v", tenant=tenant,
                                query="E('c','a')")
        assert absent["status"] == "not-certain"

    def test_view_free_variables(self, client):
        tenant = "view-test-free"
        client.request("view-create", view="v", tenant=tenant,
                       theory=TC, database="E(a,b)\nE(b,c)")
        response = client.request("view-query", view="v", tenant=tenant,
                                  query="E('a',x)", free=["x"])
        assert sorted(response["answers"]) == [["b"], ["c"]]

    def test_view_close_and_missing(self, client):
        tenant = "view-test-close"
        client.request("view-create", view="v", tenant=tenant,
                       theory=TC, database=DB)
        assert client.request("view-close", view="v",
                              tenant=tenant)["status"] == "closed"
        gone = client.request("view-update", view="v", tenant=tenant,
                              adds=["E(b,c)"])
        assert gone["status"] == "error"
        assert "no view" in gone["error"]


class TestStorePerRequest:
    @pytest.mark.parametrize("store", ["dict", "columnar"])
    def test_chase_on_either_backend(self, client, store):
        response = client.request(
            "chase", theory=LINEAR, database=DB,
            params={"depth": 3, "store": store},
        )
        assert response["status"] == "truncated"
        assert response["counts"]["facts"] == 4

    def test_bad_store_is_an_error(self, client):
        response = client.request(
            "chase", theory=LINEAR, database=DB, params={"store": "rowwise"}
        )
        assert response["status"] == "error"


class TestLifecycle:
    def test_shutdown_op(self):
        with ServerThread(workers=1) as handle:
            with handle.client() as client:
                response = client.request("shutdown")
                assert response["status"] == "shutting-down"
            handle._thread.join(timeout=30)
            assert not handle._thread.is_alive()
        assert handle.exit_code == 0

    def test_requests_rejected_while_draining(self):
        # a long-running job holds the drain open; a second client's
        # request must be rejected, not queued forever
        import time

        config = ServeConfig(workers=1, drain_ms=2000.0)
        with ServerThread(config) as handle:
            with handle.client() as busy, handle.client() as late:
                # a ping each proves both connections are accepted (a
                # backlogged connect would be orphaned by the listener
                # close below)
                assert busy.ping() and late.ping()
                rid = busy.submit(
                    "fc-search",
                    theory="E(x,y) -> exists z. E(y,z)\n" + TC,
                    database=DB, query="E(x,x)",
                    params={"max_elements": 30, "max_nodes": 100_000_000},
                )
                # wait until the fc-search is truly dispatched: the two
                # pings plus the search make three counted requests
                # (polling `_jobs` instead is racy — a just-finished
                # ping's task lingers there until its done-callback)
                for _ in range(200):
                    if handle.server.requests >= 3:
                        break
                    time.sleep(0.05)
                assert handle.server.requests >= 3
                handle.server.request_shutdown(0)
                rejected = None
                for _ in range(200):
                    try:
                        rejected = late.request("ping")
                        if rejected["status"] == "error":
                            break
                    except ConnectionError:
                        rejected = None
                        break
                response = busy.response_for(rid)
                assert response["stopped_reason"] == "cancelled"
                if rejected is not None:
                    assert "draining" in rejected["error"]

    def test_unix_socket(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        with ServerThread(ServeConfig(path=path, workers=1)) as handle:
            with handle.client() as client:
                assert client.ping()
                response = client.request("chase", theory=LINEAR,
                                          database=DB, params={"depth": 2})
                assert response["command"] == "chase"


class TestRequestLineBound:
    """Satellite: an oversized request line gets a well-formed error
    and the connection *survives* (the old loop dropped it)."""

    def test_oversized_line_answered_and_connection_survives(self):
        with ServerThread(workers=1, max_line_bytes=4096) as handle:
            with handle.client() as client:
                client.send_raw(
                    b'{"op": "ping", "id": 1, "junk": "'
                    + b"x" * 8192 + b'"}'
                )
                response = client.recv()
                assert response["ok"] is False
                assert response["error"] == "request_too_large"
                assert response["max_line_bytes"] == 4096
                assert response["id"] is None
                # Same connection, next request: served normally.
                assert client.request("ping")["status"] == "pong"
                assert handle.server.oversized == 1

    def test_line_under_the_bound_passes(self):
        with ServerThread(workers=1, max_line_bytes=4096) as handle:
            with handle.client() as client:
                response = client.request("ping", pad="y" * 2000)
                assert response["status"] == "pong"

    def test_several_oversized_lines_in_a_row(self):
        with ServerThread(workers=1, max_line_bytes=2048) as handle:
            with handle.client() as client:
                for _ in range(3):
                    client.send_raw(b"z" * 5000)
                    assert client.recv()["error"] == "request_too_large"
                assert client.ping()


class TestBindFailure:
    """Satellite: bind failures exit with one-line JSON on stderr and
    a documented nonzero code, not an asyncio traceback."""

    def test_port_in_use(self, capsys):
        from repro.payloads import EXIT_ERROR
        from repro.serve import run_server

        with ServerThread(workers=1) as handle:
            config = ServeConfig(
                host="127.0.0.1", port=handle.port, workers=1
            )
            code = run_server(config)
        assert code == EXIT_ERROR
        lines = [
            line for line in capsys.readouterr().err.splitlines() if line
        ]
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["ok"] is False
        assert payload["error"] == "bind_failed"
        assert payload["port"] == config.port
        assert payload["exit_code"] == EXIT_ERROR
        assert "Errno" in payload["detail"] or payload["detail"]

    def test_bad_unix_socket_path(self, capsys, tmp_path):
        from repro.payloads import EXIT_ERROR
        from repro.serve import run_server

        bad = str(tmp_path / "missing-dir" / "repro.sock")
        code = run_server(ServeConfig(path=bad, workers=1))
        assert code == EXIT_ERROR
        payload = json.loads(capsys.readouterr().err.strip())
        assert payload["error"] == "bind_failed"
        assert payload["path"] == bad

    def test_cli_serve_bind_failure_exit_code(self, capsys):
        from repro.payloads import EXIT_ERROR

        with ServerThread(workers=1) as handle:
            code = cli_main([
                "serve", "--port", str(handle.port), "--workers", "1",
            ])
        assert code == EXIT_ERROR
        payload = json.loads(capsys.readouterr().err.strip())
        assert payload["error"] == "bind_failed"
