"""The thread-safety audit's regression battery.

The server shares four process-wide caches across its worker pool:
``PLAN_CACHE`` (compiled join plans), the ``cq_subsumes``
normalise/freeze memos, the ``enumerate_type_queries`` memo, and each
columnar ``copy()`` family's ``TermTable``.  Each test here hammers
one of them from N threads and asserts no corruption, no duplicate
interning, and agreement with a single-threaded reference — exactly
the invariants the audit's locks exist to protect.  (Before the
locks, ``TermTable.intern`` could hand two elements the same dense id
from concurrent misses — an id-decode corruption, not just a stale
stat.)
"""

import threading

import pytest

from repro.lf import parse_query, parse_structure, parse_theory
from repro.lf.plan import PLAN_CACHE, clear_plan_cache, plan_for
from repro.lf.terms import Constant
from repro.ptypes.bruteforce import clear_type_query_cache, enumerate_type_queries
from repro.rewriting.subsume import clear_subsume_cache, cq_subsumes
from repro.store import StoreBackend, ensure_backend
from repro.store.termtable import TermTable

pytestmark = pytest.mark.timeout(120)

THREADS = 8
ROUNDS = 3


def hammer(worker, threads=THREADS):
    """Run *worker(index)* on N threads behind a start barrier; re-raise
    the first failure."""
    barrier = threading.Barrier(threads)
    failures = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as error:  # noqa: BLE001 - reported below
            failures.append(error)

    pool = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if failures:
        raise failures[0]


class TestTermTableInterning:
    def test_concurrent_interning_no_duplicates(self):
        for _ in range(ROUNDS):
            table = TermTable()
            # heavily overlapping element pools: every thread races on
            # most of its interns
            pools = [
                [Constant(f"c{(i * 7 + j) % 300}") for j in range(400)]
                for i in range(THREADS)
            ]
            results = [None] * THREADS

            def worker(index):
                results[index] = [table.intern(e) for e in pools[index]]

            hammer(worker)
            unique = {e for pool in pools for e in pool}
            assert len(table) == len(unique)
            # dense, collision-free ids that decode back to their element
            seen = set()
            for pool, ids in zip(pools, results):
                for element, eid in zip(pool, ids):
                    assert 0 <= eid < len(unique)
                    assert table.element(eid) == element
                    assert table.id_of(element) == eid
                    seen.add(eid)
            assert seen == set(range(len(unique)))

    def test_shared_copy_family_chase(self):
        # the server scenario: one cached columnar database, N workers
        # chasing independent copies that share its TermTable
        from repro.chase import ChaseConfig, chase

        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        base = ensure_backend(
            parse_structure("\n".join(f"E(n{i},n{i+1})" for i in range(12))),
            StoreBackend.COLUMNAR,
        )
        reference = chase(base, theory, ChaseConfig(max_depth=8))
        expected = {str(f) for f in reference.structure.facts()}
        outputs = [None] * THREADS

        def worker(index):
            result = chase(base, theory, ChaseConfig(max_depth=8))
            outputs[index] = {str(f) for f in result.structure.facts()}

        hammer(worker)
        assert all(facts == expected for facts in outputs)


class TestPlanCache:
    def test_one_plan_object_per_shape(self):
        structure = parse_structure("E(a,b)\nE(b,c)\nR(a,c)")
        shapes = [
            parse_query("E(x,y), E(y,z)", free=["x", "z"]),
            parse_query("E(x,y), R(x,z)", free=["y", "z"]),
            parse_query("R(x,y)", free=["x", "y"]),
            parse_query("E(x,y), E(y,z), R(x,z)", free=["x"]),
        ]
        for _ in range(ROUNDS):
            clear_plan_cache()
            results = [None] * THREADS

            def worker(index):
                results[index] = [
                    plan_for(q.atoms, frozenset(), structure) for q in shapes
                ] * 5

            hammer(worker)
            # every thread must have received the *same* compiled plan
            # per shape (the locked miss path compiles exactly once)
            for position in range(len(shapes)):
                identities = {id(r[position]) for r in results}
                assert len(identities) == 1
            assert len(PLAN_CACHE) == len(shapes)

    def test_concurrent_answers_match_reference(self):
        structure = parse_structure(
            "\n".join(f"E(n{i},n{i+1})" for i in range(20))
        )
        query = parse_query("E(x,y), E(y,z)", free=["x", "z"])
        clear_plan_cache()
        plan = plan_for(query.atoms, frozenset(), structure)
        expected = {tuple(b[v] for v in query.free)
                    for b in plan.bindings(structure)}
        outputs = [None] * THREADS

        def worker(index):
            p = plan_for(query.atoms, frozenset(), structure)
            outputs[index] = {tuple(b[v] for v in query.free)
                              for b in p.bindings(structure)}

        hammer(worker)
        assert all(found == expected for found in outputs)


class TestSubsumeMemo:
    def test_concurrent_subsumption_matches_reference(self):
        queries = [
            parse_query("E(x,y), E(y,z)", free=["x"]),
            parse_query("E(x,y)", free=["x"]),
            parse_query("E(x,x)", free=["x"]),
            parse_query("E(x,y), E(y,x)", free=["x"]),
            parse_query("E(x,y), E(y,z), E(z,w)", free=["x"]),
        ]
        pairs = [(a, b) for a in queries for b in queries]
        clear_subsume_cache()
        reference = [cq_subsumes(a, b) for a, b in pairs]
        for _ in range(ROUNDS):
            clear_subsume_cache()
            outputs = [None] * THREADS

            def worker(index):
                outputs[index] = [cq_subsumes(a, b) for a, b in pairs] \
                    == reference

            hammer(worker)
            assert all(outputs)

    def test_concurrent_clears_do_not_corrupt(self):
        a = parse_query("E(x,y), E(y,z)", free=["x"])
        b = parse_query("E(x,y)", free=["x"])
        expected = cq_subsumes(b, a)

        def worker(index):
            for _ in range(200):
                if index == 0:
                    clear_subsume_cache()
                assert cq_subsumes(b, a) == expected

        hammer(worker)


class TestTypeQueryMemo:
    def test_concurrent_enumeration_identical(self):
        signature = {"E": 2, "P": 1}
        constants = (Constant("a"),)
        clear_type_query_cache()
        reference = list(
            enumerate_type_queries(signature, constants, 2, 2)
        )
        for _ in range(ROUNDS):
            clear_type_query_cache()
            outputs = [None] * THREADS

            def worker(index):
                outputs[index] = list(
                    enumerate_type_queries(signature, constants, 2, 2)
                )

            hammer(worker)
            assert all(found == reference for found in outputs)
