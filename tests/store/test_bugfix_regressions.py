"""Regression tests for the three Structure bugfixes that shipped with
the fact-store layer:

1. value ``__eq__`` paired with identity ``__hash__`` (equal
   structures landed in different hash buckets) — structures are now
   explicitly unhashable, with ``frozen_key()`` as the supported key;
2. ``discard_fact`` leaked empty index buckets forever, and ``copy()``
   cloned the husks into every descendant;
3. ``restrict_elements`` / ``restrict_signature`` re-validated every
   already-validated fact via ``add_fact``.
"""

import pytest

from repro.lf import Atom, Constant, Structure, parse_structure
from repro.store import ColumnarStructure


def a(name):
    return Constant(name)


def E(x, y):
    return Atom("E", (a(x), a(y)))


def U(x):
    return Atom("U", (a(x),))


BACKENDS = [
    lambda text: parse_structure(text),
    lambda text: ColumnarStructure.from_structure(parse_structure(text)),
]


class TestHashEqContract:
    @pytest.mark.parametrize("make", BACKENDS)
    def test_structures_are_unhashable(self, make):
        s = make("E(a,b)")
        with pytest.raises(TypeError):
            hash(s)
        with pytest.raises(TypeError):
            {s}
        with pytest.raises(TypeError):
            {s: 1}

    @pytest.mark.parametrize("make", BACKENDS)
    def test_frozen_key_consistent_with_eq(self, make):
        # the old bug: a == b but hash(a) != hash(b), so sets keyed on
        # structures admitted duplicates.  The contract is now: equal
        # structures have equal (and equal-hashing) frozen keys.
        one = make("E(a,b), U(a)")
        two = make("U(a), E(a,b)")
        assert one == two
        assert one.frozen_key() == two.frozen_key()
        assert hash(one.frozen_key()) == hash(two.frozen_key())
        assert len({one.frozen_key(), two.frozen_key()}) == 1

    def test_frozen_key_matches_across_backends(self):
        d = parse_structure("E(a,b), U(a)")
        c = ColumnarStructure.from_structure(d)
        assert d == c
        assert d.frozen_key() == c.frozen_key()
        assert hash(d.frozen_key()) == hash(c.frozen_key())

    @pytest.mark.parametrize("make", BACKENDS)
    def test_frozen_key_diverges_with_value(self, make):
        s = make("E(a,b)")
        key_before = s.frozen_key()
        s.add_fact(E("b", "c"))
        assert s.frozen_key() != key_before


class TestBucketPruning:
    def test_discard_prunes_empty_buckets(self):
        s = Structure([E("a", "b"), U("a")])
        s.discard_fact(E("a", "b"))
        assert "E" not in s._by_pred
        assert all("E" != pred for pred, _, _ in s._by_pred_pos)
        # partial removal keeps the predicate's remaining buckets
        s2 = Structure([E("a", "b"), E("a", "c")])
        s2.discard_fact(E("a", "b"))
        assert len(s2._by_pred["E"]) == 1
        assert ("E", 1, a("b")) not in s2._by_pred_pos
        assert ("E", 0, a("a")) in s2._by_pred_pos

    def test_copy_carries_no_empty_buckets(self):
        s = Structure([E("a", "b"), E("c", "d"), U("a")])
        s.discard_fact(E("a", "b"))
        s.discard_fact(U("a"))
        clone = s.copy()
        assert all(clone._by_pred.values())
        assert all(clone._by_pred_pos.values())
        assert "U" not in clone._by_pred

    def test_discard_heavy_loop_leaves_no_residue(self):
        s = Structure([])
        for i in range(50):
            s.add_fact(Atom("E", (a(f"x{i}"), a(f"y{i}"))))
        for i in range(50):
            s.discard_fact(Atom("E", (a(f"x{i}"), a(f"y{i}"))))
        assert len(s) == 0
        assert s._by_pred == {}
        assert s._by_pred_pos == {}

    def test_columnar_discard_prunes_relation_and_buckets(self):
        c = ColumnarStructure([E("a", "b"), E("a", "c")])
        c.discard_fact(E("a", "b"))
        rel = c._rels["E"]
        assert all(rel.index.values())
        c.discard_fact(E("a", "c"))
        assert "E" not in c._rels


class TestRestrictionFastPath:
    @pytest.mark.parametrize("make", BACKENDS)
    def test_restrictions_skip_revalidation(self, make, monkeypatch):
        # the regression benchmark assertion: restriction must not
        # re-run per-fact signature validation (the facts already
        # passed it when first added), so a poisoned _check_signature
        # must never fire during restrict_*.
        s = make("E(a,b), E(b,c), U(a), U(b)")

        def boom(fact):
            raise AssertionError(f"restriction re-validated {fact}")

        monkeypatch.setattr(type(s), "_check_signature", lambda self, fact: boom(fact))
        by_elements = s.restrict_elements([a("a"), a("b")])
        by_signature = s.restrict_signature(["U"])
        assert by_elements.facts() == {E("a", "b"), U("a"), U("b")}
        assert by_signature.facts() == {U("a"), U("b")}

    @pytest.mark.parametrize("make", BACKENDS)
    def test_restriction_semantics_unchanged(self, make):
        s = make("E(a,b), E(b,c), E(c,a), U(b)")
        r = s.restrict_elements([a("a"), a("b")])
        assert r.facts() == {E("a", "b"), U("b")}
        assert r.domain() == {a("a"), a("b")}
        rs = s.restrict_signature(["E"])
        assert rs.facts() == {E("a", "b"), E("b", "c"), E("c", "a")}
        assert rs.domain() == s.domain()
        assert set(rs.signature.relations) == {"E"}

    @pytest.mark.parametrize("make", BACKENDS)
    def test_restricted_structures_stay_mutable(self, make):
        r = make("E(a,b), U(a)").restrict_signature(["E"])
        assert r.add_fact(E("b", "c"))
        assert r.discard_fact(E("a", "b"))
        assert r.facts() == {E("b", "c")}
