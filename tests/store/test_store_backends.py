"""Unit tests of the fact-store layer: TermTable, ColumnarStructure,
backend selection, and cross-backend protocol equivalence."""

import pytest

from repro.chase import ChaseConfig, chase
from repro.lf import Atom, Constant, Null, parse_structure, parse_theory
from repro.store import (
    STORE_ENV_VAR,
    ColumnarStructure,
    StoreBackend,
    TermTable,
    ensure_backend,
    resolve_backend,
)


def a(name):
    return Constant(name)


def E(x, y):
    return Atom("E", (a(x), a(y)))


def U(x):
    return Atom("U", (a(x),))


class TestTermTable:
    def test_intern_is_stable_and_dense(self):
        table = TermTable()
        ids = [table.intern(a("x")), table.intern(a("y")), table.intern(a("x"))]
        assert ids == [0, 1, 0]
        assert len(table) == 2
        assert table.element(0) == a("x")
        assert table.element(1) == a("y")

    def test_id_of_miss_is_none(self):
        table = TermTable()
        table.intern(a("x"))
        assert table.id_of(a("x")) == 0
        assert table.id_of(a("zz")) is None

    def test_nulls_and_constants_do_not_collide(self):
        table = TermTable()
        i = table.intern(Constant("n0"))
        j = table.intern(Null(0))
        assert i != j


class TestColumnarStructure:
    def test_add_and_dedup(self):
        s = ColumnarStructure()
        assert s.add_fact(E("a", "b"))
        assert not s.add_fact(E("a", "b"))
        assert len(s) == 1
        assert s.has_fact(E("a", "b"))
        assert not s.has_fact(E("b", "a"))

    def test_views_match_dict_backend(self):
        text = "E(a,b), E(b,c), E(a,c), U(a), R(a,b,c)"
        d = parse_structure(text)
        c = ColumnarStructure.from_structure(d)
        assert set(c.facts_with_pred_view("E")) == set(d.facts_with_pred_view("E"))
        assert set(c.facts_with_view("E", 0, a("a"))) == set(
            d.facts_with_view("E", 0, a("a"))
        )
        assert c.facts_with_pred("missing") == frozenset()
        assert c.pred_size("E") == 3
        assert c.facts_about(a("a")) == d.facts_about(a("a"))
        assert c.successors(a("a")) == d.successors(a("a"))
        assert c.predecessors(a("c")) == d.predecessors(a("c"))
        assert c.predicates_in_use() == d.predicates_in_use()
        assert c.domain() == d.domain()
        assert sorted(map(str, c.sorted_facts())) == sorted(map(str, d.sorted_facts()))

    def test_discard_tombstones_and_prunes(self):
        c = ColumnarStructure([E("a", "b"), E("b", "c"), U("a")])
        assert c.discard_fact(E("a", "b"))
        assert not c.discard_fact(E("a", "b"))
        assert not c.discard_fact(Atom("E", (a("zz"), a("zz"))))
        assert len(c) == 2
        assert not c.has_fact(E("a", "b"))
        assert c.facts() == {E("b", "c"), U("a")}
        assert c.discard_fact(U("a"))
        assert "U" not in c.predicates_in_use()
        # domain is never shrunk by discards (same contract as dict)
        assert a("a") in c.domain()

    def test_copy_is_cow_and_independent(self):
        base = ColumnarStructure([E("a", "b"), U("a")])
        left = base.copy()
        right = base.copy()
        left.add_fact(E("b", "c"))
        right.discard_fact(U("a"))
        assert base.facts() == {E("a", "b"), U("a")}
        assert left.facts() == {E("a", "b"), U("a"), E("b", "c")}
        assert right.facts() == {E("a", "b")}
        # the untouched relation object is still physically shared
        assert left._rels["U"] is base._rels["U"]

    def test_copy_after_discard_compacts(self):
        base = ColumnarStructure([E("a", "b"), E("b", "c"), E("c", "d")])
        base.discard_fact(E("b", "c"))
        clone = base.copy()
        clone.add_fact(E("x", "y"))  # forces the COW clone of E
        rel = clone._rels["E"]
        assert len(rel.atoms) == len(rel.rows)  # no tombstones survived
        assert clone.facts() == {E("a", "b"), E("c", "d"), E("x", "y")}

    def test_restrict_elements(self):
        c = ColumnarStructure([E("a", "b"), E("b", "c"), U("a")])
        r = c.restrict_elements([a("a"), a("b")])
        assert r.is_columnar
        assert r.facts() == {E("a", "b"), U("a")}
        assert r.domain() == {a("a"), a("b")}

    def test_restrict_signature_shares_relations(self):
        c = ColumnarStructure([E("a", "b"), U("a")])
        r = c.restrict_signature(["E"])
        assert r.is_columnar
        assert r.facts() == {E("a", "b")}
        assert r.domain() == c.domain()
        # COW: mutating either side afterwards does not leak across
        c.add_fact(E("b", "a"))
        assert r.facts() == {E("a", "b")}

    def test_strict_mode_and_arity_validation(self):
        from repro.errors import ArityError, SignatureError

        c = ColumnarStructure([E("a", "b")])
        with pytest.raises(ArityError):
            c.add_fact(Atom("E", (a("a"),)))
        strict = ColumnarStructure(signature=c.signature, strict=True)
        with pytest.raises(SignatureError):
            strict.add_fact(Atom("Brand", (a("a"),)))

    def test_variables_rejected(self):
        from repro.lf import Variable

        c = ColumnarStructure()
        with pytest.raises(ValueError):
            c.add_fact(Atom("E", (Variable("x"), a("b"))))

    def test_cross_backend_equality_and_containment(self):
        d = parse_structure("E(a,b), U(a)")
        c = ColumnarStructure.from_structure(d)
        assert c == d and d == c
        assert c.same_facts(d) and d.same_facts(c)
        assert c.contains_structure(d) and d.contains_structure(c)
        assert c.frozen_key() == d.frozen_key()
        c.add_fact(E("b", "c"))
        assert c != d
        assert not c.same_facts(d)
        assert c.contains_structure(d)
        assert not d.contains_structure(c)


class TestBackendSelection:
    def test_resolve_explicit(self):
        assert resolve_backend("columnar") is StoreBackend.COLUMNAR
        assert resolve_backend(StoreBackend.DICT) is StoreBackend.DICT
        with pytest.raises(ValueError):
            resolve_backend("rowwise")

    def test_resolve_env(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_backend() is None
        monkeypatch.setenv(STORE_ENV_VAR, "columnar")
        assert resolve_backend() is StoreBackend.COLUMNAR
        # explicit choice wins over the environment
        assert resolve_backend("dict") is StoreBackend.DICT
        monkeypatch.setenv(STORE_ENV_VAR, "")
        assert resolve_backend() is None

    def test_ensure_backend_converts_and_copies(self):
        d = parse_structure("E(a,b), E(b,c)")
        kept = ensure_backend(d, None)
        assert not kept.is_columnar and kept is not d and kept == d
        c = ensure_backend(d, StoreBackend.COLUMNAR)
        assert c.is_columnar and c == d
        back = ensure_backend(c, StoreBackend.DICT)
        assert not back.is_columnar and back == d
        same = ensure_backend(c, StoreBackend.COLUMNAR, copy=False)
        assert same is c

    def test_config_store_field_coerces_strings(self):
        config = ChaseConfig(store="columnar")
        assert config.store is StoreBackend.COLUMNAR
        with pytest.raises(ValueError):
            ChaseConfig(store="rowwise")

    def test_chase_converts_working_copy(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        d = parse_structure("E(a,b), E(b,c), E(c,d)")
        result = chase(d, theory, ChaseConfig(store="columnar"))
        assert result.structure.is_columnar
        baseline = chase(d, theory, ChaseConfig())
        assert not baseline.structure.is_columnar
        assert result.structure.same_facts(baseline.structure)

    def test_env_var_drives_engines(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, "columnar")
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        result = chase(parse_structure("E(a,b), E(b,c)"), theory, ChaseConfig())
        assert result.structure.is_columnar
