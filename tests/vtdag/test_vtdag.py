"""Tests for VTDAG recognition and predecessor sets (Def. 10, 11, 13)."""

from repro.lf import Constant, Null, Structure, atom
from repro.vtdag import (
    is_forest,
    is_vtdag,
    iterated_predecessors,
    max_degree,
    predecessor_neighbourhood,
    predecessor_set,
    vtdag_report,
)

a, b = Constant("a"), Constant("b")
n = [Null(i) for i in range(20)]


def chain(length):
    return Structure(atom("E", n[i], n[i + 1]) for i in range(length))


class TestPredecessorSets:
    def test_constant_is_its_own_set(self):
        s = Structure([atom("E", n[0], a)])
        assert predecessor_set(s, a) == {a}

    def test_nonconstant_includes_parents(self):
        s = chain(3)
        assert predecessor_set(s, n[1]) == {n[0], n[1]}

    def test_constant_parents_excluded(self):
        s = Structure([atom("E", a, n[0]), atom("E", n[1], n[0])])
        assert predecessor_set(s, n[0]) == {n[0], n[1]}

    def test_iterated(self):
        s = chain(6)
        assert iterated_predecessors(s, n[4], 0) == {n[3], n[4]}
        assert iterated_predecessors(s, n[4], 1) == {n[2], n[3], n[4]}
        assert iterated_predecessors(s, n[4], 3) == {n[0], n[1], n[2], n[3], n[4]}

    def test_iterated_stops_at_closure(self):
        s = chain(3)
        assert iterated_predecessors(s, n[2], 50) == {n[0], n[1], n[2]}

    def test_neighbourhood_includes_constants(self):
        s = Structure([atom("E", a, b), atom("E", n[0], n[1])])
        hood = predecessor_neighbourhood(s, n[1])
        assert a in hood.domain()
        assert atom("E", a, b) in hood


class TestVTDAG:
    def test_tree_is_vtdag(self):
        tree = Structure(
            [atom("F", n[0], n[1]), atom("G", n[0], n[2]), atom("F", n[1], n[3])]
        )
        assert is_vtdag(tree)

    def test_chain_is_vtdag_and_forest(self):
        s = chain(6)
        assert is_vtdag(s)
        assert is_forest(s)

    def test_directed_cycle_rejected(self):
        cycle = Structure(
            [atom("E", n[0], n[1]), atom("E", n[1], n[2]), atom("E", n[2], n[0])]
        )
        report = vtdag_report(cycle)
        assert not report.is_vtdag
        assert any("cycle" in v for v in report.violations)

    def test_two_parents_same_relation_rejected(self):
        s = Structure([atom("E", n[0], n[2]), atom("E", n[1], n[2])])
        report = vtdag_report(s)
        assert not report.is_vtdag
        assert any("predecessors" in v for v in report.violations)

    def test_two_parents_different_relations_need_clique(self):
        # n2 has parents n0 (via E) and n1 (via R); they are unrelated,
        # so P(n2) is not a directed clique.
        s = Structure([atom("E", n[0], n[2]), atom("R", n[1], n[2])])
        report = vtdag_report(s)
        assert not report.is_vtdag
        assert any("clique" in v for v in report.violations)

    def test_vtdag_with_comparable_parents(self):
        # n2's parents are n0, n1 with n0 also a parent of n1: a clique.
        s = Structure(
            [atom("E", n[0], n[1]), atom("R", n[0], n[2]), atom("E", n[1], n[2])]
        )
        assert is_vtdag(s)
        assert not is_forest(s)  # two non-constant parents

    def test_constants_do_not_break_vtdag(self):
        # many edges from constants are fine: P only sees non-constants
        s = Structure([atom("E", a, n[0]), atom("R", b, n[0]), atom("E", n[0], n[1])])
        assert is_vtdag(s)

    def test_forest_rejects_two_parents(self):
        s = Structure([atom("E", n[0], n[2]), atom("R", n[1], n[2])])
        assert not is_forest(s)

    def test_max_degree(self):
        star = Structure([atom("E", n[0], n[i]) for i in range(1, 6)])
        assert max_degree(star) == 5
