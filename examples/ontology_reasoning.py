#!/usr/bin/env python3
"""Ontology-mediated query answering over an incomplete HR database.

The motivating scenario for Datalog∃ (Section 1 of the paper): the
database is *incomplete* (open-world), the ontology says every employee
reports to someone and managers are employees, and we want the answers
that are certain in every completion.

Run:  python examples/ontology_reasoning.py
"""

from repro import parse_query, parse_structure, parse_theory
from repro.chase import certain_answers, certain_boolean
from repro.classes import classify
from repro.core import build_finite_counter_model
from repro.rewriting import answers_by_rewriting, rewrite


def main() -> None:
    ontology = parse_theory(
        """
        Emp(x) -> exists m. ReportsTo(x, m)
        ReportsTo(x, m) -> Mgr(m)
        Mgr(x) -> Emp(x)
        WorksOn(x, p) -> Emp(x)
        Mentors(x, y), Mgr(x) -> Coaches(x, y)
        """
    )
    database = parse_structure(
        """
        Emp(ada)
        WorksOn(grace, compilers)
        ReportsTo(ada, barbara)
        Mentors(barbara, grace)
        """
    )
    print("Ontology:")
    for rule in ontology:
        print("   ", rule)
    print("Profile:", {k: v for k, v in classify(ontology).items() if v})

    # ------------------------------------------------------------------
    # Certain answers: who is certainly an employee?  Grace is — she
    # works on a project — even though Emp(grace) is not a stored fact.
    # ------------------------------------------------------------------
    employees, complete = certain_answers(
        database, ontology, parse_query("Emp(x)", free=["x"]), max_depth=8
    )
    print("\nCertain employees:", sorted(str(e[0]) for e in employees),
          f"(complete={complete})")

    # Coaching is derived: barbara manages ada, so her mentoring counts.
    coaching = certain_boolean(
        database, ontology, parse_query("Coaches('barbara', 'grace')"), max_depth=8
    )
    print("Coaches(barbara, grace) is certain:", coaching)

    # ------------------------------------------------------------------
    # The same answers by query rewriting — no chase over the data at
    # all, just a UCQ over the raw database (Definition 2: BDD).
    # ------------------------------------------------------------------
    query = parse_query("Mgr(x)", free=["x"])
    rewriting = rewrite(query, ontology)
    print(f"\nRewriting of Mgr(x): {len(rewriting.ucq)} disjuncts")
    for disjunct in rewriting.ucq:
        print("   ", disjunct)
    managers = answers_by_rewriting(database, ontology, query)
    print("Certain managers:", sorted(str(m[0]) for m in managers))

    # ------------------------------------------------------------------
    # Finite controllability in action: "is someone their own manager?"
    # is NOT certain — and because the ontology is binary and BDD, the
    # paper's Theorem 2 produces a concrete finite completion where it
    # is false.
    # ------------------------------------------------------------------
    loop = parse_query("ReportsTo(x, x)")
    # witnesses appear every 3 rounds (Mgr -> Emp -> witness), so the
    # managerial chain needs a deeper truncation than the default
    from repro.core import PipelineConfig
    result = build_finite_counter_model(
        ontology, database, loop, PipelineConfig(chase_depths=(45,))
    )
    print(f"\nReportsTo(x,x) not certain: a finite completion with "
          f"{result.model_size} elements avoids it "
          f"(η={result.eta}, κ={result.kappa}).")


if __name__ == "__main__":
    main()
