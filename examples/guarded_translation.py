#!/usr/bin/env python3
"""Guarded Datalog∃ is binary in disguise (Section 5.6).

A guarded ontology over ternary predicates is mechanically rewritten
into a *binary* program with parent links F_i, creation edges ER_R, and
monadic tuple memories — and certain answers survive the trip.

Run:  python examples/guarded_translation.py
"""

from repro import parse_query, parse_structure, parse_theory
from repro.chase import certain_boolean, chase
from repro.classes import classify, is_guarded
from repro.transforms import guarded_to_binary


def main() -> None:
    theory = parse_theory(
        """
        P(x,y,z) -> exists w. R(y,z,w)
        R(x,y,z) -> exists w. P(z,y,w)
        P(x,y,z), S(y) -> G(z)
        """
    )
    database = parse_structure("P(a,b,c)\nS(b)")
    print("Guarded theory (max arity 3):")
    for rule in theory:
        print("   ", rule)
    print("guarded:", is_guarded(theory), "| binary:", theory.is_binary)

    translation = guarded_to_binary(theory)
    print(f"\nBinary translation: {len(translation.theory)} rules over "
          f"{len(translation.theory.signature.relation_names())} binary/unary "
          f"predicates (K = {translation.parent_count} parent indices)")
    for rule in list(translation.theory)[:6]:
        print("   ", rule)
    print("    ...")

    translated_db = translation.translate_database(database)
    print(f"\nDatabase translation: {len(database)} facts → "
          f"{len(translated_db)} binary facts")
    for fact in translated_db.sorted_facts():
        print("   ", fact)

    print("\nCertain-answer agreement:")
    for text, depth in (("G('c')", 4), ("G('a')", 4), ("R('b','c',w)", 4)):
        query = parse_query(text)
        original = certain_boolean(database, theory, query, max_depth=depth)
        translated_query = translation.translate_query(query)
        binary = certain_boolean(
            translated_db, translation.theory, translated_query, max_depth=2 * depth
        )
        print(f"    {text:16}  original: {original!s:5}  binary: {binary!s:5}")

    original_growth = chase(database, theory, max_depth=4)
    binary_growth = chase(translated_db, translation.theory, max_depth=8)
    print(f"\nBoth chases keep inventing witnesses (the P/R ping-pong): "
          f"{len(original_growth.new_elements)} vs "
          f"{len(binary_growth.new_elements)} new elements")


if __name__ == "__main__":
    main()
