#!/usr/bin/env python3
"""Theorem 2, step by step: building a finite counter-model.

The paper's headline construction: for a binary BDD theory T, a database
D, and a query Q not certain in (D, T), produce a *finite* model of
D ∧ T in which Q fails.  This script narrates each of the five
structures of Section 3.3 on Example 1's theory.

Run:  python examples/finite_countermodel.py
"""

from repro import parse_query, parse_structure, parse_theory
from repro.chase import chase, is_model
from repro.core import build_finite_counter_model
from repro.lf import satisfies, structure_homomorphism
from repro.rewriting import bdd_profile
from repro.skeleton import lemma3_report, skeleton
from repro.vtdag import is_vtdag


def main() -> None:
    theory = parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
        U(x,y) -> exists z. U(y,z)
        """
    )
    database = parse_structure("E(a,b)")
    query = parse_query("U(x,y)")  # "some U-atom exists": false in the chase

    print("Structure (i): the skeleton S(D, T)")
    skel = skeleton(database, theory, max_depth=8)
    report = lemma3_report(skel)
    print(f"    {skel.structure.domain_size} elements, "
          f"forest={report.forest}, VTDAG={is_vtdag(skel.structure)}, "
          f"degree ≤ {report.degree_bound} (observed {report.degree_observed})")

    print("Structure (ii): Chase(D, T) — infinite, truncated here")
    chased = chase(database, theory, max_depth=8)
    print(f"    Chase^8 has {len(chased.structure)} facts; "
          f"U-atoms: {len(chased.structure.facts_with_pred('U'))} (the chain "
          "never closes a triangle)")

    print("BDD ingredient: κ from the rule-body rewritings")
    profile = bdd_profile(theory)
    print(f"    κ = {profile.kappa}, all rewritings saturated = {profile.saturated}")

    print("Structures (iii)-(iv): M_η(S̄) and its datalog saturation")
    result = build_finite_counter_model(theory, database, query)
    model = result.model
    print(f"    chase depth used: {result.depth}, η = {result.eta}, "
          f"interior {result.interior_size} elements → model {result.model_size} elements")

    print("The finite counter-model M:")
    for fact in model.sorted_facts():
        print("   ", fact)

    print("\nVerification:")
    print("    M ⊇ D          :", model.contains_structure(database))
    print("    M ⊨ T          :", is_model(model, theory))
    print("    M ⊭ Q          :", not satisfies(model, query.boolean()))
    mapping = structure_homomorphism(
        chase(database, theory, max_depth=3).structure, model
    )
    print("    Chase^3 → M hom:", mapping is not None,
          " (M' ⊆ M: the homomorphic image of the chase, Section 2.1)")


if __name__ == "__main__":
    main()
