#!/usr/bin/env python3
"""Exploring the frontier of finite controllability (Section 5.5).

Two non-FC theories, two very different reasons:

* successor + transitivity *defines an ordering* — the textbook reason
  a theory fails FC;
* the paper's "notorious example" defines **no** ordering, refuting the
  elegant Conjecture 2, yet still fails FC: every finite model satisfies
  Φ = E(x,y) ∧ R(y,y) although the chase never does.

Run:  python examples/non_fc_explorer.py
"""

from repro import parse_query, parse_structure
from repro.chase import certain_boolean, chase, datalog_saturate, is_model
from repro.fc import every_finite_model_satisfies, find_ordering, search_finite_model
from repro.lf import satisfies
from repro.zoo import (
    remark3_theory,
    section55_database,
    section55_query,
    section55_theory,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Theory A: successor + transitivity (Remark 3's shape).
    # ------------------------------------------------------------------
    ordering_theory = remark3_theory()
    database = parse_structure("E(a,b)")
    print("Theory A (successor + transitivity):")
    for rule in ordering_theory:
        print("   ", rule)
    witness = find_ordering(ordering_theory, database, min_size=5)
    print(f"  defines an ordering?  YES: Φ(x,y) = {witness.query}, "
          f"chain of {witness.size} chase elements")
    model = search_finite_model(database, ordering_theory, max_elements=5).model
    reflexive = parse_query("E(x,x)")
    print(f"  every finite model closes a cycle: E(x,x) holds = "
          f"{satisfies(model, reflexive)}")

    # ------------------------------------------------------------------
    # Theory B: the paper's notorious example.
    # ------------------------------------------------------------------
    theory = section55_theory()
    db = section55_database()
    phi = section55_query()
    print("\nTheory B (the Section 5.5 example):")
    for rule in theory:
        print("   ", rule)

    print("  defines an ordering? ", end="")
    found = find_ordering(theory, db, min_size=5)
    print("NO (no small Φ orders the chase)" if found is None else f"yes?! {found.query}")

    verdict = certain_boolean(db, theory, phi.boolean(), max_depth=10)
    print(f"  chase satisfies Φ = E(x,y) ∧ R(y,y)?  "
          f"{'no (up to depth 10)' if verdict is not True else 'yes'}")

    holds, stats = every_finite_model_satisfies(
        db, theory, phi.boolean(), max_elements=6, max_nodes=50_000
    )
    print(f"  every finite model (≤ 6 elements) satisfies Φ?  "
          f"{holds} — exhaustive search over {stats.nodes} states, "
          f"exhausted={stats.exhausted}")

    # Replay the paper's pen-and-paper argument on a concrete lasso.
    lasso = parse_structure(
        "E(a0,a1)\nE(a1,a2)\nE(a2,a3)\nE(a3,a1)\nR(a0,a0)"
    )
    saturated = datalog_saturate(lasso, theory).structure
    print(f"  hand-built lasso model: is a model = {is_model(saturated, theory)}, "
          f"Φ holds = {satisfies(saturated, phi.boolean())} "
          "(the R-walk catches its own tail, as in the paper's proof)")


if __name__ == "__main__":
    main()
