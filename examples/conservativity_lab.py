#!/usr/bin/env python3
"""A laboratory for positive types, colorings, and conservativity.

Walks through Examples 3–6 of the paper: how quotients of a chain lose
types, how colors restore them, why the palette bounds what can be
preserved, and why a total order resists every bounded palette.

Run:  python examples/conservativity_lab.py
"""

from repro.coloring import (
    Color,
    apply_coloring,
    conservativity_report,
    cyclic_coloring,
    find_conservative,
    natural_coloring,
)
from repro.lf import Null, Structure, atom
from repro.ptypes import TypePartition, quotient


def chain(length):
    elements = [Null(i) for i in range(length + 1)]
    return Structure(atom("E", u, v) for u, v in zip(elements, elements[1:]))


def total_order(size):
    elements = [Null(i) for i in range(size)]
    return Structure(
        atom("E", elements[i], elements[j])
        for i in range(size)
        for j in range(i + 1, size)
    )


def main() -> None:
    # ------------------------------------------------------------------
    # Example 3: quotient an uncolored chain — the loop appears.
    # ------------------------------------------------------------------
    structure = chain(20)
    for n in (1, 2, 3):
        partition = TypePartition(structure, n)
        print(f"chain(20), ≡_{n}: {len(partition.classes())} classes")
    uncolored = quotient(structure, 3)
    loops = [f for f in uncolored.structure.facts_with_pred("E")
             if f.args[0] == f.args[1]]
    print(f"M_3(chain) has {uncolored.size} elements and {len(loops)} "
          "reflexive edge (Example 3's type damage)\n")

    # ------------------------------------------------------------------
    # Example 4: m+1 cyclic colors preserve types up to m — and only m.
    # ------------------------------------------------------------------
    colored = cyclic_coloring(structure, 3)
    good = conservativity_report(colored, n=4, m=2)
    bad = conservativity_report(colored, n=6, m=3)
    print("cyclic 3-coloring of the chain:")
    print(f"    conservative up to m=2 at n=4:  {good.conservative} "
          f"(quotient: {good.quotient.size} elements)")
    print(f"    conservative up to m=3 at n=6:  {bad.conservative}")
    print(f"    the witness query (the (m+1)-cycle!):  {bad.witness_query}\n")

    # ------------------------------------------------------------------
    # Example 5: the natural coloring always works on the chain.
    # ------------------------------------------------------------------
    for m in (1, 2, 3):
        witness = find_conservative(chain(30), m)
        print(f"chain(30), m={m}: natural coloring with "
              f"{witness.colored.palette_size} colors is {witness.n}-conservative "
              f"(quotient {witness.quotient.size} elements)")
    print()

    # ------------------------------------------------------------------
    # Example 6: total orders resist every bounded palette.
    # ------------------------------------------------------------------
    for palette in (2, 3):
        order = total_order(4 * palette)
        report = conservativity_report(cyclic_coloring(order, palette), n=2, m=1)
        print(f"total order({4 * palette}), palette {palette}: "
              f"conservative={report.conservative}, witness={report.witness_query}")
    print("(the witness E(y,y): merging any two comparable elements closes "
          "a forbidden loop — Example 6)")


if __name__ == "__main__":
    main()
