#!/usr/bin/env python3
"""Quickstart: theories, chases, certain answers, and rewritings.

Run:  python examples/quickstart.py
"""

from repro import parse_query, parse_structure, parse_theory
from repro.chase import certain_answers, certain_boolean, chase
from repro.classes import classify
from repro.rewriting import answer_by_rewriting, kappa, rewrite


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A Datalog∃ theory: every node has a successor, and confluent
    #    edges relate their sources (the paper's Example 7).
    # ------------------------------------------------------------------
    theory = parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(u,y) -> R(x,u)
        """
    )
    print("Theory:")
    for rule in theory:
        print("   ", rule)
    print("Class profile:", {k: v for k, v in classify(theory).items() if v})

    # ------------------------------------------------------------------
    # 2. Chase a database.  The chase is infinite here (every element
    #    demands a successor), so we truncate and inspect.
    # ------------------------------------------------------------------
    database = parse_structure("E(a,b)")
    result = chase(database, theory, max_depth=6)
    print(f"\nChase^6: {len(result.structure)} facts, "
          f"{len(result.new_elements)} invented elements, "
          f"saturated={result.saturated}")

    # ------------------------------------------------------------------
    # 3. Certain answers, two ways: via the chase and via the UCQ
    #    rewriting (Definition 2 of the paper).  They must agree.
    # ------------------------------------------------------------------
    query = parse_query("R(x,u)", free=["x", "u"])
    answers, complete = certain_answers(database, theory, query, max_depth=8)
    print(f"\nCertain answers of R(x,u) via chase: {sorted(map(str, answers))} "
          f"(complete={complete})")

    rewriting = rewrite(query, theory)
    print(f"Rewriting Φ′ ({len(rewriting.ucq)} disjuncts):")
    for disjunct in rewriting.ucq:
        print("   ", disjunct)
    boolean = parse_query("R(x,u)")
    print("D ⊨ Φ′ :", answer_by_rewriting(database, theory, boolean))
    print("chase  :", certain_boolean(database, theory, boolean, max_depth=8))

    # ------------------------------------------------------------------
    # 4. The paper's constant κ: the widest rule-body rewriting.
    # ------------------------------------------------------------------
    print(f"\nκ(theory) = {kappa(theory)}  (Section 3.3)")


if __name__ == "__main__":
    main()
