"""Theory normalisation: query hiding (♠4) and the (♠5) normal form.

Section 3.1 of the paper makes two without-loss-of-generality moves
before the main construction:

* **(♠4) query hiding** — for a query Q(x̄, y), add the TGD
  ``Q(x̄, y) ⇒ ∃z F(y, z)`` with F fresh; a finite model of ``T₀, D, ¬Q``
  exists iff a finite model of ``T, D, ¬F`` does.

* **(♠5) normal form** — every existential TGD's head has the shape
  ``∃z R(y, z)`` (the witness second), and TGPs (predicates heading
  existential TGDs) never head datalog rules.  The paper's Hint: for a
  backwards head ``∃z R(z, y)`` introduce ``R″`` with
  ``R″(x, y) → R(y, x)`` and use ``∃z R″(y, z)`` instead; TGP/datalog
  clashes are resolved by a fresh TGP copy plus a projection rule.

Both transformations preserve certain answers over the original
signature and neither changes the BDD or FC status of the theory (the
paper leaves this as an exercise; the test-suite checks it empirically
on the zoo).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NotBinaryError, RuleError
from ..lf.atoms import Atom
from ..lf.queries import ConjunctiveQuery
from ..lf.rules import Rule, Theory
from ..lf.signature import Signature
from ..lf.terms import Variable


@dataclass
class HiddenQuery:
    """The (♠4) construction.

    Attributes
    ----------
    theory:
        T₀ plus the hiding rule.
    flag_predicate:
        The fresh F: the query holds somewhere iff an F-atom is
        derivable.
    hiding_rule:
        The added rule ``Q ⇒ ∃z F(y, z)``.
    """

    theory: Theory
    flag_predicate: str
    hiding_rule: Rule


def hide_query(theory: Theory, query: ConjunctiveQuery) -> HiddenQuery:
    """Apply (♠4): fold *query* into the theory behind a fresh flag F.

    The paper's Q(x̄, y) designates one variable ``y`` as the frontier
    of the hiding rule; any variable works, and we take the first free
    variable (or the least variable of a Boolean query).
    """
    variables = sorted(query.variables())
    if not variables:
        raise RuleError("cannot hide a ground query (it has no variables)")
    anchor = query.free[0] if query.free else variables[0]
    flag = theory.signature.fresh_relation_name("F")
    witness = Variable("z_flag")
    while witness in query.variables():
        witness = Variable(witness.name + "'")
    hiding = Rule(
        query.atoms,
        (Atom(flag, (anchor, witness)),),
        label="spade4-hiding",
    )
    return HiddenQuery(
        theory=theory.with_rules([hiding]),
        flag_predicate=flag,
        hiding_rule=hiding,
    )


@dataclass
class Spade5Result:
    """The (♠5) normalisation.

    Attributes
    ----------
    theory:
        The normalised theory.
    original:
        The input theory.
    renamed_heads:
        original predicate → fresh predicate, for every head that was
        re-oriented (``R → R″``) or split off a datalog clash.
    added_rules:
        The projection datalog rules introduced by the transformation.
    """

    theory: Theory
    original: Theory
    renamed_heads: Dict[str, str] = field(default_factory=dict)
    added_rules: List[Rule] = field(default_factory=list)


def _needs_reorientation(rule: Rule) -> bool:
    """Whether an existential TGD head is not of the shape ``R(y, z)``
    with ``z`` the (sole) existential witness in second position."""
    head = rule.head_atom
    existentials = rule.existential_variables()
    if len(existentials) != 1:
        raise RuleError(
            f"(♠5) normalisation handles single-witness TGDs; use "
            f"repro.transforms for: {rule}"
        )
    if head.arity != 2:
        return True
    first, second = head.args
    witness = next(iter(existentials))
    return not (second == witness and isinstance(first, Variable) and first != witness)


def spade5_normalize(theory: Theory) -> Spade5Result:
    """Normalise *theory* into the (♠5) form of Section 3.1.

    Requires single-head rules with **binary existential-TGD heads**
    (datalog rules and rule bodies may use any arity — the paper's
    proof "only used the binarity assumption for heads of existential
    TGDs", Section 5.1).  Three fixes are applied as needed:

    1. heads ``∃z R(z, y)`` become ``∃z R″(y, z)`` with the datalog rule
       ``R″(x, y) → R(y, x)``;
    2. degenerate heads (``∃z U(z)``, ``∃z R(z, z)``, or a head whose
       first argument is a constant) are routed through a fresh binary
       predicate anchored at a body variable;
    3. a TGP also heading datalog rules gets a fresh TGP copy plus the
       projection rule ``R_t(x, y) → R(x, y)``.
    """
    for rule in theory.rules:
        if not rule.is_single_head:
            raise RuleError(f"(♠5) normalisation needs single-head rules: {rule}")
        if rule.is_existential and rule.head_atom.arity > 2:
            raise NotBinaryError(
                f"existential head of arity {rule.head_atom.arity}: {rule} — "
                "split it first with repro.transforms.split_frontier_one_heads"
            )

    signature = theory.signature
    renamed: Dict[str, str] = {}
    added: List[Rule] = []
    rewritten: List[Rule] = []

    for rule in theory.rules:
        if rule.is_datalog:
            rewritten.append(rule)
            continue
        head = rule.head_atom
        witness = next(iter(rule.existential_variables()))
        if not _needs_reorientation(rule):
            rewritten.append(rule)
            continue
        x, y = Variable("x"), Variable("y")
        if head.arity == 2 and head.args == (witness, head.args[1]) and head.args[1] != witness and isinstance(head.args[1], Variable):
            # backwards: ∃z R(z, y)  ⇒  ∃z R″(y, z), R″(x,y) → R(y,x)
            fresh = signature.fresh_relation_name(head.pred + "_rev")
            signature = signature.with_relations({fresh: 2})
            rewritten.append(
                Rule(rule.body, (Atom(fresh, (head.args[1], witness)),), rule.label)
            )
            projection = Rule((Atom(fresh, (x, y)),), (Atom(head.pred, (y, x)),), "spade5-rev")
            added.append(projection)
            renamed[head.pred] = fresh
        else:
            # degenerate: anchor at some body variable w, route through
            # a fresh binary predicate: Φ ⇒ ∃z P(w, z), P(w,z) → head'
            body_vars = sorted(rule.body_variables())
            if not body_vars:
                raise RuleError(f"body of {rule} has no variable to anchor (♠5)")
            anchor = body_vars[0]
            fresh = signature.fresh_relation_name(head.pred + "_mk")
            signature = signature.with_relations({fresh: 2})
            rewritten.append(
                Rule(rule.body, (Atom(fresh, (anchor, witness)),), rule.label)
            )
            projected_head = head.substitute({witness: y})
            projection = Rule((Atom(fresh, (x, y)),), (projected_head,), "spade5-mk")
            added.append(projection)
            renamed[head.pred] = fresh

    # TGP/datalog separation on the re-oriented rule set.
    working = Theory(rewritten + added, signature)
    tgps = working.tgp_predicates()
    datalog_heads = {
        atom.pred for rule in working.datalog_rules() for atom in rule.head
    }
    clashes = sorted(tgps & datalog_heads)
    final_rules = list(working.rules)
    for pred in clashes:
        fresh = signature.fresh_relation_name(pred + "_tgp")
        signature = signature.with_relations({fresh: 2})
        replaced: List[Rule] = []
        for rule in final_rules:
            if rule.is_existential and rule.head_atom.pred == pred:
                head = rule.head_atom
                replaced.append(Rule(rule.body, (Atom(fresh, head.args),), rule.label))
            else:
                replaced.append(rule)
        x, y = Variable("x"), Variable("y")
        projection = Rule((Atom(fresh, (x, y)),), (Atom(pred, (x, y)),), "spade5-tgp")
        replaced.append(projection)
        added.append(projection)
        renamed[pred] = fresh
        final_rules = replaced

    return Spade5Result(
        theory=Theory(final_rules, signature),
        original=theory,
        renamed_heads=renamed,
        added_rules=added,
    )


@dataclass
class PreparedTheory:
    """A theory readied for the Theorem-2 pipeline: query hidden (♠4)
    and (♠5)-normalised.

    Attributes
    ----------
    theory:
        The final theory T.
    flag_predicate:
        The F whose absence certifies ``M ⊭ Q``.
    original_theory / original_query:
        The inputs, for reporting.
    spade5:
        The normalisation details.
    """

    theory: Theory
    flag_predicate: str
    original_theory: Theory
    original_query: ConjunctiveQuery
    spade5: Spade5Result
    #: The theory whose rule-body rewritings define κ.  Equal to
    #: ``theory`` in the binary case.  On the Theorem-3 route it is the
    #: *pre-split* theory: the §5.1 join rules open a resolution
    #: back-door that makes body rewritings diverge under the split
    #: theory, while the paper's κ concerns the original bodies — whose
    #: rewritings under the original theory are exactly Ψ′.
    kappa_theory: "Optional[Theory]" = None

    @property
    def theory_for_kappa(self) -> Theory:
        """The theory to feed :func:`repro.rewriting.bdd_profile`."""
        return self.kappa_theory if self.kappa_theory is not None else self.theory


def prepare(theory: Theory, query: ConjunctiveQuery) -> PreparedTheory:
    """Apply (♠4) then (♠5); the combined preprocessing of Section 3.1.

    Binary theories pass straight through.  A non-binary theory is
    accepted when every existential TGD is *frontier-1* (the shape of
    Theorem 3): its heads are first split into binary creations via the
    Section 5.1 rewriting, after which the Theorem-2 machinery applies
    unchanged — "in the proof of Theorem 2 we only used the binarity
    assumption for heads of existential TGDs".
    """
    working = theory
    kappa_theory: "Optional[Theory]" = None
    if not theory.signature.is_binary:
        from ..classes.recognizers import is_frontier_one_heads
        from ..transforms.binary_heads import split_frontier_one_heads

        if not (theory.is_single_head and is_frontier_one_heads(theory)):
            raise NotBinaryError(
                "non-binary theory outside Theorem 3's scope (existential "
                "TGDs must have a single frontier variable)"
            )
        working = split_frontier_one_heads(theory)
        kappa_theory = hide_query(theory, query).theory
    hidden = hide_query(working, query)
    normalised = spade5_normalize(hidden.theory)
    flag = hidden.flag_predicate
    # The hiding rule's head may itself have been renamed by (♠5); track it.
    flag = normalised.renamed_heads.get(flag, flag)
    return PreparedTheory(
        theory=normalised.theory,
        flag_predicate=flag,
        original_theory=theory,
        original_query=query,
        spade5=normalised,
        kappa_theory=kappa_theory,
    )
