"""The Theorem-2 pipeline: finite counter-models for binary BDD theories.

Given a binary theory T₀, a database D, and a conjunctive query Q with
``Chase(D, T₀) ⊭ Q``, the paper proves a finite ``M ⊨ D, T₀`` with
``M ⊭ Q`` exists, by the construction this module executes:

1.  (♠4)+(♠5): hide Q behind a fresh flag F and normalise (Section 3.1);
2.  chase D (Section 3.2) and extract the skeleton S — if an F-atom
    ever appears, the query was certain and no counter-model exists;
3.  compute κ — the maximal number of variables in the positive
    first-order rewriting of any rule body (Section 3.3; the one place
    BDD is used);
4.  take a natural coloring S̄ of S for size κ, and search for η making
    it η-conservative up to κ (Lemma 2);
5.  build ``M_η(S̄)``, strip the colors;
6.  saturate under T with the **new-element embargo** — Lemma 5 says no
    existential witness is ever missing; a violation means the
    truncation/η were too small and the pipeline retries larger;
7.  verify: the result contains D, satisfies every rule of T₀, and has
    no F-atom (hence ``M ⊭ Q``).

Truncation note (the one substitution w.r.t. the paper, which chases to
ω): the chase runs to a finite depth d and the quotient is taken over
the skeleton's *interior* — elements of level ≤ d − margin with
``margin = max(η, κ)``.  Skeleton atoms are created together with their
child element, so the truncated skeleton is atom-complete on its
elements, and a connected positive type of size ``s`` inspects a radius
``< s`` neighbourhood: interior types computed in the truncation agree
exactly with the infinite skeleton.  If the interior misses a type
class whose witnesses are needed (possible when d is too small), step 6
or 7 fails and the pipeline deepens the chase — the final verification
is therefore unconditional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..chase.engine import ChaseConfig, chase, chase_with_embargo, is_model, violations
from ..chase.stats import ChaseStats
from ..coloring.colors import ColoredStructure
from ..config import BudgetedConfig, OnBudget
from ..coloring.conservativity import conservativity_report
from ..coloring.natural import natural_coloring
from ..errors import (
    ConservativityError,
    NewElementEmbargoViolation,
    NotBinaryError,
    PipelineError,
    RewritingBudgetExceeded,
)
from ..lf.homomorphism import satisfies
from ..lf.queries import ConjunctiveQuery
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..runtime.guard import RuntimeGuard, StopReason
from ..lf.terms import Constant, Element, Null
from ..ptypes.partition import TypePartition
from ..ptypes.quotient import Quotient, quotient
from ..rewriting.bdd import bdd_profile
from ..rewriting.rewriter import RewriteConfig
from ..skeleton.skeleton import SkeletonResult, skeleton_of_chase
from .normalize import PreparedTheory, prepare


@dataclass
class PipelineConfig(BudgetedConfig):
    """Budgets for :func:`build_finite_counter_model`.

    Shares the library-wide budget contract
    (:class:`~repro.config.BudgetedConfig`): ``should_raise``,
    ``with_overrides``, and the :class:`~repro.config.OnBudget` enum.

    Attributes
    ----------
    chase_depths:
        The schedule of truncation depths to try, in order.
    eta_extra:
        η is searched in ``[κ, κ + eta_extra]`` at each depth.
    rewrite:
        Budget for the κ-computation (BDD rewriting).
    max_facts:
        Fact budget per chase run.
    verify:
        Run the final model checks (leave on; off only for benchmarks).
    on_budget:
        :attr:`~repro.config.OnBudget.RAISE` (default) raises
        :class:`~repro.errors.PipelineError` when every (depth, η) in
        the schedule fails; :attr:`~repro.config.OnBudget.RETURN`
        returns the result with ``model=None`` and the per-attempt
        reasons in :attr:`FiniteModelResult.attempts`.
    """

    chase_depths: Tuple[int, ...] = (8, 10, 12, 16)
    eta_extra: int = 2
    rewrite: "Optional[RewriteConfig]" = None
    max_facts: "Optional[int]" = 100_000
    verify: bool = True
    on_budget: OnBudget = OnBudget.RAISE


@dataclass
class FiniteModelResult:
    """A verified finite counter-model and the pipeline's trace.

    Attributes
    ----------
    model:
        The finite structure M: ``M ⊨ D, T₀`` and ``M ⊭ Q``.
    query_certain:
        ``True`` when the pipeline instead discovered that the query is
        *certain* (an F-atom appeared in the chase) — then ``model`` is
        ``None`` and no counter-model exists.
    kappa / eta / depth:
        The constants the construction settled on.
    skeleton_size / interior_size / model_size:
        Element counts at the three stages.
    prepared:
        The normalised theory and flag predicate.
    attempts:
        One entry per (depth, η) tried, with the failure reason.
    chase_stats:
        Instrumentation of every chase the pipeline ran (the truncation
        chase per depth and each embargo saturation), in execution
        order — see :class:`~repro.chase.stats.ChaseStats`.
    stopped_reason:
        Why the pipeline ended (:class:`~repro.runtime.StopReason`):
        ``fixpoint`` on a verdict (model built, or query certain),
        ``budget`` when the whole (depth, η) schedule failed, and
        ``deadline``/``cancelled``/``memory`` when a runtime guard
        tripped mid-schedule.
    """

    model: "Optional[Structure]"
    query_certain: bool
    kappa: int = 0
    eta: int = 0
    depth: int = 0
    skeleton_size: int = 0
    interior_size: int = 0
    model_size: int = 0
    prepared: "Optional[PreparedTheory]" = None
    attempts: List[str] = field(default_factory=list)
    chase_stats: List[ChaseStats] = field(default_factory=list)
    stopped_reason: StopReason = StopReason.FIXPOINT


def _interior_elements(
    skeleton_structure: Structure, depth: int, margin: int
) -> "frozenset[Element]":
    """Elements of level ≤ depth − margin (constants are level 0)."""
    cutoff = depth - margin
    chosen = set()
    for element in skeleton_structure.domain():
        level = element.level if isinstance(element, Null) else 0
        if level <= cutoff:
            chosen.add(element)
    return frozenset(chosen)


def _level_gap(skeleton_structure: Structure) -> int:
    """The largest chase-level jump along one skeleton edge.

    A type query of radius r around an interior element can reach
    elements up to ``r * gap`` levels deeper — e.g. when creating a
    witness takes several datalog rounds (Mgr → Emp → witness), one
    skeleton edge spans several levels.  The interior margin must scale
    by this gap for truncated types to be exact.
    """
    gap = 1
    for fact in skeleton_structure.facts():
        if fact.arity != 2:
            continue
        parent, child = fact.args
        if isinstance(child, Null):
            parent_level = parent.level if isinstance(parent, Null) else 0
            gap = max(gap, child.level - parent_level)
    return gap


def _strip_colors(colored_quotient: Structure, base_relations: Iterable[str]) -> Structure:
    """Drop color atoms from a quotient structure."""
    return colored_quotient.restrict_signature(set(base_relations))


def build_finite_counter_model(
    theory: Theory,
    database: Structure,
    query: ConjunctiveQuery,
    config: "Optional[PipelineConfig]" = None,
) -> FiniteModelResult:
    """Run the full Theorem-2 construction (see the module docstring).

    Returns a result whose ``model`` is a *verified* finite model of
    ``D ∧ T`` avoiding the query — or, when the chase derives the
    query, a result with ``query_certain=True`` (the paper's premise
    ``Chase(D,T) ⊭ Q`` fails, so no counter-model exists).

    Raises
    ------
    NotBinaryError
        If the signature is not binary.
    RewritingBudgetExceeded
        If κ cannot be certified (theory not known to be BDD).
    PipelineError
        If every (depth, η) in the budget fails — with the per-attempt
        reasons attached.
    """
    config = config or PipelineConfig()
    guard = RuntimeGuard.from_config(config, "pipeline")
    # prepare() accepts binary theories and Theorem 3's frontier-1
    # shape (splitting heads via §5.1); anything else raises there.
    prepared = prepare(theory, query)
    working_theory = prepared.theory
    flag = prepared.flag_predicate

    profile = bdd_profile(prepared.theory_for_kappa, config.rewrite)
    kappa = max(profile.kappa, working_theory.max_body_width(), 2)

    result = FiniteModelResult(
        model=None, query_certain=False, kappa=kappa, prepared=prepared
    )

    def guard_stop(reason: StopReason) -> FiniteModelResult:
        """Apply the on_budget policy for a tripped guard *reason*."""
        result.stopped_reason = reason
        if config.should_raise:
            raise guard.exception(reason, stats=result)
        return result

    # Inner chases inherit the pipeline's remaining wall budget, memory
    # ceiling, and cancel token (always OnBudget.RETURN: they stop
    # promptly with a partial result, and the pipeline's own checkpoint
    # right after translates the stop into the configured policy).
    def inner_budgets() -> Dict[str, object]:
        return {
            "wall_ms": guard.remaining_ms(),
            "max_rss_mb": config.max_rss_mb,
            "cancel_token": config.cancel_token,
            "guards_disabled": config.guards_disabled,
            "store": config.store,
        }

    for depth in config.chase_depths:
        reason = guard.check()
        if reason is not None:
            return guard_stop(reason)
        chased = chase(
            database,
            working_theory,
            ChaseConfig(max_depth=depth, max_facts=config.max_facts, max_elements=None),
            **inner_budgets(),
        )
        if chased.stats is not None:
            result.chase_stats.append(chased.stats)
        reason = guard.check()
        if reason is not None:
            return guard_stop(reason)
        if chased.structure.facts_with_pred(flag):
            result.query_certain = True
            result.depth = depth
            return result
        skel = skeleton_of_chase(chased, database, working_theory)
        result.skeleton_size = skel.structure.domain_size

        if chased.saturated:
            # The chase itself is a finite model; Theorem 2 is immediate.
            model = chased.structure
            verdict, reason = _verify(model, prepared, database, query)
            if verdict:
                result.model = model
                result.depth = depth
                result.model_size = model.domain_size
                result.interior_size = model.domain_size
                return result
            result.attempts.append(f"depth {depth}: saturated chase fails: {reason}")
            continue

        colored = natural_coloring(skel.structure, kappa)
        gap = _level_gap(skel.structure)
        for eta in range(kappa, kappa + config.eta_extra + 1):
            reason = guard.check()
            if reason is not None:
                return guard_stop(reason)
            margin = max(eta, kappa) * gap
            interior = _interior_elements(skel.structure, depth, margin)
            if not database.domain() <= interior or len(interior) <= database.domain_size:
                result.attempts.append(
                    f"depth {depth}, eta {eta}: interior too small "
                    f"({len(interior)} elements)"
                )
                continue
            partition = TypePartition(colored.structure, eta, elements=interior)
            quotiented = quotient(colored.structure, eta, partition=partition)
            report = conservativity_report(colored, eta, kappa, prebuilt=quotiented)
            if not report.conservative:
                result.attempts.append(
                    f"depth {depth}, eta {eta}: not conservative "
                    f"(witness {report.witness_query})"
                )
                continue
            candidate = _strip_colors(
                quotiented.structure, colored.base_relations
            )
            try:
                saturated = chase_with_embargo(
                    candidate, working_theory, **inner_budgets()
                )
                if saturated.stats is not None:
                    result.chase_stats.append(saturated.stats)
            except NewElementEmbargoViolation as violation:
                result.attempts.append(
                    f"depth {depth}, eta {eta}: embargo violation: {violation}"
                )
                continue
            model = saturated.structure
            if model.facts_with_pred(flag):
                result.attempts.append(
                    f"depth {depth}, eta {eta}: flag {flag} derived in the "
                    "quotient (conservativity too weak)"
                )
                continue
            if config.verify:
                verdict, reason = _verify(model, prepared, database, query)
                if not verdict:
                    result.attempts.append(
                        f"depth {depth}, eta {eta}: verification failed: {reason}"
                    )
                    continue
            result.model = model
            result.eta = eta
            result.depth = depth
            result.interior_size = len(interior)
            result.model_size = model.domain_size
            return result

    result.stopped_reason = StopReason.BUDGET
    if not config.should_raise:
        return result
    raise PipelineError(
        "no (depth, eta) in the budget produced a verified finite model "
        "(slow-growing chases — e.g. several datalog rounds per witness — "
        "often need a deeper schedule: PipelineConfig(chase_depths=(32,))); "
        "attempts: " + "; ".join(result.attempts),
        stats=result,
    )


def _verify(
    model: Structure,
    prepared: PreparedTheory,
    database: Structure,
    query: ConjunctiveQuery,
) -> Tuple[bool, "Optional[str]"]:
    """The unconditional final checks of the pipeline."""
    if not model.contains_structure(database):
        return False, "model does not contain the database"
    if not is_model(model, prepared.theory):
        sample = violations(model, prepared.theory, limit=1)
        return False, f"model violates the theory, e.g. {sample}"
    if not is_model(model, prepared.original_theory):
        sample = violations(model, prepared.original_theory, limit=1)
        return False, f"model violates the original theory, e.g. {sample}"
    if model.facts_with_pred(prepared.flag_predicate):
        return False, f"flag predicate {prepared.flag_predicate} present"
    if satisfies(model, query.boolean()):
        return False, "the query holds in the model"
    return True, None


def certify_counter_model(
    result: FiniteModelResult,
    theory: Theory,
    database: Structure,
    query: ConjunctiveQuery,
) -> bool:
    """Re-verify a pipeline result from scratch (used by experiments
    and cross-checks; independent of any pipeline state)."""
    if result.model is None:
        return False
    model = result.model
    return (
        model.contains_structure(database)
        and is_model(model, theory)
        and not satisfies(model, query.boolean())
    )
