"""The paper's primary contribution: Theorem 2's finite counter-model
construction, with the Section 3.1 normalisations.

Quick tour
----------
>>> from repro.lf import parse_theory, parse_structure, parse_query
>>> from repro.core import build_finite_counter_model
>>> theory = parse_theory('''
... E(x,y) -> exists z. E(y,z)
... E(x,y), E(u,y) -> R(x,u)
... ''')
>>> result = build_finite_counter_model(
...     theory, parse_structure("E(a,b)"), parse_query("R(x,u), U(u)"))
>>> result.model is not None
True
"""

from .finite_model import (
    FiniteModelResult,
    PipelineConfig,
    build_finite_counter_model,
    certify_counter_model,
)
from .normalize import (
    HiddenQuery,
    PreparedTheory,
    Spade5Result,
    hide_query,
    prepare,
    spade5_normalize,
)

__all__ = [
    "FiniteModelResult",
    "HiddenQuery",
    "PipelineConfig",
    "PreparedTheory",
    "Spade5Result",
    "build_finite_counter_model",
    "certify_counter_model",
    "hide_query",
    "prepare",
    "spade5_normalize",
]
