"""The chase engine: non-oblivious, parallel-round, budgeted.

Quick tour
----------
>>> from repro.lf import parse_theory, parse_structure
>>> from repro.chase import chase
>>> theory = parse_theory("E(x,y) -> exists z. E(y,z)")
>>> result = chase(parse_structure("E(a,b)"), theory, max_depth=5)
>>> result.depth
5
"""

from .certain import (
    CertainReport,
    certain_answers,
    certain_boolean,
    certain_report,
    chase_entails,
)
from .engine import (
    ChaseConfig,
    ChaseStrategy,
    chase,
    chase_step,
    chase_with_embargo,
    datalog_saturate,
    is_model,
    violations,
)
from .levels import chase_levels, observed_derivation_depth, query_depth_profile
from .provenance import (
    DEFAULT_MAX_SUPPORTS,
    Derivation,
    Support,
    SupportStore,
    alternative_derivations,
    deepest_derivation,
    explain,
    explain_all,
)
from .results import ChaseResult
from .seminaive import incremental_datalog_saturate, seminaive_saturate
from .stats import ChaseStats, IncrStats, RoundStats
from .view import ChaseView, IncrementalConfig, UpdateResult, ViewAnswer, chase_view
from .termination import (
    DependencyGraph,
    dependency_graph,
    is_weakly_acyclic,
    special_cycle_witness,
)

__all__ = [
    "CertainReport",
    "ChaseConfig",
    "ChaseResult",
    "ChaseStats",
    "ChaseStrategy",
    "ChaseView",
    "DEFAULT_MAX_SUPPORTS",
    "DependencyGraph",
    "Derivation",
    "IncrStats",
    "IncrementalConfig",
    "RoundStats",
    "Support",
    "SupportStore",
    "UpdateResult",
    "ViewAnswer",
    "alternative_derivations",
    "certain_answers",
    "certain_boolean",
    "certain_report",
    "chase",
    "chase_entails",
    "chase_levels",
    "chase_step",
    "chase_view",
    "chase_with_embargo",
    "datalog_saturate",
    "deepest_derivation",
    "dependency_graph",
    "explain",
    "explain_all",
    "incremental_datalog_saturate",
    "is_model",
    "is_weakly_acyclic",
    "observed_derivation_depth",
    "query_depth_profile",
    "seminaive_saturate",
    "special_cycle_witness",
    "violations",
]
