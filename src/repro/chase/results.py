"""Result objects for chase runs.

A :class:`ChaseResult` bundles the structure produced by a chase with
the bookkeeping the rest of the library needs: at which round each fact
was derived (the *derivation depth* underlying the BDD property), which
elements were invented, and whether the run reached a fixpoint or hit a
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..lf.atoms import Atom
from ..lf.structures import Structure
from ..lf.terms import Element, Null
from ..runtime.guard import StopReason
from .stats import ChaseStats

if TYPE_CHECKING:  # pragma: no cover
    from .provenance import SupportStore


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    Attributes
    ----------
    structure:
        The chased structure (``Chase^depth(D, T)``).
    depth:
        Number of completed parallel rounds.
    saturated:
        ``True`` iff the last round produced nothing, i.e. the structure
        is a fixpoint: a genuine model of the theory.  When ``False``
        the run stopped on a budget and the structure is only a
        truncation ``Chase^depth`` of the (possibly infinite) chase.
    fact_level:
        For each fact, the round at which it first appeared (``0`` for
        database facts).  This is the paper's derivation depth: a query
        Ψ with ``Chase ⊨ Ψ`` holds in ``Chase^k`` where ``k`` is the
        maximum level over the matched facts.
    new_elements:
        The nulls invented by this run, in creation order.
    rounds_fired:
        Per round, how many facts were added (diagnostic/benchmarks).
    provenance:
        When the run was traced (``ChaseConfig(trace=True)``): a
        :class:`~repro.chase.provenance.SupportStore` holding, for each
        derived fact, all recorded ``(rule index, premise facts)``
        supports (bounded, deduped).  ``None`` on untraced runs.  Use
        :mod:`repro.chase.provenance` to build derivation trees; the
        incremental view (:mod:`repro.chase.view`) drives DRed
        deletion from the same records.
    stats:
        Per-round instrumentation (wall time, trigger/delta counters,
        index probes) — see :class:`~repro.chase.stats.ChaseStats`.
        Always populated by :func:`repro.chase.chase`; ``None`` only on
        hand-built results.
    stopped_reason:
        Why the run ended — the uniform
        :class:`~repro.runtime.StopReason` vocabulary
        (``fixpoint``/``budget``/``deadline``/``cancelled``/``memory``).
        ``fixpoint`` iff :attr:`saturated`.
    """

    structure: Structure
    depth: int
    saturated: bool
    fact_level: Dict[Atom, int] = field(default_factory=dict)
    new_elements: List[Null] = field(default_factory=list)
    rounds_fired: List[int] = field(default_factory=list)
    provenance: "Optional[SupportStore]" = None
    stats: "Optional[ChaseStats]" = None
    stopped_reason: StopReason = StopReason.FIXPOINT

    @property
    def is_model(self) -> bool:
        """Alias for :attr:`saturated`: a fixpoint satisfies the theory."""
        return self.saturated

    def level_of(self, fact: Atom) -> int:
        """The round at which *fact* appeared (raises if absent)."""
        return self.fact_level[fact]

    def facts_at_level(self, level: int) -> List[Atom]:
        """Facts first derived at exactly the given round."""
        return [fact for fact, at in self.fact_level.items() if at == level]

    def truncate(self, depth: int) -> Structure:
        """The structure ``Chase^depth``: facts of level ≤ *depth*.

        The returned structure contains precisely the facts derived in
        the first *depth* rounds (round 0 being the database itself).
        """
        kept = [fact for fact, at in self.fact_level.items() if at <= depth]
        return Structure(kept, signature=self.structure.signature)

    def query_depth(self, binding_levels: "Tuple[int, ...]") -> int:
        """Derivation depth of a match: the max level among its facts."""
        return max(binding_levels, default=0)

    def __str__(self) -> str:
        status = "saturated" if self.saturated else "truncated"
        return (
            f"ChaseResult({status} at depth {self.depth}, "
            f"{len(self.structure)} facts, "
            f"{len(self.new_elements)} new elements)"
        )
