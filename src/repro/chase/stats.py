"""Run-level instrumentation for chase runs.

Every chase run (any strategy) records a :class:`ChaseStats` — one
:class:`RoundStats` per parallel round — exposed on
:attr:`repro.chase.ChaseResult.stats` and propagated up through
``certain_*``, ``datalog_saturate`` and the Theorem-2 pipeline.  The
counters are the language the benchmarks and the CLI's ``--stats`` /
``--json`` modes speak:

* *triggers evaluated* — body matches enumerated this round (under the
  delta strategy this is the real work saved: all-old matches are
  provably settled and never enumerated);
* *triggers fired* — matches that produced at least one new fact or a
  witness;
* *triggers suppressed* — existential matches skipped because a witness
  already existed (the non-oblivious "only if needed" check);
* *delta_in* — how many facts the round joined through as the delta
  (for the naive strategy: the whole structure);
* *index_probes* — hash-index lookups performed on the
  :class:`~repro.lf.structures.Structure` during the round.

Each run also snapshots the homomorphism engine's process-global
:class:`~repro.lf.plan.HomStats` counters and stores the per-run delta
on :attr:`ChaseStats.hom` — plans requested, plan-cache hits/misses,
matcher index probes, candidate facts scanned, and backtracks.

Wall times and the plan-cache hit/miss split are the only
environment-dependent fields (the split depends on what ran earlier in
the process); everything else is a pure function of (database, theory,
config), which the CLI determinism tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..lf.plan import HomStats

#: Keys of the stats dicts that are *not* a pure function of the run's
#: inputs — wall times plus the plan-cache warmth split — excluded by
#: ``as_dict(timings=False)``; consumers comparing runs should strip
#: these.
TIMING_FIELDS = (
    "wall_ms",
    "plans_compiled",
    "plan_cache_hits",
    "plan_cache_misses",
)


@dataclass
class RoundStats:
    """Counters for one parallel round of the chase."""

    round: int
    triggers_evaluated: int = 0
    triggers_fired: int = 0
    triggers_suppressed: int = 0
    facts_added: int = 0
    nulls_invented: int = 0
    delta_in: int = 0
    index_probes: int = 0
    wall_ms: float = 0.0

    def as_dict(self, timings: bool = True) -> Dict[str, Any]:
        """A JSON-ready dict; ``timings=False`` drops the wall time."""
        payload: Dict[str, Any] = {
            "round": self.round,
            "triggers_evaluated": self.triggers_evaluated,
            "triggers_fired": self.triggers_fired,
            "triggers_suppressed": self.triggers_suppressed,
            "facts_added": self.facts_added,
            "nulls_invented": self.nulls_invented,
            "delta_in": self.delta_in,
            "index_probes": self.index_probes,
        }
        if timings:
            payload["wall_ms"] = self.wall_ms
        return payload


@dataclass
class ChaseStats:
    """Aggregated instrumentation for a whole chase run.

    Attributes
    ----------
    strategy:
        The evaluation strategy actually used (``"delta"`` or
        ``"naive"`` — oblivious runs always report ``"naive"``).
    rounds:
        One entry per evaluated round, including the final empty round
        that certifies saturation (it did real work: it enumerated and
        rejected every remaining trigger).
    hom:
        The homomorphism engine's per-run counters
        (:class:`~repro.lf.plan.HomStats`): plan requests and cache
        hits/misses, matcher index probes, candidate facts scanned,
        backtracks.  ``None`` only on hand-built stats.
    """

    strategy: str = "delta"
    rounds: List[RoundStats] = field(default_factory=list)
    hom: "Optional[HomStats]" = None

    # -- totals ---------------------------------------------------------
    @property
    def triggers_evaluated(self) -> int:
        return sum(r.triggers_evaluated for r in self.rounds)

    @property
    def triggers_fired(self) -> int:
        return sum(r.triggers_fired for r in self.rounds)

    @property
    def triggers_suppressed(self) -> int:
        return sum(r.triggers_suppressed for r in self.rounds)

    @property
    def facts_added(self) -> int:
        return sum(r.facts_added for r in self.rounds)

    @property
    def nulls_invented(self) -> int:
        return sum(r.nulls_invented for r in self.rounds)

    @property
    def index_probes(self) -> int:
        return sum(r.index_probes for r in self.rounds)

    @property
    def wall_ms(self) -> float:
        return sum(r.wall_ms for r in self.rounds)

    @property
    def delta_sizes(self) -> List[int]:
        """The delta fed into each round (diagnostic for the strategy)."""
        return [r.delta_in for r in self.rounds]

    def as_dict(self, timings: bool = True) -> Dict[str, Any]:
        """A JSON-ready dict; ``timings=False`` strips every wall time."""
        payload: Dict[str, Any] = {
            "strategy": self.strategy,
            "rounds": [r.as_dict(timings=timings) for r in self.rounds],
            "totals": {
                "triggers_evaluated": self.triggers_evaluated,
                "triggers_fired": self.triggers_fired,
                "triggers_suppressed": self.triggers_suppressed,
                "facts_added": self.facts_added,
                "nulls_invented": self.nulls_invented,
                "index_probes": self.index_probes,
            },
        }
        if self.hom is not None:
            # cache warmth (hit/miss split) is environment-dependent:
            # stripped together with the wall times
            payload["hom"] = self.hom.as_dict(cache=timings)
        if timings:
            payload["totals"]["wall_ms"] = self.wall_ms
        return payload

    def render(self) -> str:
        """Deterministically ordered text lines for the CLI's ``--stats``."""
        lines = [f"# stats: strategy={self.strategy} rounds={len(self.rounds)}"]
        for r in self.rounds:
            lines.append(
                f"# round {r.round}: delta_in={r.delta_in} "
                f"evaluated={r.triggers_evaluated} fired={r.triggers_fired} "
                f"suppressed={r.triggers_suppressed} facts+={r.facts_added} "
                f"nulls+={r.nulls_invented} probes={r.index_probes} "
                f"wall={r.wall_ms:.2f}ms"
            )
        lines.append(
            f"# totals: evaluated={self.triggers_evaluated} "
            f"fired={self.triggers_fired} suppressed={self.triggers_suppressed} "
            f"facts={self.facts_added} nulls={self.nulls_invented} "
            f"probes={self.index_probes} wall={self.wall_ms:.2f}ms"
        )
        if self.hom is not None:
            # deterministic counters only (the hit/miss split is cache
            # warmth — it lives in as_dict, not in the comparable text)
            lines.append(
                f"# hom: plans={self.hom.plan_requests} "
                f"probes={self.hom.index_probes} "
                f"scanned={self.hom.candidates_scanned} "
                f"backtracks={self.hom.backtracks}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"ChaseStats({self.strategy}, {len(self.rounds)} rounds, "
            f"{self.triggers_evaluated} triggers, "
            f"{self.index_probes} probes)"
        )


@dataclass
class IncrStats:
    """Instrumentation for one incremental view update.

    Recorded by :meth:`repro.chase.view.ChaseView.update` on the shared
    stats contract: :meth:`as_dict` feeds the CLI's ``--json``,
    :meth:`render` its text-mode ``--stats`` comment lines, and
    everything except the wall time is a pure function of
    (view state, adds, removes).

    Attributes
    ----------
    adds_in / removes_in:
        Size of the requested delta (facts genuinely added to /
        removed from the base, after dedup against the current base).
    overdeleted:
        Facts removed by the DRed overdeletion sweep (transitive
        dependents of the removed base facts, base facts excluded).
    rederived:
        Overdeleted facts restored because an alternative recorded
        support survived — the multi-support payoff.
    fallback_rules:
        Rules evaluated by the goal-directed DRed fallback round
        (rules whose head predicate lost facts, enumerated against the
        lost facts only; 0 when rederivation already settled
        everything or nothing was removed).
    resumed_rounds:
        Semi-naive rounds run by the delta resume (insert seeding plus
        the post-delete repair), *excluding* the fallback enumeration.
    facts_added / nulls_invented:
        What the resume derived beyond the explicit adds.
    nulls_orphaned:
        Invented nulls left occurring in no fact after the retraction —
        dead weight the view drops from its level bookkeeping.
    delta_sizes:
        The delta fed into each resumed round (``rounds[i].delta_in``).
    rounds:
        Per-round counters of the resume, shaped exactly like a chase
        run's (:class:`RoundStats`).
    """

    adds_in: int = 0
    removes_in: int = 0
    overdeleted: int = 0
    rederived: int = 0
    fallback_rules: int = 0
    resumed_rounds: int = 0
    facts_added: int = 0
    nulls_invented: int = 0
    nulls_orphaned: int = 0
    delta_sizes: List[int] = field(default_factory=list)
    rounds: List[RoundStats] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def triggers_evaluated(self) -> int:
        return sum(r.triggers_evaluated for r in self.rounds)

    def as_dict(self, timings: bool = True) -> Dict[str, Any]:
        """A JSON-ready dict; ``timings=False`` strips every wall time."""
        payload: Dict[str, Any] = {
            "adds_in": self.adds_in,
            "removes_in": self.removes_in,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "fallback_rules": self.fallback_rules,
            "resumed_rounds": self.resumed_rounds,
            "facts_added": self.facts_added,
            "nulls_invented": self.nulls_invented,
            "nulls_orphaned": self.nulls_orphaned,
            "delta_sizes": list(self.delta_sizes),
            "rounds": [r.as_dict(timings=timings) for r in self.rounds],
        }
        if timings:
            payload["wall_ms"] = self.wall_ms
        return payload

    def render(self) -> str:
        """Deterministically ordered text lines for the CLI's ``--stats``."""
        lines = [
            f"# update: +{self.adds_in} -{self.removes_in} "
            f"overdeleted={self.overdeleted} rederived={self.rederived} "
            f"fallback_rules={self.fallback_rules} "
            f"resumed_rounds={self.resumed_rounds} "
            f"facts+={self.facts_added} nulls+={self.nulls_invented} "
            f"nulls_orphaned={self.nulls_orphaned} "
            f"deltas={self.delta_sizes} wall={self.wall_ms:.2f}ms"
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"IncrStats(+{self.adds_in}/-{self.removes_in}, "
            f"overdeleted {self.overdeleted}, rederived {self.rederived}, "
            f"{self.resumed_rounds} resumed rounds)"
        )
