"""Chase termination criteria.

The chase of an arbitrary theory need not terminate (Example 1 of the
paper already diverges).  The classical sufficient criterion is **weak
acyclicity** (Fagin et al.): build a graph over *positions* — pairs
``(predicate, argument index)`` — with

* a *normal* edge ``p → q`` whenever some frontier variable occurs at
  body position ``p`` and head position ``q`` of a rule, and
* a *special* edge ``p ⇒ q`` whenever some frontier variable occurs at
  body position ``p`` of a rule with an existential variable at head
  position ``q``.

The theory is weakly acyclic iff no cycle goes through a special edge;
then every chase sequence terminates on every database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..lf.rules import Rule, Theory
from ..lf.terms import Variable

#: A position: (predicate name, 0-based argument index).
Position = Tuple[str, int]


@dataclass
class DependencyGraph:
    """The position dependency graph of a theory.

    Attributes
    ----------
    normal:
        Normal edges, as a position → set-of-positions mapping.
    special:
        Special edges (into existential positions).
    """

    normal: Dict[Position, Set[Position]] = field(default_factory=dict)
    special: Dict[Position, Set[Position]] = field(default_factory=dict)

    def add_normal(self, source: Position, target: Position) -> None:
        self.normal.setdefault(source, set()).add(target)

    def add_special(self, source: Position, target: Position) -> None:
        self.special.setdefault(source, set()).add(target)

    def positions(self) -> Set[Position]:
        found: Set[Position] = set()
        for table in (self.normal, self.special):
            for source, targets in table.items():
                found.add(source)
                found.update(targets)
        return found

    def successors(self, position: Position) -> Set[Position]:
        return self.normal.get(position, set()) | self.special.get(position, set())


def dependency_graph(theory: Theory) -> DependencyGraph:
    """Build the position dependency graph of *theory*."""
    graph = DependencyGraph()
    for rule in theory.rules:
        body_positions: Dict[Variable, List[Position]] = {}
        for atom in rule.body:
            if atom.is_equality:
                continue
            for index, arg in enumerate(atom.args):
                if isinstance(arg, Variable):
                    body_positions.setdefault(arg, []).append((atom.pred, index))
        existentials = rule.existential_variables()
        for atom in rule.head:
            for index, arg in enumerate(atom.args):
                if not isinstance(arg, Variable):
                    continue
                target = (atom.pred, index)
                if arg in existentials:
                    for variable, sources in body_positions.items():
                        if variable in rule.frontier():
                            for source in sources:
                                graph.add_special(source, target)
                else:
                    for source in body_positions.get(arg, []):
                        graph.add_normal(source, target)
    return graph


def _strongly_connected_components(graph: DependencyGraph) -> List[Set[Position]]:
    """Tarjan's algorithm (iterative) over the combined edge set."""
    index_counter = [0]
    stack: List[Position] = []
    lowlink: Dict[Position, int] = {}
    index: Dict[Position, int] = {}
    on_stack: Set[Position] = set()
    components: List[Set[Position]] = []

    def visit(root: Position) -> None:
        work = [(root, iter(sorted(graph.successors(root))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph.successors(successor)))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[Position] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)

    for position in sorted(graph.positions()):
        if position not in index:
            visit(position)
    return components


def is_weakly_acyclic(theory: Theory) -> bool:
    """Whether *theory* is weakly acyclic (chase guaranteed to terminate).

    A cycle through a special edge exists iff some strongly connected
    component contains both endpoints of a special edge.
    """
    graph = dependency_graph(theory)
    components = _strongly_connected_components(graph)
    component_of: Dict[Position, int] = {}
    for number, component in enumerate(components):
        for position in component:
            component_of[position] = number
    for source, targets in graph.special.items():
        for target in targets:
            if component_of.get(source) == component_of.get(target) and source in component_of:
                return False
    return True


def special_cycle_witness(theory: Theory) -> "List[Position]":
    """A list of positions forming (part of) a special cycle, or ``[]``.

    When the theory is not weakly acyclic this returns the offending
    strongly connected component (sorted), which is usually enough to
    see why the chase may diverge.
    """
    graph = dependency_graph(theory)
    components = _strongly_connected_components(graph)
    component_of: Dict[Position, int] = {}
    for number, component in enumerate(components):
        for position in component:
            component_of[position] = number
    for source, targets in graph.special.items():
        for target in targets:
            if component_of.get(source) == component_of.get(target) and source in component_of:
                return sorted(components[component_of[source]])
    return []
