"""Certain answers: ``T, D |= Φ`` via the chase.

Since the chase is a free structure, ``D, T ⊨ Φ`` iff
``Chase(D,T) ⊨ Φ`` (Section 1.1).  The chase may be infinite, so the
harness below works level by level and reports three-valued verdicts:

* ``True``  — the query holds in some finite truncation (hence in the
  chase: truncations are substructures and CQs are preserved);
* ``False`` — the chase saturated without the query: it provably fails;
* ``None``  — the budget was exhausted with the query still absent; on
  a BDD theory, combine with the rewriting engine
  (:mod:`repro.rewriting`) for a definite answer.

:func:`certain_report` is the full-fat entry point: one chase run, the
verdict, the answer relation, and the run's
:class:`~repro.chase.stats.ChaseStats` in a single
:class:`CertainReport`.  :func:`certain_boolean` and
:func:`certain_answers` are thin compatibility wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..lf.homomorphism import all_answers, satisfies
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from .engine import ChaseConfig, chase
from .results import ChaseResult
from .stats import ChaseStats

Query = "ConjunctiveQuery | UnionOfConjunctiveQueries"


@dataclass
class CertainReport:
    """Everything one chase-based certain-answer computation produced.

    Attributes
    ----------
    verdict:
        The three-valued Boolean verdict (module docstring).  For a
        query with free variables: ``True`` iff some certain answer
        exists, ``False`` iff the chase saturated with none, ``None``
        when the budget ran out with none found.
    answers:
        The certain answer tuples (constants only; ``{()}`` for a
        satisfied Boolean query).
    complete:
        Whether the chase saturated, making *answers* provably complete.
    result:
        The underlying :class:`~repro.chase.ChaseResult` (structure,
        depth, fact levels, stats).
    """

    verdict: "Optional[bool]"
    answers: "Set[Tuple[Element, ...]]"
    complete: bool
    result: ChaseResult

    @property
    def stats(self) -> "Optional[ChaseStats]":
        """The chase run's instrumentation (see :class:`ChaseStats`)."""
        return self.result.stats


def certain_report(
    database: Structure,
    theory: Theory,
    query: Query,
    config: "Optional[ChaseConfig]" = None,
    max_depth: "Optional[int]" = 20,
    max_facts: "Optional[int]" = 200_000,
) -> CertainReport:
    """Chase once and report verdict, answers, and instrumentation.

    When *config* is given it is used as-is (the ``max_depth`` /
    ``max_facts`` shorthands are ignored); otherwise a config is built
    from the shorthands with ``max_elements=None``, matching the legacy
    wrappers.
    """
    if config is None:
        config = ChaseConfig(
            max_depth=max_depth, max_facts=max_facts, max_elements=None
        )
    result = chase(database, theory, config)
    if getattr(query, "is_boolean", False):
        # Short-circuit: one witnessing homomorphism settles a Boolean
        # query, no need to enumerate the whole answer relation.
        answers = {()} if satisfies(result.structure, query) else set()
    else:
        raw = all_answers(result.structure, query)
        answers = {
            row for row in raw if all(isinstance(value, Constant) for value in row)
        }
    if answers:
        verdict: "Optional[bool]" = True
    elif result.saturated:
        verdict = False
    else:
        verdict = None
    return CertainReport(
        verdict=verdict,
        answers=answers,
        complete=result.saturated,
        result=result,
    )


def certain_boolean(
    database: Structure,
    theory: Theory,
    query: Query,
    max_depth: int = 20,
    max_facts: "Optional[int]" = 200_000,
) -> "Optional[bool]":
    """Three-valued certain answer for a Boolean query.

    See the module docstring for the meaning of the verdicts.
    """
    report = certain_report(
        database, theory, query, max_depth=max_depth, max_facts=max_facts
    )
    return report.verdict


def certain_answers(
    database: Structure,
    theory: Theory,
    query: Query,
    max_depth: int = 20,
    max_facts: "Optional[int]" = 200_000,
) -> "Tuple[Set[Tuple[Element, ...]], bool]":
    """Certain answers of a query with free variables.

    Returns ``(answers, complete)``: the answer tuples built from
    *constants only* (tuples containing nulls are not certain answers —
    nulls are not part of any real database), and whether the chase
    saturated (making the answer set provably complete).
    """
    report = certain_report(
        database, theory, query, max_depth=max_depth, max_facts=max_facts
    )
    return report.answers, report.complete


def chase_entails(
    chased: ChaseResult,
    query: Query,
) -> "Optional[bool]":
    """Verdict from an already-run chase (see :func:`certain_boolean`)."""
    if satisfies(chased.structure, query):
        return True
    if chased.saturated:
        return False
    return None
