"""Certain answers: ``T, D |= Φ`` via the chase.

Since the chase is a free structure, ``D, T ⊨ Φ`` iff
``Chase(D,T) ⊨ Φ`` (Section 1.1).  The chase may be infinite, so the
harness below works level by level and reports three-valued verdicts:

* ``True``  — the query holds in some finite truncation (hence in the
  chase: truncations are substructures and CQs are preserved);
* ``False`` — the chase saturated without the query: it provably fails;
* ``None``  — the budget was exhausted with the query still absent; on
  a BDD theory, combine with the rewriting engine
  (:mod:`repro.rewriting`) for a definite answer.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..lf.homomorphism import all_answers, satisfies
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from .engine import ChaseConfig, chase
from .results import ChaseResult

Query = "ConjunctiveQuery | UnionOfConjunctiveQueries"


def certain_boolean(
    database: Structure,
    theory: Theory,
    query: Query,
    max_depth: int = 20,
    max_facts: "Optional[int]" = 200_000,
) -> "Optional[bool]":
    """Three-valued certain answer for a Boolean query.

    See the module docstring for the meaning of the verdicts.
    """
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=max_depth, max_facts=max_facts, max_elements=None),
    )
    if satisfies(result.structure, query):
        return True
    if result.saturated:
        return False
    return None


def certain_answers(
    database: Structure,
    theory: Theory,
    query: Query,
    max_depth: int = 20,
    max_facts: "Optional[int]" = 200_000,
) -> "Tuple[Set[Tuple[Element, ...]], bool]":
    """Certain answers of a query with free variables.

    Returns ``(answers, complete)``: the answer tuples built from
    *constants only* (tuples containing nulls are not certain answers —
    nulls are not part of any real database), and whether the chase
    saturated (making the answer set provably complete).
    """
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=max_depth, max_facts=max_facts, max_elements=None),
    )
    raw = all_answers(result.structure, query)
    answers = {
        row for row in raw if all(isinstance(value, Constant) for value in row)
    }
    return answers, result.saturated


def chase_entails(
    chased: ChaseResult,
    query: Query,
) -> "Optional[bool]":
    """Verdict from an already-run chase (see :func:`certain_boolean`)."""
    if satisfies(chased.structure, query):
        return True
    if chased.saturated:
        return False
    return None
