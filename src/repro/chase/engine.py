"""The chase engine.

Implements the paper's chase (Section 1.1) faithfully:

* **non-oblivious** (a.k.a. restricted): an existential TGD fires on a
  body match only if no witness already exists — "new elements are only
  created if needed";
* **parallel rounds**: ``Chase^{i+1}(D,T) = Chase^1(Chase^i(D,T), T)``,
  where one application of ``Chase^1`` fires *all* triggers that are
  unsatisfied at the start of the round simultaneously;
* **one witness per demanded head atom**: within a round, triggers that
  demand the same head atom (same TGP, same frontier value) share a
  single fresh null.  This is what makes Lemma 3(iv) true — "for any
  fixed a ∈ S and TGP R at most one b can exist with S ⊨ R(a, b)".

An *oblivious* mode (every trigger creates a witness, used only for
contrast experiments) and a *new-element embargo* mode (used by the
Theorem-2 pipeline to realise Lemma 5's claim) are provided as flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ChaseBudgetExceeded, NewElementEmbargoViolation
from ..lf.atoms import Atom
from ..lf.homomorphism import find_homomorphism, homomorphisms
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Element, Null, NullFactory, Variable
from .results import ChaseResult


@dataclass
class ChaseConfig:
    """Tuning knobs for a chase run.

    Attributes
    ----------
    max_depth:
        Maximum number of parallel rounds (``None`` = unbounded).
    max_facts:
        Stop when the structure exceeds this many facts.
    max_elements:
        Stop when the domain exceeds this many elements.
    oblivious:
        Fire every trigger regardless of existing witnesses.
    allow_new_elements:
        When ``False``, a TGD trigger with no witness raises
        :class:`~repro.errors.NewElementEmbargoViolation` instead of
        inventing a null (Lemma 5 saturation mode).
    on_budget:
        ``"return"`` (default) stops quietly with ``saturated=False``;
        ``"raise"`` raises :class:`~repro.errors.ChaseBudgetExceeded`.
    trace:
        Record, for every derived fact, the rule and the premise facts
        that produced it (see :mod:`repro.chase.provenance`).  Off by
        default — it costs memory proportional to the run.
    """

    max_depth: "Optional[int]" = None
    max_facts: "Optional[int]" = 200_000
    max_elements: "Optional[int]" = 50_000
    oblivious: bool = False
    allow_new_elements: bool = True
    on_budget: str = "return"
    trace: bool = False

    def __post_init__(self) -> None:
        if self.on_budget not in ("return", "raise"):
            raise ValueError("on_budget must be 'return' or 'raise'")
        if self.max_depth is None and self.max_facts is None and self.max_elements is None:
            raise ValueError("at least one budget must be set (the chase may diverge)")


def _head_satisfied(structure: Structure, rule: Rule, binding: Dict[Variable, Element]) -> bool:
    """Whether the (possibly existential) head already holds under *binding*.

    The frontier variables are bound; the existential ones are left free
    and searched for — the paper's "there is no y ∈ D satisfying
    D ⊨ Q(y, ȳ)" condition, generalised to multi-head rules.
    """
    frontier_binding = {
        var: value for var, value in binding.items() if var in rule.head_variables()
    }
    return find_homomorphism(rule.head, structure, frontier_binding) is not None


def _witness_key(rule: Rule, rule_index: int, binding: Dict[Variable, Element]) -> tuple:
    """Round-local key under which triggers share a witness.

    For (♠5)-shaped TGDs — single head ``R(y, z)`` with ``z`` the
    witness — the key is ``(R, value-of-y)``: any two rules demanding
    the same head atom share the null, which keeps the skeleton's
    out-degree per TGP at one (Lemma 3).  Other shapes fall back to a
    per-rule key on the frontier values.
    """
    if rule.is_single_head:
        head = rule.head_atom
        existentials = rule.existential_variables()
        bound_args = tuple(
            binding[arg] if isinstance(arg, Variable) and arg in binding else None
            for arg in head.args
        )
        if head.arity == 2 and isinstance(head.args[1], Variable) and head.args[1] in existentials:
            if bound_args[0] is not None:
                return ("atom", head.pred, bound_args[0])
    frontier_values = tuple(
        (var.name, binding[var]) for var in sorted(rule.frontier())
    )
    return ("rule", rule_index, frontier_values)


def chase_step(
    structure: Structure,
    theory: Theory,
    nulls: NullFactory,
    level: int,
    config: "Optional[ChaseConfig]" = None,
    provenance: "Optional[Dict[Atom, Tuple[int, Tuple[Atom, ...]]]]" = None,
) -> Tuple[List[Atom], List[Null]]:
    """One parallel round (``Chase^1``) applied in place.

    All triggers are evaluated against the structure *as it was at the
    start of the round*; the produced facts and nulls are returned (and
    already inserted into *structure*).  When *provenance* is given,
    each new fact maps to its ``(rule index, premise facts)``.
    """
    config = config or ChaseConfig(max_depth=1)
    snapshot = structure.copy()
    produced: List[Atom] = []
    invented: List[Null] = []
    shared_witnesses: Dict[tuple, Dict[Variable, Null]] = {}

    def record(fact: Atom, rule_index: int, rule: Rule, binding) -> None:
        if provenance is not None and fact not in provenance:
            premises = tuple(
                a.substitute(binding) for a in rule.body if not a.is_equality
            )
            provenance[fact] = (rule_index, premises)

    for rule_index, rule in enumerate(theory.rules):
        for binding in homomorphisms(rule.body, snapshot):
            if rule.is_datalog:
                for head in rule.head:
                    fact = head.substitute(binding)  # type: ignore[arg-type]
                    if structure.add_fact(fact):
                        produced.append(fact)
                        record(fact, rule_index, rule, binding)
                continue
            if not config.oblivious and _head_satisfied(snapshot, rule, binding):
                continue
            if not config.allow_new_elements:
                raise NewElementEmbargoViolation(
                    f"rule {rule} demands a new witness on {binding} "
                    f"(Lemma 5 embargo)"
                )
            key = _witness_key(rule, rule_index, binding)
            if config.oblivious:
                key = ("oblivious", rule_index, tuple(sorted(
                    (var.name, value) for var, value in binding.items()
                )), len(invented))
            witnesses = shared_witnesses.get(key)
            if witnesses is None:
                witnesses = {
                    var: nulls.fresh(rule_index=rule_index, level=level)
                    for var in sorted(rule.existential_variables())
                }
                shared_witnesses[key] = witnesses
                invented.extend(witnesses[var] for var in sorted(witnesses))
            extended = dict(binding)
            extended.update(witnesses)
            for head in rule.head:
                fact = head.substitute(extended)  # type: ignore[arg-type]
                if structure.add_fact(fact):
                    produced.append(fact)
                    record(fact, rule_index, rule, binding)
    return produced, invented


def chase(
    database: Structure,
    theory: Theory,
    config: "Optional[ChaseConfig]" = None,
    **overrides,
) -> ChaseResult:
    """Run the chase on a copy of *database* under *theory*.

    Keyword overrides (``max_depth=...`` etc.) are applied on top of
    *config* (or the default config).  The input structure is never
    mutated.

    Returns
    -------
    ChaseResult
        With ``saturated=True`` iff a fixpoint was reached within the
        budgets; the result's :attr:`~ChaseResult.fact_level` maps every
        fact to the round that introduced it (database facts at 0).

    Raises
    ------
    ChaseBudgetExceeded
        Only when ``config.on_budget == "raise"``.
    NewElementEmbargoViolation
        When ``allow_new_elements=False`` and an existential trigger
        has no witness.
    """
    if config is None:
        config = ChaseConfig()
    if overrides:
        merged = {**config.__dict__, **overrides}
        config = ChaseConfig(**merged)

    working = database.copy()
    nulls = NullFactory.above(working.domain())
    fact_level: Dict[Atom, int] = {fact: 0 for fact in working.facts()}
    new_elements: List[Null] = []
    rounds_fired: List[int] = []
    provenance: "Optional[Dict[Atom, Tuple[int, Tuple[Atom, ...]]]]" = (
        {} if config.trace else None
    )
    depth = 0
    saturated = False

    while True:
        if config.max_depth is not None and depth >= config.max_depth:
            break
        produced, invented = chase_step(
            working, theory, nulls, depth + 1, config, provenance
        )
        if not produced and not invented:
            saturated = True
            break
        depth += 1
        rounds_fired.append(len(produced))
        new_elements.extend(invented)
        for fact in produced:
            fact_level.setdefault(fact, depth)
        over_facts = config.max_facts is not None and len(working) > config.max_facts
        over_elements = (
            config.max_elements is not None and working.domain_size > config.max_elements
        )
        if over_facts or over_elements:
            if config.on_budget == "raise":
                raise ChaseBudgetExceeded(
                    f"chase exceeded budget at depth {depth}",
                    depth=depth,
                    facts=len(working),
                )
            break

    return ChaseResult(
        structure=working,
        depth=depth,
        saturated=saturated,
        fact_level=fact_level,
        new_elements=new_elements,
        rounds_fired=rounds_fired,
        provenance=provenance,
    )


def datalog_saturate(
    structure: Structure,
    theory: Theory,
    max_depth: "Optional[int]" = None,
    max_facts: "Optional[int]" = 500_000,
) -> ChaseResult:
    """Saturate *structure* under the *datalog* rules of the theory only.

    On a finite structure this always terminates (no new elements are
    ever created).  Used as a building block by the Theorem-2 pipeline
    and by model checking.
    """
    datalog_only = Theory(theory.datalog_rules(), theory.signature)
    return chase(
        structure,
        datalog_only,
        ChaseConfig(max_depth=max_depth, max_facts=max_facts, max_elements=None),
    )


def chase_with_embargo(
    structure: Structure,
    theory: Theory,
    max_depth: "Optional[int]" = None,
    max_facts: "Optional[int]" = 500_000,
) -> ChaseResult:
    """Chase *structure* under the full theory, forbidding new elements.

    This is the executable form of Lemma 5: on the quotient of a
    conservative coloring the full chase needs no new elements, so this
    call saturates; on an insufficient quotient it raises
    :class:`~repro.errors.NewElementEmbargoViolation`.
    """
    return chase(
        structure,
        theory,
        ChaseConfig(
            max_depth=max_depth,
            max_facts=max_facts,
            max_elements=None,
            allow_new_elements=False,
        ),
    )


def is_model(structure: Structure, theory: Theory) -> bool:
    """Whether every rule of *theory* is satisfied in *structure*.

    For each rule and each body match, the head must hold (with the
    existential variables witnessed by existing elements).
    """
    for rule in theory.rules:
        for binding in homomorphisms(rule.body, structure):
            if not _head_satisfied(structure, rule, binding):
                return False
    return True


def violations(structure: Structure, theory: Theory, limit: int = 10) -> List[Tuple[Rule, Dict[Variable, Element]]]:
    """Up to *limit* (rule, body-match) pairs whose head fails.

    Useful diagnostics when :func:`is_model` returns ``False``.
    """
    found: List[Tuple[Rule, Dict[Variable, Element]]] = []
    for rule in theory.rules:
        for binding in homomorphisms(rule.body, structure):
            if not _head_satisfied(structure, rule, binding):
                found.append((rule, binding))
                if len(found) >= limit:
                    return found
    return found
