"""The chase engine.

Implements the paper's chase (Section 1.1) faithfully:

* **non-oblivious** (a.k.a. restricted): an existential TGD fires on a
  body match only if no witness already exists — "new elements are only
  created if needed";
* **parallel rounds**: ``Chase^{i+1}(D,T) = Chase^1(Chase^i(D,T), T)``,
  where one application of ``Chase^1`` fires *all* triggers that are
  unsatisfied at the start of the round simultaneously;
* **one witness per demanded head atom**: within a round, triggers that
  demand the same head atom (same TGP, same frontier value) share a
  single fresh null.  This is what makes Lemma 3(iv) true — "for any
  fixed a ∈ S and TGP R at most one b can exist with S ⊨ R(a, b)".

Two evaluation strategies compute the *same* rounds (property-tested
fact-for-fact equal, nulls included):

* ``"delta"`` (default) — semi-naive trigger enumeration generalised
  from :mod:`repro.chase.seminaive` to existential TGDs.  A rule body
  ``B_1 … B_k`` is evaluated as the union of the k plans "``B_i`` from
  the previous round's delta, the rest from the full indexed
  structure".  Sound because visibility only grows: a body match whose
  facts all predate the last round was enumerated in an earlier round,
  and its head has been satisfied ever since (it either fired or was
  suppressed) — so only delta-touching matches can still demand
  anything.  Cost per round is proportional to the *new* work, where
  the naive strategy re-enumerates every match of every rule each
  round (quadratic in chase depth on growing instances).

* ``"naive"`` — the literal ``Chase^1`` iteration, kept for
  faithfulness ablations and forced automatically for oblivious runs
  (an oblivious trigger re-fires every round, so old matches can never
  be skipped).

Neither strategy copies the structure: a round evaluates against the
working structure and buffers its insertions until all triggers of the
round are enumerated, which *is* the paper's "all triggers evaluated at
the start of the round" semantics.  Witnesses are assigned in a
canonical order at the end of the round, making null identities
independent of enumeration order (and hence of the strategy).

An *oblivious* mode (every trigger creates a witness, used only for
contrast experiments) and a *new-element embargo* mode (used by the
Theorem-2 pipeline to realise Lemma 5's claim) are provided as flags.
Every run records a :class:`~repro.chase.stats.ChaseStats` on its
result — per-round wall time, trigger/delta counters, and index-probe
counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..config import BudgetedConfig, OnBudget, coerce_enum
from ..errors import ChaseBudgetExceeded, NewElementEmbargoViolation
from ..runtime.guard import NULL_GUARD, GuardTripped, RuntimeGuard, StopReason
from ..lf.atoms import Atom
from ..lf.homomorphism import find_homomorphism, homomorphisms
from ..lf.plan import HOM_STATS
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Element, Null, NullFactory, Variable
from ..store import ensure_backend
from .provenance import DEFAULT_MAX_SUPPORTS, SupportStore
from .results import ChaseResult
from .seminaive import _delta_bindings
from .stats import ChaseStats, RoundStats


class ChaseStrategy(str, Enum):
    """How a round's triggers are enumerated (semantics are identical)."""

    DELTA = "delta"
    NAIVE = "naive"

    @classmethod
    def coerce(cls, value: "ChaseStrategy | str") -> "ChaseStrategy":
        """Accept the enum or its string value (no deprecation: strings
        are the documented convenience for this field)."""
        return coerce_enum(value, cls, "strategy")


@dataclass
class ChaseConfig(BudgetedConfig):
    """Tuning knobs for a chase run.

    Attributes
    ----------
    max_depth:
        Maximum number of parallel rounds (``None`` = unbounded).
    max_facts:
        Stop when the structure exceeds this many facts.
    max_elements:
        Stop when the domain exceeds this many elements.
    oblivious:
        Fire every trigger regardless of existing witnesses.  Forces
        the naive strategy (old triggers re-fire every round, so delta
        enumeration would change the semantics).
    allow_new_elements:
        When ``False``, a TGD trigger with no witness raises
        :class:`~repro.errors.NewElementEmbargoViolation` instead of
        inventing a null (Lemma 5 saturation mode).
    on_budget:
        :attr:`~repro.config.OnBudget.RETURN` (default) stops quietly
        with ``saturated=False``; :attr:`~repro.config.OnBudget.RAISE`
        raises :class:`~repro.errors.ChaseBudgetExceeded`.  The legacy
        strings ``"return"``/``"raise"`` still work (deprecated).
    trace:
        Record, for every derived fact, the rules and premise facts
        that produced it — *all* distinct derivations up to
        :attr:`max_supports` per fact, not just the first (see
        :class:`~repro.chase.provenance.SupportStore`).  Off by
        default — it costs memory proportional to the run.
    max_supports:
        Bound on distinct supports recorded per fact when tracing
        (default :data:`~repro.chase.provenance.DEFAULT_MAX_SUPPORTS`).
        The incremental view (:mod:`repro.chase.view`) raises or lowers
        it to trade rederive coverage against trace memory.
    strategy:
        ``"delta"`` (default) or ``"naive"`` — see the module docstring.
        Both produce identical results; naive exists for ablations.
    """

    max_depth: "Optional[int]" = None
    max_facts: "Optional[int]" = 200_000
    max_elements: "Optional[int]" = 50_000
    oblivious: bool = False
    allow_new_elements: bool = True
    on_budget: OnBudget = OnBudget.RETURN
    trace: bool = False
    strategy: ChaseStrategy = ChaseStrategy.DELTA
    max_supports: int = DEFAULT_MAX_SUPPORTS

    def __post_init__(self) -> None:
        super().__post_init__()
        self.strategy = ChaseStrategy.coerce(self.strategy)
        if self.max_depth is None and self.max_facts is None and self.max_elements is None:
            raise ValueError("at least one budget must be set (the chase may diverge)")
        if self.max_supports < 1:
            raise ValueError(f"max_supports must be >= 1, got {self.max_supports}")

    @property
    def effective_strategy(self) -> ChaseStrategy:
        """The strategy actually run: oblivious mode forces naive."""
        return ChaseStrategy.NAIVE if self.oblivious else self.strategy


def _head_satisfied(structure: Structure, rule: Rule, binding: Dict[Variable, Element]) -> bool:
    """Whether the (possibly existential) head already holds under *binding*.

    The frontier variables are bound; the existential ones are left free
    and searched for — the paper's "there is no y ∈ D satisfying
    D ⊨ Q(y, ȳ)" condition, generalised to multi-head rules.
    """
    frontier_binding = {
        var: value for var, value in binding.items() if var in rule.head_variables()
    }
    return find_homomorphism(rule.head, structure, frontier_binding) is not None


def _witness_key(rule: Rule, rule_index: int, binding: Dict[Variable, Element]) -> tuple:
    """Round-local key under which triggers share a witness.

    For (♠5)-shaped TGDs — single head ``R(y, z)`` with ``z`` the
    witness — the key is ``(R, value-of-y)``: any two rules demanding
    the same head atom share the null, which keeps the skeleton's
    out-degree per TGP at one (Lemma 3).  Other shapes fall back to a
    per-rule key on the frontier values.
    """
    if rule.is_single_head:
        head = rule.head_atom
        existentials = rule.existential_variables()
        bound_args = tuple(
            binding[arg] if isinstance(arg, Variable) and arg in binding else None
            for arg in head.args
        )
        if head.arity == 2 and isinstance(head.args[1], Variable) and head.args[1] in existentials:
            if bound_args[0] is not None:
                return ("atom", head.pred, bound_args[0])
    frontier_values = tuple(
        (var.name, binding[var]) for var in sorted(rule.frontier())
    )
    return ("rule", rule_index, frontier_values)


def _oblivious_key(rule_index: int, binding: Dict[Variable, Element], serial: int) -> tuple:
    """Witness key for an oblivious trigger: never shared.

    The *serial* is an explicit per-round trigger counter, so every
    oblivious body match gets its own witnesses (the paper's
    ``c_{t_i, x̄}`` with the trigger identity spelled out; previously
    the uniqueness leaked in from the enclosing scope's invented-null
    count, which depended on evaluation order).
    """
    frontier = tuple(sorted((var.name, value) for var, value in binding.items()))
    return ("oblivious", rule_index, frontier, serial)


def _canonical_key_order(key: tuple) -> "Tuple[str, ...]":
    """A total order on witness keys independent of discovery order.

    Keys mix strings, ints, and domain elements, so they are compared
    through their string forms (element ``str`` is injective per kind:
    constants print their name, nulls ``_:ident``)."""
    return tuple(str(part) for part in key)


def _head_delta_bindings(
    rule: Rule,
    structure: Structure,
    lost_by_pred: "Dict[str, List[Atom]]",
) -> "Iterator[Dict[Variable, Element]]":
    """Goal-directed body matches: triggers whose head could hit a lost fact.

    For each head atom and each lost fact of its predicate, unify the
    head's *universal* positions against the fact (existential
    positions are unconstrained — any witness of the same frontier is
    the same trigger) and enumerate the body under the resulting
    partial binding.  This recovers exactly the triggers a deletion can
    have re-violated: datalog matches whose head fact died, and
    existential matches whose suppressing witness died.  Triggers
    enabled by facts this pass *re-produces* are caught afterwards by
    the ordinary delta resume, so one pass suffices.
    """
    existentials = rule.existential_variables()
    seen: Set[tuple] = set()
    for head in rule.head:
        for fact in lost_by_pred.get(head.pred, ()):
            if fact.arity != head.arity:
                continue
            binding: Dict[Variable, Element] = {}
            consistent = True
            for arg, value in zip(head.args, fact.args):
                if isinstance(arg, Variable):
                    if arg in existentials:
                        continue
                    if binding.setdefault(arg, value) != value:
                        consistent = False
                        break
                elif arg != value:
                    consistent = False
                    break
            if not consistent:
                continue
            for full in homomorphisms(rule.body, structure, binding):
                fingerprint = tuple(
                    sorted((var.name, val) for var, val in full.items())
                )
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                yield full


#: A trigger demanding a witness: (rule index, rule, body binding).
_Demand = Tuple[int, Rule, Dict[Variable, Element]]

#: Within one trigger batch (one rule's bindings), how many triggers
#: pass between two guard checkpoints — bounds how long a single
#: enormous rule body can overshoot a deadline.
_TRIGGER_CHECK_INTERVAL = 1024


def _evaluate_round(
    structure: Structure,
    theory: Theory,
    nulls: NullFactory,
    level: int,
    config: ChaseConfig,
    provenance: "Optional[SupportStore]",
    delta: "Optional[Sequence[Atom]]",
    stats: RoundStats,
    guard: RuntimeGuard = NULL_GUARD,
    rule_indices: "Optional[Sequence[int]]" = None,
    head_delta: "Optional[Dict[str, List[Atom]]]" = None,
) -> Tuple[List[Atom], List[Null]]:
    """One parallel round (``Chase^1``) against the round-start state.

    *structure* is not touched until every trigger of the round has
    been enumerated (insertions are buffered), so all triggers see the
    structure "as it was at the start of the round" without a copy.
    With ``delta=None`` every rule body is fully enumerated (naive /
    first round); otherwise only matches touching the delta are.

    Phase 1 enumerates triggers: datalog heads go straight to the
    buffer; existential triggers with unsatisfied heads are collected
    as witness *demands*.  Phase 2 assigns fresh nulls per demand key
    in a canonical key order — making null identities (and hence the
    whole run) independent of enumeration order and strategy.

    The *guard* is checkpointed per trigger batch (each rule's
    enumeration, plus every :data:`_TRIGGER_CHECK_INTERVAL` triggers
    within one batch); a trip raises
    :class:`~repro.runtime.GuardTripped` *before* any buffered fact is
    inserted, so the caller's structure still holds exactly the last
    completed round.

    *rule_indices* restricts enumeration to the given rules of the
    theory (the incremental view's DRed fallback round evaluates only
    rules whose head predicate lost facts).  Indices stay relative to
    the full theory, so provenance records and witness keys are
    identical to a full round's.  *head_delta* switches those rules to
    goal-directed enumeration against the lost facts
    (:func:`_head_delta_bindings`) instead of a full body sweep.
    """
    produced: List[Atom] = []
    produced_set: Set[Atom] = set()
    demands: "Dict[tuple, List[_Demand]]" = {}
    demand_seen: Set[tuple] = set()
    oblivious_serial = 0

    def record(fact: Atom, rule_index: int, rule: Rule, binding) -> None:
        # Multi-support: every derivation event is offered, including
        # re-derivations of facts that already exist — the SupportStore
        # dedupes and bounds them.  Alternative supports are what let
        # the incremental view (repro.chase.view) rederive cheaply
        # after a deletion instead of falling back to a rechase.
        if provenance.at_capacity(fact):
            return  # skip the premise substitution for saturated facts
        premises = tuple(
            a.substitute(binding) for a in rule.body if not a.is_equality
        )
        provenance.record(fact, rule_index, premises)

    rule_items: "List[Tuple[int, Rule]]" = (
        list(enumerate(theory.rules))
        if rule_indices is None
        else [(index, theory.rules[index]) for index in rule_indices]
    )
    for rule_index, rule in rule_items:
        guard.checkpoint()
        if head_delta is not None:
            bindings = _head_delta_bindings(rule, structure, head_delta)
        elif delta is None:
            bindings: "Iterator[Dict[Variable, Element]]" = homomorphisms(
                rule.body, structure
            )
        else:
            bindings = _delta_bindings(rule, structure, delta)
        for binding in bindings:
            stats.triggers_evaluated += 1
            if stats.triggers_evaluated % _TRIGGER_CHECK_INTERVAL == 0:
                guard.checkpoint()
            if rule.is_datalog:
                fired = False
                for head in rule.head:
                    fact = head.substitute(binding)  # type: ignore[arg-type]
                    if fact not in produced_set and not structure.has_fact(fact):
                        produced_set.add(fact)
                        produced.append(fact)
                        fired = True
                    if provenance is not None:
                        record(fact, rule_index, rule, binding)
                if fired:
                    stats.triggers_fired += 1
                continue
            if not config.oblivious and _head_satisfied(structure, rule, binding):
                stats.triggers_suppressed += 1
                continue
            if not config.allow_new_elements:
                raise NewElementEmbargoViolation(
                    f"rule {rule} demands a new witness on {binding} "
                    f"(Lemma 5 embargo)"
                )
            if config.oblivious:
                key = _oblivious_key(rule_index, binding, oblivious_serial)
                oblivious_serial += 1
            else:
                key = _witness_key(rule, rule_index, binding)
            # Delta enumeration can yield the same trigger through
            # several pivots; demand each (key, rule, binding) once.
            fingerprint = (
                key,
                rule_index,
                tuple(sorted((var.name, value) for var, value in binding.items())),
            )
            if fingerprint in demand_seen:
                continue
            demand_seen.add(fingerprint)
            demands.setdefault(key, []).append((rule_index, rule, binding))

    invented: List[Null] = []
    for key in sorted(demands, key=_canonical_key_order):
        entries = demands[key]
        # Rules sharing a key demand the same head atom and carry
        # exactly one existential each ((♠5) shape); per-rule keys have
        # a single rule.  Either way the witness count is uniform.
        owner_index = min(entry[0] for entry in entries)
        witness_count = len(entries[0][1].existential_variables())
        values = [
            nulls.fresh(rule_index=owner_index, level=level)
            for _ in range(witness_count)
        ]
        invented.extend(values)
        for rule_index, rule, binding in entries:
            stats.triggers_fired += 1
            extended = dict(binding)
            extended.update(zip(sorted(rule.existential_variables()), values))
            for head in rule.head:
                fact = head.substitute(extended)  # type: ignore[arg-type]
                if fact not in produced_set and not structure.has_fact(fact):
                    produced_set.add(fact)
                    produced.append(fact)
                if provenance is not None:
                    record(fact, rule_index, rule, binding)

    for fact in produced:
        structure.add_fact(fact)
    stats.facts_added = len(produced)
    stats.nulls_invented = len(invented)
    return produced, invented


def chase_step(
    structure: Structure,
    theory: Theory,
    nulls: NullFactory,
    level: int,
    config: "Optional[ChaseConfig]" = None,
    provenance: "Optional[SupportStore]" = None,
) -> Tuple[List[Atom], List[Null]]:
    """One parallel round (``Chase^1``) applied in place.

    All triggers are evaluated against the structure *as it was at the
    start of the round* (full naive enumeration); the produced facts
    and nulls are returned (and already inserted into *structure*).
    When *provenance* (a :class:`~repro.chase.provenance.SupportStore`)
    is given, every derivation event of the round is recorded in it.

    A passed *config* is used as given; only ``None`` selects the
    single-round default (an earlier version replaced any falsy value).
    """
    if config is None:
        config = ChaseConfig(max_depth=1)
    stats = RoundStats(round=level)
    return _evaluate_round(
        structure, theory, nulls, level, config, provenance, None, stats
    )


def chase(
    database: Structure,
    theory: Theory,
    config: "Optional[ChaseConfig]" = None,
    **overrides,
) -> ChaseResult:
    """Run the chase on a copy of *database* under *theory*.

    Keyword overrides (``max_depth=...``, ``strategy="naive"`` etc.)
    are applied on top of *config* (or the default config) via
    :meth:`~repro.config.BudgetedConfig.with_overrides` — a validated
    ``dataclasses.replace``.  The input structure is never mutated.

    Returns
    -------
    ChaseResult
        With ``saturated=True`` iff a fixpoint was reached within the
        budgets; the result's :attr:`~ChaseResult.fact_level` maps every
        fact to the round that introduced it (database facts at 0), and
        :attr:`~ChaseResult.stats` carries the run's per-round
        instrumentation.

    Raises
    ------
    ChaseBudgetExceeded
        Only when ``config.on_budget == OnBudget.RAISE``.
    NewElementEmbargoViolation
        When ``allow_new_elements=False`` and an existential trigger
        has no witness.
    """
    if config is None:
        config = ChaseConfig()
    config = config.with_overrides(**overrides)

    # the working copy doubles as the backend-conversion point
    working = ensure_backend(database, config.resolved_store())
    nulls = NullFactory.above(working.domain())
    fact_level: Dict[Atom, int] = {fact: 0 for fact in working.facts()}
    new_elements: List[Null] = []
    rounds_fired: List[int] = []
    provenance: "Optional[SupportStore]" = (
        SupportStore(config.max_supports) if config.trace else None
    )
    strategy = config.effective_strategy
    stats = ChaseStats(strategy=strategy.value)
    hom_before = HOM_STATS.snapshot()
    guard = RuntimeGuard.from_config(config, "chase")
    depth = 0
    saturated = False
    stopped_reason = StopReason.BUDGET
    # None = full enumeration: always for naive, and for delta's first
    # round (where the whole database is the delta).
    delta: "Optional[List[Atom]]" = None

    def guard_stop(reason: StopReason) -> StopReason:
        """Finalise stats and apply the on_budget policy for *reason*."""
        stats.hom = HOM_STATS.since(hom_before)
        if config.should_raise:
            raise guard.exception(reason, stats=stats)
        return reason

    while True:
        reason = guard.check()
        if reason is not None:
            stopped_reason = guard_stop(reason)
            break
        if config.max_depth is not None and depth >= config.max_depth:
            break
        round_stats = RoundStats(
            round=depth + 1,
            delta_in=len(working) if delta is None else len(delta),
        )
        probes_before = working.index_probes
        started = time.perf_counter()
        try:
            produced, invented = _evaluate_round(
                working, theory, nulls, depth + 1, config, provenance, delta,
                round_stats, guard,
            )
        except GuardTripped as trip:
            # The aborted round inserted nothing (insertions are
            # buffered until enumeration completes): the structure is
            # exactly the last completed round.  Record the partial
            # round's counters so the stop is visible in the stats.
            round_stats.wall_ms = (time.perf_counter() - started) * 1000.0
            round_stats.index_probes = working.index_probes - probes_before
            stats.rounds.append(round_stats)
            stopped_reason = guard_stop(trip.reason)
            break
        round_stats.wall_ms = (time.perf_counter() - started) * 1000.0
        round_stats.index_probes = working.index_probes - probes_before
        stats.rounds.append(round_stats)
        if not produced and not invented:
            saturated = True
            stopped_reason = StopReason.FIXPOINT
            break
        depth += 1
        rounds_fired.append(len(produced))
        new_elements.extend(invented)
        for fact in produced:
            fact_level.setdefault(fact, depth)
        delta = produced if strategy is ChaseStrategy.DELTA else None
        over_facts = config.max_facts is not None and len(working) > config.max_facts
        over_elements = (
            config.max_elements is not None and working.domain_size > config.max_elements
        )
        if over_facts or over_elements:
            if config.should_raise:
                stats.hom = HOM_STATS.since(hom_before)
                raise ChaseBudgetExceeded(
                    f"chase exceeded budget at depth {depth}",
                    depth=depth,
                    facts=len(working),
                    stats=stats,
                )
            break

    stats.hom = HOM_STATS.since(hom_before)
    return ChaseResult(
        structure=working,
        depth=depth,
        saturated=saturated,
        fact_level=fact_level,
        new_elements=new_elements,
        rounds_fired=rounds_fired,
        provenance=provenance,
        stats=stats,
        stopped_reason=stopped_reason,
    )


def datalog_saturate(
    structure: Structure,
    theory: Theory,
    max_depth: "Optional[int]" = None,
    max_facts: "Optional[int]" = 500_000,
    **overrides,
) -> ChaseResult:
    """Saturate *structure* under the *datalog* rules of the theory only.

    On a finite structure this always terminates (no new elements are
    ever created).  Used as a building block by the Theorem-2 pipeline
    and by model checking.  The returned result carries the run's
    :class:`~repro.chase.stats.ChaseStats` like any chase.  Extra
    keyword overrides (``wall_ms=...``, ``cancel_token=...``) are
    forwarded to the :class:`ChaseConfig`, which is how the pipeline
    propagates its remaining guard budget into inner saturations.
    """
    datalog_only = Theory(theory.datalog_rules(), theory.signature)
    return chase(
        structure,
        datalog_only,
        ChaseConfig(max_depth=max_depth, max_facts=max_facts, max_elements=None),
        **overrides,
    )


def chase_with_embargo(
    structure: Structure,
    theory: Theory,
    max_depth: "Optional[int]" = None,
    max_facts: "Optional[int]" = 500_000,
    **overrides,
) -> ChaseResult:
    """Chase *structure* under the full theory, forbidding new elements.

    This is the executable form of Lemma 5: on the quotient of a
    conservative coloring the full chase needs no new elements, so this
    call saturates; on an insufficient quotient it raises
    :class:`~repro.errors.NewElementEmbargoViolation`.  Extra keyword
    overrides are forwarded to the :class:`ChaseConfig` (guard-budget
    propagation, as in :func:`datalog_saturate`).
    """
    return chase(
        structure,
        theory,
        ChaseConfig(
            max_depth=max_depth,
            max_facts=max_facts,
            max_elements=None,
            allow_new_elements=False,
        ),
        **overrides,
    )


def is_model(structure: Structure, theory: Theory) -> bool:
    """Whether every rule of *theory* is satisfied in *structure*.

    For each rule and each body match, the head must hold (with the
    existential variables witnessed by existing elements).
    """
    for rule in theory.rules:
        for binding in homomorphisms(rule.body, structure):
            if not _head_satisfied(structure, rule, binding):
                return False
    return True


def violations(structure: Structure, theory: Theory, limit: int = 10) -> List[Tuple[Rule, Dict[Variable, Element]]]:
    """Up to *limit* (rule, body-match) pairs whose head fails.

    Useful diagnostics when :func:`is_model` returns ``False``.
    """
    found: List[Tuple[Rule, Dict[Variable, Element]]] = []
    for rule in theory.rules:
        for binding in homomorphisms(rule.body, structure):
            if not _head_satisfied(structure, rule, binding):
                found.append((rule, binding))
                if len(found) >= limit:
                    return found
    return found
