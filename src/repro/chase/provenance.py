"""Derivation trees and multi-support provenance: *why* is a fact here?

When a chase runs with ``ChaseConfig(trace=True)``, every derivation
event is offered to a :class:`SupportStore` — a bounded, deduplicated
record of the ``(rule, premises)`` pairs that produced each fact.  This
module turns those records into :class:`Derivation` trees — the shape
the paper reasons about when it says "a projection of a valid
derivation from Chase(D,T) is a valid derivation in Chase(M,T)"
(Section 3.3) — and feeds the incremental view maintenance in
:mod:`repro.chase.view` (DRed overdelete/rederive walks the store's
reverse dependents index).

An earlier version kept only the *first* derivation per fact, so
alternative derivations were silently lost: ``explain_all`` showed one
tree where several existed, and — fatally for incremental deletion — a
fact whose first support died looked underivable even when another
support survived.  The store now keeps up to
:data:`DEFAULT_MAX_SUPPORTS` distinct supports per fact (bounded so
tracing stays linear in the run, deduped so re-derivations of the same
trigger cost nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, NamedTuple, Optional, Set, Tuple

from ..errors import ChaseError
from ..lf.atoms import Atom
from ..lf.rules import Theory
from .results import ChaseResult

#: Default bound on distinct supports recorded per fact.  The first
#: derivation is always kept (bound >= 1); beyond the bound further
#: derivation events are dropped — sound for deletion (the DRed
#: fallback rechase in :mod:`repro.chase.view` covers unrecorded
#: alternatives) and bounded in memory.
DEFAULT_MAX_SUPPORTS = 4


class Support(NamedTuple):
    """One recorded derivation event: which rule fired on which premises."""

    rule_index: int
    premises: Tuple[Atom, ...]


class SupportStore:
    """All recorded supports per derived fact, with a reverse index.

    The forward map sends a fact to the tuple of distinct
    :class:`Support` records that produced it (insertion order — the
    first entry is the chronologically first derivation, which keeps
    :func:`explain` deterministic and backwards-compatible).  The
    reverse index sends a fact to the set of facts having it among
    some support's premises — exactly the edge relation DRed
    overdeletion walks.

    Supports are deduplicated and bounded per fact
    (*max_supports*); degenerate self-supports (the fact among its own
    premises, e.g. ``E(a,a), E(a,a) -> E(a,a)``) are rejected — they
    would let a deleted fact "rederive" from itself.
    """

    __slots__ = ("_supports", "_dependents", "max_supports")

    def __init__(self, max_supports: int = DEFAULT_MAX_SUPPORTS):
        if max_supports < 1:
            raise ValueError(f"max_supports must be >= 1, got {max_supports}")
        self._supports: Dict[Atom, List[Support]] = {}
        self._dependents: Dict[Atom, Set[Atom]] = {}
        self.max_supports = max_supports

    # -- recording ------------------------------------------------------
    def record(self, fact: Atom, rule_index: int, premises: Tuple[Atom, ...]) -> bool:
        """Record one derivation event; return ``True`` iff it was kept.

        Dropped when the fact already carries *max_supports* supports,
        when the identical support is already recorded, or when the
        support is a self-support.
        """
        if fact in premises:
            return False
        entry = Support(rule_index, premises)
        existing = self._supports.get(fact)
        if existing is None:
            self._supports[fact] = [entry]
        elif entry in existing:
            return False
        elif len(existing) >= self.max_supports:
            return False
        else:
            existing.append(entry)
        for premise in premises:
            self._dependents.setdefault(premise, set()).add(fact)
        return True

    def at_capacity(self, fact: Atom) -> bool:
        """Whether further :meth:`record` calls for *fact* would be
        dropped by the per-fact bound (lets hot recording paths skip
        building the premise tuple at all)."""
        entries = self._supports.get(fact)
        return entries is not None and len(entries) >= self.max_supports

    # -- lookup ---------------------------------------------------------
    def supports(self, fact: Atom) -> Tuple[Support, ...]:
        """All recorded supports of *fact* (empty if unrecorded)."""
        return tuple(self._supports.get(fact, ()))

    def first(self, fact: Atom) -> "Optional[Support]":
        """The chronologically first support, or ``None`` if unrecorded."""
        found = self._supports.get(fact)
        return found[0] if found else None

    def dependents(self, fact: Atom) -> "FrozenSet[Atom]":
        """Facts with *fact* among some recorded support's premises."""
        return frozenset(self._dependents.get(fact, ()))

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._supports

    def __len__(self) -> int:
        return len(self._supports)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._supports)

    def facts(self) -> Tuple[Atom, ...]:
        """The recorded facts (arbitrary order)."""
        return tuple(self._supports)

    @property
    def support_count(self) -> int:
        """Total recorded supports across all facts."""
        return sum(len(entries) for entries in self._supports.values())

    # -- retraction bookkeeping ----------------------------------------
    def discard(self, fact: Atom) -> None:
        """Forget every support *of* ``fact`` (reverse edges included).

        Supports that mention ``fact`` as a *premise* of other facts are
        kept — DRed's rederivation phase needs them to survive the
        overdeletion of the premise (a later rederive of the premise
        revalidates them).
        """
        entries = self._supports.pop(fact, None)
        if entries is None:
            return
        for entry in entries:
            for premise in entry.premises:
                bucket = self._dependents.get(premise)
                if bucket is not None:
                    bucket.discard(fact)
                    if not bucket:
                        del self._dependents[premise]

    def copy(self) -> "SupportStore":
        """An independent copy (the view's COW snapshot path)."""
        clone = SupportStore(self.max_supports)
        clone._supports = {
            fact: list(entries) for fact, entries in self._supports.items()
        }
        clone._dependents = {
            fact: set(deps) for fact, deps in self._dependents.items()
        }
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SupportStore({len(self._supports)} facts, "
            f"{self.support_count} supports, bound {self.max_supports})"
        )


@dataclass
class Derivation:
    """A derivation tree for one fact.

    Attributes
    ----------
    fact:
        The derived fact (or a database fact, at the leaves).
    rule_index:
        Index of the producing rule in the theory (``None`` for
        database facts).
    premises:
        Sub-derivations of the body facts (empty at the leaves).
    """

    fact: Atom
    rule_index: "Optional[int]" = None
    premises: List["Derivation"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether this is a database fact (no rule produced it)."""
        return self.rule_index is None

    @property
    def height(self) -> int:
        """Length of the longest derivation chain (leaves have 0).

        This is the fact's *derivation depth* in the sequential sense;
        it upper-bounds the parallel-round level recorded in
        :attr:`~repro.chase.results.ChaseResult.fact_level`.
        """
        if not self.premises:
            return 0
        return 1 + max(premise.height for premise in self.premises)

    @property
    def size(self) -> int:
        """Number of rule applications in the tree."""
        own = 0 if self.is_leaf else 1
        return own + sum(premise.size for premise in self.premises)

    def rules_used(self) -> "List[int]":
        """The distinct rule indices appearing in the tree (sorted)."""
        found = set()
        if self.rule_index is not None:
            found.add(self.rule_index)
        for premise in self.premises:
            found.update(premise.rules_used())
        return sorted(found)

    def render(self, theory: "Optional[Theory]" = None, indent: str = "") -> str:
        """An ASCII rendering of the tree, optionally naming the rules."""
        if self.is_leaf:
            label = "database"
        elif theory is not None:
            label = f"rule {self.rule_index}: {theory[self.rule_index]}"
        else:
            label = f"rule {self.rule_index}"
        lines = [f"{indent}{self.fact}   [{label}]"]
        for premise in self.premises:
            lines.append(premise.render(theory, indent + "    "))
        return "\n".join(lines)


def _is_database_fact(result: ChaseResult, fact: Atom) -> bool:
    """Whether *fact* is extensional in the traced run.

    A fact is a database fact iff its recorded level is 0.  A
    hand-built result with no ``fact_level`` map cannot distinguish, so
    everything unrecorded is treated as base data there (the legacy
    behaviour, kept only for that degenerate case).
    """
    if not result.fact_level:
        return True
    return result.fact_level.get(fact, 1) == 0


def explain(
    result: ChaseResult,
    fact: Atom,
    _building: "Optional[set]" = None,
) -> Derivation:
    """The derivation tree of *fact* from a traced chase run.

    When the fact carries several recorded supports the chronologically
    first one is expanded (see :func:`alternative_derivations` for the
    rest).

    Raises
    ------
    ChaseError
        If the run was not traced, the fact is not in the chase, or the
        fact is *derived* (level > 0) yet carries no recorded support —
        a corrupted trace.  An earlier version silently rendered such
        facts as database leaves, which let view rederivation mistake a
        derived fact for base data.
    """
    if result.provenance is None:
        raise ChaseError("chase was not traced; rerun with ChaseConfig(trace=True)")
    if not result.structure.has_fact(fact):
        raise ChaseError(f"{fact} is not a fact of the chase")
    building = _building if _building is not None else set()
    if _is_database_fact(result, fact):
        return Derivation(fact=fact)  # extensional: a leaf, even if also derivable
    record = result.provenance.first(fact)
    if record is None:
        raise ChaseError(
            f"{fact} is a derived fact (level "
            f"{result.fact_level.get(fact)}) with no recorded derivation — "
            f"the provenance trace is incomplete or corrupted"
        )
    if fact in building:  # pragma: no cover - defensive (cannot happen:
        return Derivation(fact=fact)  # premises are strictly older)
    building.add(fact)
    rule_index, premises = record
    children = [explain(result, premise, building) for premise in premises]
    building.discard(fact)
    return Derivation(fact=fact, rule_index=rule_index, premises=children)


def alternative_derivations(result: ChaseResult, fact: Atom) -> "List[Derivation]":
    """One derivation tree per recorded support of *fact*.

    Database facts yield a single leaf.  Each tree expands one of the
    fact's own supports; premises are expanded through their *first*
    support (expanding every combination would be exponential).
    """
    if result.provenance is None:
        raise ChaseError("chase was not traced; rerun with ChaseConfig(trace=True)")
    if not result.structure.has_fact(fact):
        raise ChaseError(f"{fact} is not a fact of the chase")
    if _is_database_fact(result, fact):
        return [Derivation(fact=fact)]
    found = []
    for rule_index, premises in result.provenance.supports(fact):
        children = [explain(result, premise) for premise in premises]
        found.append(Derivation(fact=fact, rule_index=rule_index, premises=children))
    if not found:
        raise ChaseError(
            f"{fact} is a derived fact with no recorded derivation — "
            f"the provenance trace is incomplete or corrupted"
        )
    return found


def explain_all(
    result: ChaseResult, predicate: str, limit: int = 10
) -> "List[Derivation]":
    """Derivation trees for up to *limit* facts of the given predicate."""
    facts = sorted(result.structure.facts_with_pred(predicate), key=str)[:limit]
    return [explain(result, fact) for fact in facts]


def deepest_derivation(result: ChaseResult) -> "Optional[Derivation]":
    """The derivation tree of a fact at the maximum recorded level."""
    if not result.fact_level:
        return None
    fact = max(result.fact_level, key=lambda f: result.fact_level[f])
    return explain(result, fact)
