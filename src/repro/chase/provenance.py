"""Derivation trees: *why* is a fact in the chase?

When a chase runs with ``ChaseConfig(trace=True)``, every derived fact
records the rule and premise facts that produced it first.  This module
turns those records into :class:`Derivation` trees — the shape the
paper reasons about when it says "a projection of a valid derivation
from Chase(D,T) is a valid derivation in Chase(M,T)" (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ChaseError
from ..lf.atoms import Atom
from ..lf.rules import Theory
from .results import ChaseResult


@dataclass
class Derivation:
    """A derivation tree for one fact.

    Attributes
    ----------
    fact:
        The derived fact (or a database fact, at the leaves).
    rule_index:
        Index of the producing rule in the theory (``None`` for
        database facts).
    premises:
        Sub-derivations of the body facts (empty at the leaves).
    """

    fact: Atom
    rule_index: "Optional[int]" = None
    premises: List["Derivation"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether this is a database fact (no rule produced it)."""
        return self.rule_index is None

    @property
    def height(self) -> int:
        """Length of the longest derivation chain (leaves have 0).

        This is the fact's *derivation depth* in the sequential sense;
        it upper-bounds the parallel-round level recorded in
        :attr:`~repro.chase.results.ChaseResult.fact_level`.
        """
        if not self.premises:
            return 0
        return 1 + max(premise.height for premise in self.premises)

    @property
    def size(self) -> int:
        """Number of rule applications in the tree."""
        own = 0 if self.is_leaf else 1
        return own + sum(premise.size for premise in self.premises)

    def rules_used(self) -> "List[int]":
        """The distinct rule indices appearing in the tree (sorted)."""
        found = set()
        if self.rule_index is not None:
            found.add(self.rule_index)
        for premise in self.premises:
            found.update(premise.rules_used())
        return sorted(found)

    def render(self, theory: "Optional[Theory]" = None, indent: str = "") -> str:
        """An ASCII rendering of the tree, optionally naming the rules."""
        if self.is_leaf:
            label = "database"
        elif theory is not None:
            label = f"rule {self.rule_index}: {theory[self.rule_index]}"
        else:
            label = f"rule {self.rule_index}"
        lines = [f"{indent}{self.fact}   [{label}]"]
        for premise in self.premises:
            lines.append(premise.render(theory, indent + "    "))
        return "\n".join(lines)


def explain(
    result: ChaseResult,
    fact: Atom,
    _building: "Optional[set]" = None,
) -> Derivation:
    """The derivation tree of *fact* from a traced chase run.

    Raises
    ------
    ChaseError
        If the run was not traced, or the fact is not in the chase.
    """
    if result.provenance is None:
        raise ChaseError("chase was not traced; rerun with ChaseConfig(trace=True)")
    if not result.structure.has_fact(fact):
        raise ChaseError(f"{fact} is not a fact of the chase")
    building = _building if _building is not None else set()
    record = result.provenance.get(fact)
    if record is None:
        return Derivation(fact=fact)  # database fact
    if fact in building:  # pragma: no cover - defensive (cannot happen:
        return Derivation(fact=fact)  # premises are strictly older)
    building.add(fact)
    rule_index, premises = record
    children = [explain(result, premise, building) for premise in premises]
    building.discard(fact)
    return Derivation(fact=fact, rule_index=rule_index, premises=children)


def explain_all(
    result: ChaseResult, predicate: str, limit: int = 10
) -> "List[Derivation]":
    """Derivation trees for up to *limit* facts of the given predicate."""
    facts = sorted(result.structure.facts_with_pred(predicate), key=str)[:limit]
    return [explain(result, fact) for fact in facts]


def deepest_derivation(result: ChaseResult) -> "Optional[Derivation]":
    """The derivation tree of a fact at the maximum recorded level."""
    if not result.fact_level:
        return None
    fact = max(result.fact_level, key=lambda f: result.fact_level[f])
    return explain(result, fact)
