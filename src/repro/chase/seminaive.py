"""Semi-naive datalog evaluation.

The round-based engine in :mod:`repro.chase.engine` re-evaluates every
rule against the whole structure each round — faithful to the paper's
``Chase^i`` but wasteful for pure datalog saturation, where the final
fixpoint is all that matters.  This module implements the classic
semi-naive strategy: a rule body with atoms ``B_1 … B_k`` only needs
the matches where at least one ``B_i`` is matched against the *delta*
(the facts new in the previous iteration), evaluated as the union of
the k plans "``B_i`` from delta, the rest from the full structure".

The result is fact-for-fact identical to the naive fixpoint (property
tested), usually much faster on recursive rules — the
``bench_ablation_seminaive`` benchmark quantifies it.

The delta machinery below (:func:`_delta_bindings`) is shared with the
main chase engine: :mod:`repro.chase.engine` generalises it to
existential TGDs as its default ``"delta"`` strategy (see DESIGN.md §4).
Insertions are buffered per iteration — the homomorphism matcher hands
out live index views, so the structure must not grow mid-enumeration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ChaseBudgetExceeded
from ..lf.atoms import Atom
from ..lf.homomorphism import homomorphisms
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Element, Variable


def _match_atom_against_facts(
    atom: Atom,
    facts: "Sequence[Atom]",
    binding: Dict[Variable, Element],
) -> Iterator[Dict[Variable, Element]]:
    """All extensions of *binding* matching *atom* against *facts*."""
    for fact in facts:
        if fact.pred != atom.pred or fact.arity != atom.arity:
            continue
        extended = dict(binding)
        good = True
        for arg, value in zip(atom.args, fact.args):
            if isinstance(arg, Variable):
                bound = extended.get(arg)
                if bound is None:
                    extended[arg] = value
                elif bound != value:
                    good = False
                    break
            elif arg != value:
                good = False
                break
        if good:
            yield extended


def _delta_bindings(
    rule: Rule,
    structure: Structure,
    delta: "Sequence[Atom]",
) -> Iterator[Dict[Variable, Element]]:
    """Bindings of the rule body with at least one atom in *delta*.

    Evaluated as the union over the pivot position; the pivot is
    matched against the delta, the remaining atoms against the full
    structure via the indexed matcher.  Duplicate bindings across
    pivots are fine — head insertion is idempotent.
    """
    relational = [a for a in rule.body if not a.is_equality]
    equalities = [a for a in rule.body if a.is_equality]
    for pivot_index, pivot in enumerate(relational):
        rest = relational[:pivot_index] + relational[pivot_index + 1:] + equalities
        for seed in _match_atom_against_facts(pivot, delta, {}):
            yield from homomorphisms(rest, structure, seed)


def seminaive_saturate(
    structure: Structure,
    theory: Theory,
    max_facts: "Optional[int]" = 1_000_000,
) -> Structure:
    """Saturate *structure* under the datalog rules of *theory*.

    Returns a new structure (the input is not mutated) with exactly the
    naive fixpoint's facts.  Existential rules are ignored, matching
    :func:`repro.chase.engine.datalog_saturate`.

    Raises
    ------
    ChaseBudgetExceeded
        If the fixpoint exceeds *max_facts* facts.
    """
    rules = [r for r in theory.rules if r.is_datalog]
    working = structure.copy()

    def one_iteration(delta: "Optional[Sequence[Atom]]") -> List[Atom]:
        """One pass over the rules; new facts are buffered, then
        inserted (the matcher iterates live index views).  ``delta is
        None`` means the initial full evaluation."""
        produced: List[Atom] = []
        produced_set: Set[Atom] = set()
        for rule in rules:
            bindings = (
                homomorphisms(rule.body, working)
                if delta is None
                else _delta_bindings(rule, working, delta)
            )
            for binding in bindings:
                for head in rule.head:
                    fact = head.substitute(binding)  # type: ignore[arg-type]
                    if fact not in produced_set and not working.has_fact(fact):
                        produced_set.add(fact)
                        produced.append(fact)
        for fact in produced:
            working.add_fact(fact)
        return produced

    # Iteration 0: full naive round (every fact is "new").
    delta = one_iteration(None)
    while delta:
        if max_facts is not None and len(working) > max_facts:
            raise ChaseBudgetExceeded(
                f"semi-naive saturation exceeded {max_facts} facts",
                facts=len(working),
            )
        delta = one_iteration(delta)
    return working
