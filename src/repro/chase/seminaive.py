"""Semi-naive datalog evaluation.

The round-based engine in :mod:`repro.chase.engine` re-evaluates every
rule against the whole structure each round — faithful to the paper's
``Chase^i`` but wasteful for pure datalog saturation, where the final
fixpoint is all that matters.  This module implements the classic
semi-naive strategy: a rule body with atoms ``B_1 … B_k`` only needs
the matches where at least one ``B_i`` is matched against the *delta*
(the facts new in the previous iteration), evaluated as the union of
the k plans "``B_i`` from delta, the rest from the full structure".

The result is fact-for-fact identical to the naive fixpoint (property
tested), usually much faster on recursive rules — the
``bench_ablation_seminaive`` benchmark quantifies it.

The delta machinery below (:func:`_delta_bindings`) is shared with the
main chase engine: :mod:`repro.chase.engine` generalises it to
existential TGDs as its default ``"delta"`` strategy (see DESIGN.md §4).
Insertions are buffered per iteration — the homomorphism matcher hands
out live index views, so the structure must not grow mid-enumeration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ChaseBudgetExceeded
from ..lf import homomorphism as _homomorphism
from ..lf.atoms import Atom
from ..lf.homomorphism import homomorphisms
from ..lf.plan import plan_for
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Element, Variable


def _planner_active() -> bool:
    """Whether the compiled-plan matcher is enabled (ablation switch)."""
    return _homomorphism._USE_PLANNER


#: Per-rule delta-evaluation info: ``rule -> (relational, equalities,
#: pivot_plans)`` where ``pivot_plans`` is one ``(pivot, rest-plan)``
#: per body position, or ``None`` when the body has equality atoms (the
#: planner rejects those; such rules use the generic matcher).  Bounded
#: like the plan cache: cleared wholesale if it ever fills.
_RULE_DELTA_CACHE: Dict[Rule, tuple] = {}
_RULE_DELTA_CACHE_MAX = 4096


def _rule_delta_info(rule: Rule, structure: Structure) -> tuple:
    info = _RULE_DELTA_CACHE.get(rule)
    if info is not None:
        return info
    relational = tuple(a for a in rule.body if not a.is_equality)
    equalities = tuple(a for a in rule.body if a.is_equality)
    pivot_plans = None
    if not equalities:
        pivot_plans = []
        for pivot_index, pivot in enumerate(relational):
            rest = relational[:pivot_index] + relational[pivot_index + 1:]
            rest_vars: Set[Variable] = set()
            for item in rest:
                rest_vars.update(item.variable_set())
            prebound = frozenset(pivot.variable_set() & rest_vars)
            pivot_plans.append((pivot, plan_for(rest, prebound, structure)))
    info = (relational, equalities, pivot_plans)
    if len(_RULE_DELTA_CACHE) >= _RULE_DELTA_CACHE_MAX:
        _RULE_DELTA_CACHE.clear()
    _RULE_DELTA_CACHE[rule] = info
    return info


def _match_atom_against_facts(
    atom: Atom,
    facts: "Sequence[Atom]",
    binding: Dict[Variable, Element],
) -> Iterator[Dict[Variable, Element]]:
    """All extensions of *binding* matching *atom* against *facts*."""
    for fact in facts:
        if fact.pred != atom.pred or fact.arity != atom.arity:
            continue
        extended = dict(binding)
        good = True
        for arg, value in zip(atom.args, fact.args):
            if isinstance(arg, Variable):
                bound = extended.get(arg)
                if bound is None:
                    extended[arg] = value
                elif bound != value:
                    good = False
                    break
            elif arg != value:
                good = False
                break
        if good:
            yield extended


def _delta_bindings(
    rule: Rule,
    structure: Structure,
    delta: "Sequence[Atom]",
) -> Iterator[Dict[Variable, Element]]:
    """Bindings of the rule body with at least one atom in *delta*.

    Evaluated as the union over the pivot position; the pivot is
    matched against the delta, the remaining atoms against the full
    structure via the indexed matcher.  Duplicate bindings across
    pivots are fine — head insertion is idempotent.

    When the body has no equality atoms and the planner is enabled,
    each pivot's rest-plan is fetched once and run directly per seed —
    per-seed calls through :func:`homomorphisms` would re-resolve
    equalities and re-hash the plan-cache key every time, which is pure
    overhead on the small deltas this is built for.
    """
    relational, equalities, pivot_plans = _rule_delta_info(rule, structure)
    if pivot_plans is not None and _planner_active():
        for pivot, plan in pivot_plans:
            for seed in _match_atom_against_facts(pivot, delta, {}):
                yield from plan.bindings(structure, seed)
        return
    for pivot_index, pivot in enumerate(relational):
        rest = list(relational[:pivot_index] + relational[pivot_index + 1:]) + list(equalities)
        for seed in _match_atom_against_facts(pivot, delta, {}):
            yield from homomorphisms(rest, structure, seed)


def seminaive_saturate(
    structure: Structure,
    theory: Theory,
    max_facts: "Optional[int]" = 1_000_000,
) -> Structure:
    """Saturate *structure* under the datalog rules of *theory*.

    Returns a new structure (the input is not mutated) with exactly the
    naive fixpoint's facts.  Existential rules are ignored, matching
    :func:`repro.chase.engine.datalog_saturate`.

    Raises
    ------
    ChaseBudgetExceeded
        If the fixpoint exceeds *max_facts* facts.
    """
    rules = [r for r in theory.rules if r.is_datalog]
    working = structure.copy()

    def one_iteration(delta: "Optional[Sequence[Atom]]") -> List[Atom]:
        """One pass over the rules; new facts are buffered, then
        inserted (the matcher iterates live index views).  ``delta is
        None`` means the initial full evaluation."""
        produced: List[Atom] = []
        produced_set: Set[Atom] = set()
        for rule in rules:
            bindings = (
                homomorphisms(rule.body, working)
                if delta is None
                else _delta_bindings(rule, working, delta)
            )
            for binding in bindings:
                for head in rule.head:
                    fact = head.substitute(binding)  # type: ignore[arg-type]
                    if fact not in produced_set and not working.has_fact(fact):
                        produced_set.add(fact)
                        produced.append(fact)
        for fact in produced:
            working.add_fact(fact)
        return produced

    # Iteration 0: full naive round (every fact is "new").
    delta = one_iteration(None)
    while delta:
        if max_facts is not None and len(working) > max_facts:
            raise ChaseBudgetExceeded(
                f"semi-naive saturation exceeded {max_facts} facts",
                facts=len(working),
            )
        delta = one_iteration(delta)
    return working


def incremental_datalog_saturate(
    structure: Structure,
    theory: Theory,
    seed: "Sequence[Atom]",
    max_facts: "Optional[int]" = 1_000_000,
    rules: "Optional[Sequence[Rule]]" = None,
) -> "Tuple[int, int]":
    """Re-saturate *structure* **in place** after adding the *seed* facts.

    Precondition: ``structure`` minus *seed* was already saturated under
    the datalog rules of *theory* (then only bindings touching the seed
    can fire, so the initial full round of :func:`seminaive_saturate` is
    unnecessary — this is the per-node saturation of the finite-model
    search, where every state extends an already-saturated parent by a
    handful of head facts).

    Returns ``(facts_added, rounds)`` — the seed itself is not counted.

    *rules*, when given, must be exactly the datalog rules of *theory*
    — callers saturating many states against one theory precompute the
    list once instead of re-filtering (and re-deriving variable sets)
    per state.

    Raises
    ------
    ChaseBudgetExceeded
        If the fixpoint exceeds *max_facts* facts; the structure is left
        partially saturated (callers treating this as a pruned branch
        must discard it).
    """
    if rules is None:
        rules = [r for r in theory.rules if r.is_datalog]
    added = 0
    rounds = 0
    delta: "Sequence[Atom]" = list(seed)
    while delta and rules:
        rounds += 1
        produced: List[Atom] = []
        produced_set: Set[Atom] = set()
        for rule in rules:
            for binding in _delta_bindings(rule, structure, delta):
                for head in rule.head:
                    fact = head.substitute(binding)  # type: ignore[arg-type]
                    if fact not in produced_set and not structure.has_fact(fact):
                        produced_set.add(fact)
                        produced.append(fact)
        for fact in produced:
            structure.add_fact(fact)
        added += len(produced)
        if max_facts is not None and len(structure) > max_facts:
            raise ChaseBudgetExceeded(
                f"incremental saturation exceeded {max_facts} facts",
                facts=len(structure),
            )
        delta = produced
    return added, rounds
