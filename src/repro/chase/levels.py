"""Level-stratified views of the chase and derivation depth.

The BDD property (Section 1.1) is usually phrased through derivation
depth: ``T`` is BDD iff for each query Ψ there is ``k_Ψ`` such that
``Chase(D,T) ⊨ Ψ`` implies ``Chase^{k_Ψ}(D,T) ⊨ Ψ`` for every D.  The
helpers here measure the *observed* derivation depth of a query on a
concrete database — the empirical counterpart used to sanity-check the
rewriting engine's ``k_Ψ``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..lf.homomorphism import homomorphisms
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Theory
from ..lf.structures import Structure
from .engine import ChaseConfig, chase
from .results import ChaseResult


def chase_levels(
    database: Structure,
    theory: Theory,
    depth: int,
    max_facts: "Optional[int]" = 200_000,
) -> List[Structure]:
    """The sequence ``Chase^0, Chase^1, ..., Chase^depth`` (as far as the
    budgets allow; shorter if the chase saturates earlier)."""
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=depth, max_facts=max_facts, max_elements=None),
    )
    return [result.truncate(level) for level in range(result.depth + 1)]


def observed_derivation_depth(
    result: ChaseResult,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
) -> "Optional[int]":
    """Least ``k`` with ``Chase^k ⊨ query``, from a finished chase run.

    ``None`` when the query does not hold in the chased structure (note
    that on a truncated run this only means "not yet").

    Raises
    ------
    ValueError
        When a matched fact is missing from ``result.fact_level`` —
        every fact of a chase result must carry its level (database
        facts at 0), so a miss is a bookkeeping bug in whoever built
        the result; silently defaulting it to level 0 would masquerade
        as a depth-0 derivation.
    """
    if isinstance(query, UnionOfConjunctiveQueries):
        depths = [observed_derivation_depth(result, cq) for cq in query]
        known = [d for d in depths if d is not None]
        return min(known) if known else None
    best: "Optional[int]" = None
    for binding in homomorphisms(query.atoms, result.structure):
        levels = []
        for atom in query.atoms:
            if atom.is_equality:
                continue
            fact = atom.substitute(binding)  # type: ignore[arg-type]
            level = result.fact_level.get(fact)
            if level is None:
                raise ValueError(
                    f"matched fact {fact} has no entry in fact_level: "
                    f"the chase result's level bookkeeping is inconsistent"
                )
            levels.append(level)
        depth = max(levels, default=0)
        if best is None or depth < best:
            best = depth
            if best == 0:
                break
    return best


def query_depth_profile(
    database: Structure,
    theory: Theory,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
    max_depth: int,
) -> Tuple["Optional[int]", ChaseResult]:
    """Chase up to *max_depth* and report the query's derivation depth.

    Returns ``(depth, result)`` where ``depth`` is the least level at
    which the query holds (``None`` if it does not hold within the
    truncation).
    """
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=max_depth, max_facts=None, max_elements=None),
    )
    return observed_derivation_depth(result, query), result
