"""Incremental chase views: maintain a chased fixpoint under updates.

A :class:`ChaseView` wraps the result of a chase and keeps it a
fixpoint as the underlying database changes, without rechasing from
scratch:

* **insert** — resume the semi-naive chase with the delta seeded by
  exactly the new facts.  Sound for the same reason the delta strategy
  is sound within one run (:mod:`repro.chase.engine`): the pre-update
  structure is a fixpoint, so every trigger not touching a new fact is
  already settled, and only delta-touching matches can demand anything.

* **delete** — DRed (delete-and-rederive) driven by the recorded
  multi-support provenance (:class:`~repro.chase.provenance.SupportStore`):

  1. *overdelete* every derived fact reachable from a removed fact
     through the reverse dependents index (base facts are extensional
     and never overdeleted);
  2. *rederive* overdeleted facts bottom-up from surviving facts via
     their recorded alternative supports (well-founded: a fact only
     comes back through premises actually present);
  3. *fallback* — one goal-directed round over the rules whose head
     predicate lost facts, enumerating only body matches whose head
     unifies with a lost fact (:func:`~repro.chase.engine._head_delta_bindings`).
     This covers everything the records cannot: supports dropped by
     the per-fact bound, existential triggers whose witness died (the
     restricted chase is not monotone under deletion — removing a
     witness can *un-suppress* a trigger), and removed base facts that
     remain derivable;
  4. resume delta rounds with the full theory until a fixpoint.

The maintained fixpoint is **not** promised to be fact-for-fact equal
to a fresh rechase — the restricted chase is not confluent under
suppression, so the incremental result may keep nulls a fresh run
would suppress.  Both are universal models of (base, theory), hence
homomorphically equivalent: certain answers, Boolean verdicts, and the
constants-only facts coincide (pinned by the property suite in
``tests/property/test_view_parity.py``).

Budgets and cancellation go through the same
:class:`~repro.runtime.RuntimeGuard` contract as a batch chase: each
``update`` is guarded by the config's ``wall_ms`` / ``max_rss_mb`` /
``cancel_token``; an interrupted update leaves the view consistent at
the last completed phase and stashes the remaining frontier, which the
next ``update`` (or :meth:`ChaseView.refresh`) drains first.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ChaseBudgetExceeded, ChaseError
from ..lf.atoms import Atom
from ..lf.homomorphism import all_answers, satisfies
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element, Null, NullFactory
from ..runtime.guard import GuardTripped, RuntimeGuard, StopReason
from .engine import ChaseConfig, ChaseStrategy, _evaluate_round, chase
from .provenance import SupportStore
from .results import ChaseResult
from .stats import IncrStats, RoundStats


@dataclass
class IncrementalConfig(ChaseConfig):
    """A :class:`~repro.chase.ChaseConfig` for incremental views.

    Tracing is forced on (the view *is* a consumer of the support
    records) and the delta strategy is forced (the resume is inherently
    semi-naive); the oblivious chase is rejected — an oblivious trigger
    re-fires every round, so "resume from a fixpoint" has no meaning
    there.

    Attributes
    ----------
    max_update_rounds:
        Per-``update`` bound on resumed semi-naive rounds (``None`` =
        unbounded).  Tripping it follows the config's ``on_budget``
        policy, and the unconsumed delta is stashed for the next
        update/refresh.
    """

    max_update_rounds: "Optional[int]" = None

    def __post_init__(self) -> None:
        self.trace = True
        self.strategy = ChaseStrategy.DELTA
        super().__post_init__()
        if self.oblivious:
            raise ValueError(
                "incremental views require the non-oblivious chase "
                "(oblivious triggers re-fire every round; there is no "
                "fixpoint to maintain)"
            )
        if self.max_update_rounds is not None and self.max_update_rounds < 1:
            raise ValueError(
                f"max_update_rounds must be >= 1, got {self.max_update_rounds}"
            )


@dataclass
class UpdateResult:
    """Outcome of one :meth:`ChaseView.update`.

    Attributes
    ----------
    added / removed:
        The *net* change to the view's fact set: facts present after
        the update that were absent before, and vice versa.  (A fact
        overdeleted and rederived within the update appears in
        neither.)
    saturated:
        Whether the view is a fixpoint again after this update.
    stopped_reason:
        ``fixpoint`` when saturated, otherwise the uniform
        :class:`~repro.runtime.StopReason` budget vocabulary.
    stats:
        The update's :class:`~repro.chase.stats.IncrStats`.
    """

    added: Tuple[Atom, ...]
    removed: Tuple[Atom, ...]
    saturated: bool
    stopped_reason: StopReason
    stats: IncrStats

    def __str__(self) -> str:
        status = "saturated" if self.saturated else f"stopped:{self.stopped_reason.value}"
        return (
            f"UpdateResult(+{len(self.added)}/-{len(self.removed)}, {status})"
        )


@dataclass
class ViewAnswer:
    """Certain-answer report for one query against a view.

    Mirrors :class:`~repro.chase.certain.CertainReport`'s three-valued
    contract: ``True`` iff a certain answer exists, ``False`` iff the
    view is saturated without one, ``None`` when the view is currently
    truncated (a pending budget-stopped update) and the query is
    absent.
    """

    verdict: "Optional[bool]"
    answers: "Set[Tuple[Element, ...]]"
    complete: bool


class ChaseView:
    """A chased fixpoint maintained incrementally under fact updates.

    Parameters
    ----------
    database:
        The initial base facts (any :class:`~repro.lf.structures.Structure`
        backend; the view converts per ``config.store`` and never
        mutates the input).
    theory:
        The TGD theory the view stays closed under.
    config:
        An :class:`IncrementalConfig` (a plain
        :class:`~repro.chase.ChaseConfig` is promoted field-by-field);
        keyword *overrides* are applied on top.

    The view owns its working structure — callers must treat
    :attr:`structure` as read-only and go through :meth:`update`.
    """

    def __init__(
        self,
        database: Structure,
        theory: Theory,
        config: "Optional[ChaseConfig]" = None,
        **overrides,
    ):
        if config is None:
            config = IncrementalConfig()
        elif not isinstance(config, IncrementalConfig):
            config = IncrementalConfig(
                **{f.name: getattr(config, f.name) for f in fields(config)}
            )
        self.config: IncrementalConfig = config.with_overrides(**overrides)
        self.theory = theory
        self._base: Set[Atom] = set(database.facts())

        result = chase(database, theory, self.config)
        self._working: Structure = result.structure
        self._provenance: SupportStore = result.provenance  # trace is forced
        self._fact_level: Dict[Atom, int] = dict(result.fact_level)
        self._depth: int = result.depth
        self.saturated: bool = result.saturated
        self.stopped_reason: StopReason = result.stopped_reason
        self.initial_result: ChaseResult = result
        self._nulls = NullFactory.above(self._working.domain())

        # Stashed continuation state for budget-interrupted updates: the
        # unconsumed semi-naive frontier, overdeleted facts not yet
        # rederive-checked, and lost facts still owed a fallback round.
        self._pending_delta: List[Atom] = (
            [] if result.saturated else result.facts_at_level(result.depth)
        )
        self._pending_lost: Set[Atom] = set()
        self._fallback_lost: Set[Atom] = set()
        self.update_stats: List[IncrStats] = []

    # -- inspection -----------------------------------------------------
    @property
    def structure(self) -> Structure:
        """The maintained fixpoint (read-only by convention)."""
        return self._working

    def facts(self) -> "frozenset[Atom]":
        return self._working.facts()

    def __len__(self) -> int:
        return len(self._working)

    def base_facts(self) -> "frozenset[Atom]":
        """The current extensional database."""
        return frozenset(self._base)

    @property
    def depth(self) -> int:
        """Chase rounds completed over the view's lifetime."""
        return self._depth

    def level_of(self, fact: Atom) -> int:
        """The round that introduced *fact* (0 for base facts)."""
        return self._fact_level[fact]

    def as_result(self) -> ChaseResult:
        """A :class:`~repro.chase.ChaseResult` snapshot of the view.

        Shares the working structure and provenance (no copy) — usable
        with :func:`repro.chase.provenance.explain` and friends.
        """
        return ChaseResult(
            structure=self._working,
            depth=self._depth,
            saturated=self.saturated,
            fact_level=dict(self._fact_level),
            provenance=self._provenance,
            stopped_reason=self.stopped_reason,
        )

    # -- queries --------------------------------------------------------
    def certain(self, queries: Iterable[object]) -> "List[ViewAnswer]":
        """Batched certain answers against the maintained fixpoint.

        Each query is evaluated through the shared plan cache of
        :mod:`repro.lf.plan` (repeat shapes compile once across the
        batch and across updates).  Answers keep constants-only rows —
        rows mentioning nulls are not certain.
        """
        out: List[ViewAnswer] = []
        for query in queries:
            if getattr(query, "is_boolean", False):
                answers: Set[Tuple[Element, ...]] = (
                    {()} if satisfies(self._working, query) else set()
                )
            else:
                raw = all_answers(self._working, query)
                answers = {
                    row
                    for row in raw
                    if all(isinstance(value, Constant) for value in row)
                }
            if answers:
                verdict: "Optional[bool]" = True
            elif self.saturated:
                verdict = False
            else:
                verdict = None
            out.append(
                ViewAnswer(verdict=verdict, answers=answers, complete=self.saturated)
            )
        return out

    def certain_one(self, query: object) -> ViewAnswer:
        """Convenience: :meth:`certain` for a single query."""
        return self.certain([query])[0]

    # -- maintenance ----------------------------------------------------
    def refresh(self) -> UpdateResult:
        """Drain any stashed work from a budget-interrupted update."""
        return self.update()

    def update(
        self,
        adds: "Iterable[Atom]" = (),
        removes: "Iterable[Atom]" = (),
    ) -> UpdateResult:
        """Apply a batch of base-fact insertions and retractions.

        Retracting a fact that is not currently a base fact raises
        :class:`~repro.errors.ChaseError` (derived facts cannot be
        retracted — they are consequences, not data).  Adding a fact
        already in the base is a no-op.  A removed base fact that is
        still derivable from the surviving base comes back as a
        *derived* fact.

        Raises the config's budget exceptions when ``on_budget`` is
        ``RAISE``; otherwise a budget trip returns with
        ``saturated=False`` and the remaining frontier stashed (see
        :meth:`refresh`).
        """
        add_list = list(adds)
        remove_list = list(removes)
        for fact in add_list + remove_list:
            if not fact.is_fact:
                raise ChaseError(f"update facts must be ground, got {fact}")

        guard = RuntimeGuard.from_config(self.config, "chase-view")
        stats = IncrStats()
        started = time.perf_counter()
        came: Set[Atom] = set()
        gone: Set[Atom] = set()

        def note_added(fact: Atom) -> None:
            if fact in gone:
                gone.discard(fact)
            else:
                came.add(fact)

        def note_removed(fact: Atom) -> None:
            if fact in came:
                came.discard(fact)
            else:
                gone.add(fact)

        # ---- phase 1: retract + DRed overdeletion (index walk; not
        # interruptible — bounded by the recorded trace, no rule
        # evaluation happens here) --------------------------------------
        for fact in remove_list:
            if fact not in self._base:
                raise ChaseError(
                    f"cannot retract {fact}: not a database fact of the view"
                )
            self._base.discard(fact)
        stats.removes_in = len(remove_list)
        worklist: "deque[Atom]" = deque()
        for fact in remove_list:
            if self._working.discard_fact(fact):
                note_removed(fact)
                self._fact_level.pop(fact, None)
                self._pending_lost.add(fact)
                worklist.append(fact)
        while worklist:
            dead = worklist.popleft()
            for dependent in self._provenance.dependents(dead):
                if dependent in self._base:
                    continue  # extensional: deletion never cascades into it
                if self._working.discard_fact(dependent):
                    note_removed(dependent)
                    self._fact_level.pop(dependent, None)
                    stats.overdeleted += 1
                    self._pending_lost.add(dependent)
                    worklist.append(dependent)

        # ---- phase 2: rederive from surviving supports ----------------
        pending = set(self._pending_lost)
        queue: "deque[Atom]" = deque(sorted(pending, key=str))
        while queue:
            fact = queue.popleft()
            if self._working.has_fact(fact):
                continue
            for support in self._provenance.supports(fact):
                if all(self._working.has_fact(p) for p in support.premises):
                    self._working.add_fact(fact)
                    note_added(fact)
                    self._fact_level[fact] = 1 + max(
                        (self._fact_level.get(p, 0) for p in support.premises),
                        default=0,
                    )
                    stats.rederived += 1
                    for dependent in self._provenance.dependents(fact):
                        if dependent in pending and not self._working.has_fact(
                            dependent
                        ):
                            queue.append(dependent)
                    break
        confirmed_lost = {f for f in pending if not self._working.has_fact(f)}
        self._pending_lost = set()
        self._fallback_lost |= confirmed_lost
        for fact in confirmed_lost:
            self._provenance.discard(fact)

        # Null bookkeeping: invented elements left occurring in no fact.
        dead_nulls: Set[Null] = set()
        for fact in confirmed_lost:
            dead_nulls.update(fact.nulls())
        stats.nulls_orphaned = sum(
            1 for null in dead_nulls if not self._working.facts_about(null)
        )

        # ---- phase 3: inserts seed the delta --------------------------
        # A stashed frontier fact may have been deleted above before it
        # was ever consumed: drop it (delta enumeration pins body atoms
        # to frontier facts without re-checking presence).
        delta_seed: List[Atom] = [
            fact for fact in self._pending_delta if self._working.has_fact(fact)
        ]
        self._pending_delta = []
        seen_seed: Set[Atom] = set(delta_seed)
        for fact in add_list:
            if fact in self._base:
                continue
            self._base.add(fact)
            stats.adds_in += 1
            self._fact_level[fact] = 0  # extensional now, even if derived before
            if self._working.add_fact(fact):
                note_added(fact)
                if fact not in seen_seed:
                    seen_seed.add(fact)
                    delta_seed.append(fact)

        def finish(reason: StopReason, saturated: bool) -> UpdateResult:
            self.saturated = saturated
            self.stopped_reason = reason
            stats.wall_ms = (time.perf_counter() - started) * 1000.0
            self.update_stats.append(stats)
            return UpdateResult(
                added=tuple(sorted(came, key=str)),
                removed=tuple(sorted(gone, key=str)),
                saturated=saturated,
                stopped_reason=reason,
                stats=stats,
            )

        def budget_stop(reason: StopReason, frontier: "List[Atom]") -> UpdateResult:
            self._pending_delta = frontier
            if self.config.should_raise:
                stats.wall_ms = (time.perf_counter() - started) * 1000.0
                self.update_stats.append(stats)
                self.saturated = False
                self.stopped_reason = reason
                raise guard.exception(reason, stats=stats)
            return finish(reason, saturated=False)

        # ---- phase 4: goal-directed fallback over affected rules ------
        if self._fallback_lost:
            lost_preds = {fact.pred for fact in self._fallback_lost}
            indices = [
                index
                for index, rule in enumerate(self.theory.rules)
                if any(head.pred in lost_preds for head in rule.head)
            ]
            stats.fallback_rules = len(indices)
            if indices:
                lost_by_pred: Dict[str, List[Atom]] = {}
                for fact in sorted(self._fallback_lost, key=str):
                    lost_by_pred.setdefault(fact.pred, []).append(fact)
                round_stats = RoundStats(
                    round=self._depth + 1, delta_in=len(self._fallback_lost)
                )
                round_started = time.perf_counter()
                try:
                    produced, invented = _evaluate_round(
                        self._working,
                        self.theory,
                        self._nulls,
                        self._depth + 1,
                        self.config,
                        self._provenance,
                        None,
                        round_stats,
                        guard,
                        rule_indices=indices,
                        head_delta=lost_by_pred,
                    )
                except GuardTripped as trip:
                    # Nothing was inserted; the fallback is still owed
                    # (self._fallback_lost is intact) and the seed is
                    # the whole remaining frontier.
                    round_stats.wall_ms = (
                        time.perf_counter() - round_started
                    ) * 1000.0
                    stats.rounds.append(round_stats)
                    stats.delta_sizes.append(round_stats.delta_in)
                    return budget_stop(trip.reason, delta_seed)
                round_stats.wall_ms = (time.perf_counter() - round_started) * 1000.0
                stats.rounds.append(round_stats)
                stats.delta_sizes.append(round_stats.delta_in)
                if produced or invented:
                    self._depth += 1
                    stats.facts_added += len(produced)
                    stats.nulls_invented += len(invented)
                    for fact in produced:
                        note_added(fact)
                        self._fact_level.setdefault(fact, self._depth)
                        if fact not in seen_seed:
                            seen_seed.add(fact)
                            delta_seed.append(fact)
            self._fallback_lost.clear()

        # ---- phase 5: semi-naive delta resume to fixpoint -------------
        delta = delta_seed
        while delta:
            reason = guard.check()
            if reason is not None:
                return budget_stop(reason, delta)
            if (
                self.config.max_update_rounds is not None
                and stats.resumed_rounds >= self.config.max_update_rounds
            ):
                return budget_stop(StopReason.BUDGET, delta)
            round_stats = RoundStats(round=self._depth + 1, delta_in=len(delta))
            round_started = time.perf_counter()
            try:
                produced, invented = _evaluate_round(
                    self._working,
                    self.theory,
                    self._nulls,
                    self._depth + 1,
                    self.config,
                    self._provenance,
                    delta,
                    round_stats,
                    guard,
                )
            except GuardTripped as trip:
                round_stats.wall_ms = (time.perf_counter() - round_started) * 1000.0
                stats.rounds.append(round_stats)
                stats.delta_sizes.append(round_stats.delta_in)
                return budget_stop(trip.reason, delta)
            round_stats.wall_ms = (time.perf_counter() - round_started) * 1000.0
            stats.rounds.append(round_stats)
            stats.delta_sizes.append(round_stats.delta_in)
            stats.resumed_rounds += 1
            if not produced and not invented:
                break  # fixpoint certified
            self._depth += 1
            stats.facts_added += len(produced)
            stats.nulls_invented += len(invented)
            for fact in produced:
                note_added(fact)
                self._fact_level.setdefault(fact, self._depth)
            delta = produced
            over_facts = (
                self.config.max_facts is not None
                and len(self._working) > self.config.max_facts
            )
            over_elements = (
                self.config.max_elements is not None
                and self._working.domain_size > self.config.max_elements
            )
            if over_facts or over_elements:
                self._pending_delta = delta
                self.saturated = False
                self.stopped_reason = StopReason.BUDGET
                stats.wall_ms = (time.perf_counter() - started) * 1000.0
                self.update_stats.append(stats)
                if self.config.should_raise:
                    raise ChaseBudgetExceeded(
                        f"view update exceeded budget at depth {self._depth}",
                        depth=self._depth,
                        facts=len(self._working),
                        stats=stats,
                    )
                return UpdateResult(
                    added=tuple(sorted(came, key=str)),
                    removed=tuple(sorted(gone, key=str)),
                    saturated=False,
                    stopped_reason=StopReason.BUDGET,
                    stats=stats,
                )

        return finish(StopReason.FIXPOINT, saturated=True)

    def __str__(self) -> str:
        status = "saturated" if self.saturated else "truncated"
        return (
            f"ChaseView({status} at depth {self._depth}, "
            f"{len(self._working)} facts over {len(self._base)} base facts, "
            f"{len(self.update_stats)} updates)"
        )


def chase_view(
    database: Structure,
    theory: Theory,
    config: "Optional[ChaseConfig]" = None,
    **overrides,
) -> ChaseView:
    """Build a :class:`ChaseView` (chases *database* once, eagerly)."""
    return ChaseView(database, theory, config, **overrides)
