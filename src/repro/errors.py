"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
the subsystem that raises them.

Budget-family exceptions — everything an engine raises when it stops
short of its verdict, whether on a count budget, a wall-clock deadline,
a memory ceiling, or cancellation — share the :class:`BudgetError`
base and its ``.stats`` attribute: the engine's stats snapshot at stop
time (:class:`~repro.chase.stats.ChaseStats`,
:class:`~repro.rewriting.stats.RewriteStats`,
:class:`~repro.fc.SearchStats`, or the pipeline's partial
:class:`~repro.core.FiniteModelResult`).  The legacy per-exception
loose ints (``ChaseBudgetExceeded.depth``/``.facts``,
``RewritingBudgetExceeded.steps``/``.queries``) are deprecated in
favour of the snapshot and warn on access.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParseError(ReproError):
    """A rule, query, or fact string could not be parsed.

    Attributes
    ----------
    text:
        The offending input fragment.
    position:
        Character offset of the error inside ``text`` (or ``None``).
    """

    def __init__(self, message: str, text: str = "", position: "int | None" = None):
        super().__init__(message)
        self.text = text
        self.position = position


class SignatureError(ReproError):
    """A term, atom, or rule is inconsistent with the ambient signature.

    Raised for arity mismatches, unknown relation symbols when strict
    checking is requested, or attempts to use a reserved predicate name.
    """


class ArityError(SignatureError):
    """An atom has the wrong number of arguments for its predicate."""


class NotBinaryError(SignatureError):
    """An operation that requires a binary signature received a theory or
    structure with a relation of arity greater than two."""


class RuleError(ReproError):
    """A rule is malformed (e.g. unsafe head variables in a datalog rule,
    or an existential TGD whose frontier is not contained in the body)."""


class BudgetError(ReproError):
    """Common base of every "stopped short of the verdict" exception.

    Attributes
    ----------
    stats:
        The raising engine's stats snapshot at stop time (the same
        object a quiet ``OnBudget.RETURN`` run would have put on its
        partial result), or ``None`` on hand-built instances.
    stopped_reason:
        The :class:`~repro.runtime.StopReason` value naming the cause
        (``"budget"`` for count budgets; ``"deadline"`` /
        ``"cancelled"`` / ``"memory"`` for the runtime guards).
    """

    stopped_reason: str = "budget"

    def __init__(self, message: str, stats: Any = None):
        super().__init__(message)
        self.stats = stats

    def _deprecated_int(self, name: str, value: int) -> int:
        warnings.warn(
            f"{type(self).__name__}.{name} is deprecated; read the "
            f"engine's stats snapshot on .stats instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return value


class DeadlineExceeded(BudgetError):
    """The run's wall-clock budget (``wall_ms``) expired before the
    verdict.  Carries the partial stats snapshot on ``.stats``."""

    stopped_reason = "deadline"


class Cancelled(BudgetError):
    """The run was cooperatively cancelled (Ctrl-C / SIGTERM under the
    CLI, or a tripped :class:`~repro.runtime.CancelToken`).  Carries
    the partial stats snapshot on ``.stats``."""

    stopped_reason = "cancelled"


class MemoryBudgetExceeded(BudgetError):
    """Peak RSS crossed the soft ceiling (``max_rss_mb``) before the
    verdict.  Carries the partial stats snapshot on ``.stats``."""

    stopped_reason = "memory"


class ChaseError(ReproError):
    """The chase engine was asked to do something it cannot do."""


class ChaseBudgetExceeded(ChaseError, BudgetError):
    """The chase hit its depth or fact budget before reaching a fixpoint.

    ``.stats`` carries the run's :class:`~repro.chase.stats.ChaseStats`
    at stop time.  The loose ``depth``/``facts`` ints are deprecated
    (use ``len(stats.rounds)`` and ``stats.facts_added``).
    """

    def __init__(
        self,
        message: str,
        depth: int = 0,
        facts: int = 0,
        stats: Any = None,
    ):
        BudgetError.__init__(self, message, stats=stats)
        self._depth = depth
        self._facts = facts

    @property
    def depth(self) -> int:
        """Deprecated: completed rounds at stop time (see ``.stats``)."""
        return self._deprecated_int("depth", self._depth)

    @property
    def facts(self) -> int:
        """Deprecated: facts produced at stop time (see ``.stats``)."""
        return self._deprecated_int("facts", self._facts)


class NewElementEmbargoViolation(ChaseError):
    """A chase run with ``allow_new_elements=False`` required a fresh null.

    This is the runtime manifestation of a failure of Lemma 5 of the
    paper: the quotient structure was not conservative enough, and the
    datalog saturation demanded an existential witness that does not
    exist.  The Theorem-2 pipeline catches this and retries with larger
    parameters.
    """


class RewritingBudgetExceeded(BudgetError):
    """The UCQ rewriting engine exhausted its step budget.

    The theory may still be BDD; the caller should either raise the
    budget or treat the BDD status as unknown.  ``.stats`` carries the
    run's :class:`~repro.rewriting.stats.RewriteStats` at stop time;
    the loose ``steps``/``queries`` ints are deprecated.
    """

    def __init__(
        self,
        message: str,
        steps: int = 0,
        queries: int = 0,
        stats: Any = None,
    ):
        super().__init__(message, stats=stats)
        self._steps = steps
        self._queries = queries

    @property
    def steps(self) -> int:
        """Deprecated: step applications at stop time (see ``.stats``)."""
        return self._deprecated_int("steps", self._steps)

    @property
    def queries(self) -> int:
        """Deprecated: distinct disjuncts at stop time (see ``.stats``)."""
        return self._deprecated_int("queries", self._queries)


class NotBDDWitness(ReproError):
    """Evidence was found that the theory is *not* BDD for some query
    (the rewriting diverged past a proven-divergence criterion)."""


class ColoringError(ReproError):
    """A coloring violates Definition 7 or 14 of the paper."""


class ConservativityError(ReproError):
    """A conservativity search failed within its budget."""


class PipelineError(BudgetError):
    """The Theorem-2 finite-model pipeline could not produce a verified
    model within the configured budgets.  ``.stats`` carries the
    partial :class:`~repro.core.FiniteModelResult` (per-attempt
    reasons, chase stats) at stop time."""


class ModelSearchExhausted(BudgetError):
    """The finite-model search explored its whole budget without finding
    a model (which is *not* a proof that none exists unless the search
    space was complete).  ``.stats`` carries the run's
    :class:`~repro.fc.SearchStats` at stop time."""
