"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
the subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParseError(ReproError):
    """A rule, query, or fact string could not be parsed.

    Attributes
    ----------
    text:
        The offending input fragment.
    position:
        Character offset of the error inside ``text`` (or ``None``).
    """

    def __init__(self, message: str, text: str = "", position: "int | None" = None):
        super().__init__(message)
        self.text = text
        self.position = position


class SignatureError(ReproError):
    """A term, atom, or rule is inconsistent with the ambient signature.

    Raised for arity mismatches, unknown relation symbols when strict
    checking is requested, or attempts to use a reserved predicate name.
    """


class ArityError(SignatureError):
    """An atom has the wrong number of arguments for its predicate."""


class NotBinaryError(SignatureError):
    """An operation that requires a binary signature received a theory or
    structure with a relation of arity greater than two."""


class RuleError(ReproError):
    """A rule is malformed (e.g. unsafe head variables in a datalog rule,
    or an existential TGD whose frontier is not contained in the body)."""


class ChaseError(ReproError):
    """The chase engine was asked to do something it cannot do."""


class ChaseBudgetExceeded(ChaseError):
    """The chase hit its depth or fact budget before reaching a fixpoint.

    Attributes
    ----------
    depth:
        Number of completed rounds.
    facts:
        Number of facts produced so far.
    """

    def __init__(self, message: str, depth: int = 0, facts: int = 0):
        super().__init__(message)
        self.depth = depth
        self.facts = facts


class NewElementEmbargoViolation(ChaseError):
    """A chase run with ``allow_new_elements=False`` required a fresh null.

    This is the runtime manifestation of a failure of Lemma 5 of the
    paper: the quotient structure was not conservative enough, and the
    datalog saturation demanded an existential witness that does not
    exist.  The Theorem-2 pipeline catches this and retries with larger
    parameters.
    """


class RewritingBudgetExceeded(ReproError):
    """The UCQ rewriting engine exhausted its step budget.

    The theory may still be BDD; the caller should either raise the
    budget or treat the BDD status as unknown.
    """

    def __init__(self, message: str, steps: int = 0, queries: int = 0):
        super().__init__(message)
        self.steps = steps
        self.queries = queries


class NotBDDWitness(ReproError):
    """Evidence was found that the theory is *not* BDD for some query
    (the rewriting diverged past a proven-divergence criterion)."""


class ColoringError(ReproError):
    """A coloring violates Definition 7 or 14 of the paper."""


class ConservativityError(ReproError):
    """A conservativity search failed within its budget."""


class PipelineError(ReproError):
    """The Theorem-2 finite-model pipeline could not produce a verified
    model within the configured budgets."""


class ModelSearchExhausted(ReproError):
    """The finite-model search explored its whole budget without finding
    a model (which is *not* a proof that none exists unless the search
    space was complete)."""
