"""Colorings, natural colorings, and conservativity (Sections 2.4–2.6, 4)."""

from .colors import Color, ColoredStructure, apply_coloring, coloring_from_structure
from .conservativity import (
    ConservativeWitness,
    ConservativityReport,
    conservativity_report,
    find_conservative,
    is_conservative,
    spade3_holds,
)
from .natural import (
    cyclic_coloring,
    distinct_coloring,
    hue_assignment,
    is_natural,
    lightness_classes,
    natural_coloring,
    naturality_violations,
)

__all__ = [
    "Color",
    "ColoredStructure",
    "ConservativeWitness",
    "ConservativityReport",
    "apply_coloring",
    "coloring_from_structure",
    "conservativity_report",
    "cyclic_coloring",
    "distinct_coloring",
    "find_conservative",
    "hue_assignment",
    "is_conservative",
    "is_natural",
    "lightness_classes",
    "natural_coloring",
    "naturality_violations",
    "spade3_holds",
]
