"""Conservativity (Definitions 8 and 9) and the (♠2)/(♠3) distinction.

A coloring C̄ of C is *n-conservative up to size m* when the quotient
``q_n : C̄ → M_n^{Σ̄}(C̄)`` preserves every element's positive m-type
over the base signature Σ:

    (♠2)   ptp_m(C, e, Σ) = ptp_m(M_n^{Σ̄}(C̄), q_n(e), Σ)   for all e.

The "⊆" direction is automatic: ``q_n`` is a homomorphism fixing the
constants, and conjunctive queries are preserved under such maps.  The
checker therefore verifies only the "⊇" direction — every type query of
the quotient image must already hold at the source element.

Remark 3 separates (♠2) from the weaker

    (♠3)   C ⊨ Ψ ⟺ M_n^{Σ̄}(C̄) ⊨ Ψ   for every Boolean CQ with ≤ m
           variables,

which :func:`spade3_holds` checks independently (experiment E06).

A structure is *ptp-conservative* (Definition 9) when for every m some
coloring and some n witness conservativity; :func:`find_conservative`
performs the search with natural colorings and increasing n — the exact
shape of the paper's proof of the Main Lemma.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConservativityError
from ..lf.canonical import canonical_query, subsets_containing
from ..lf.homomorphism import satisfies
from ..lf.queries import ConjunctiveQuery
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from ..ptypes.ptype import boolean_type_queries, type_queries
from ..ptypes.quotient import Quotient, quotient
from .colors import ColoredStructure
from .natural import natural_coloring


@dataclass
class ConservativityReport:
    """Outcome of a conservativity check.

    Attributes
    ----------
    conservative:
        The verdict for the given (coloring, n, m).
    witness_element:
        On failure: an element whose type grew under the quotient.
    witness_query:
        On failure: a query true at ``q_n(e)`` in the quotient but not
        at ``e`` in the source (the Ψ of Remark 2).
    quotient:
        The quotient that was inspected (reusable by the caller).
    """

    conservative: bool
    quotient: Quotient
    witness_element: "Optional[Element]" = None
    witness_query: "Optional[ConjunctiveQuery]" = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.conservative


def conservativity_report(
    colored: ColoredStructure,
    n: int,
    m: int,
    prebuilt: "Optional[Quotient]" = None,
) -> ConservativityReport:
    """Check whether *colored* is n-conservative up to size *m* (Def. 8).

    Types in the quotient are computed over the **base** signature Σ
    (colors are only the glue that keeps the quotient fine enough);
    types used to *build* the quotient are over the full Σ̄.
    """
    quotiented = prebuilt or quotient(colored.structure, n)
    base_names = colored.base_relations
    source = colored.structure  # queries over Σ see through the colors

    # Boolean components first: every connected sentence of the quotient
    # with at most m-1 variables must already hold in the source (this
    # is the (♠3) part of a full m-variable query whose y-component is
    # checked per element below).
    for sentence in boolean_type_queries(
        quotiented.structure, m - 1, relation_names=base_names
    ):
        if not satisfies(source, sentence):
            return ConservativityReport(
                conservative=False,
                quotient=quotiented,
                witness_element=None,
                witness_query=sentence,
            )

    # Group source elements by their image to compute each image's type
    # queries once.
    fibers: Dict[Element, List[Element]] = {}
    for element in source.domain():
        if element not in quotiented.projection:
            continue  # outside a restricted (interior) quotient
        fibers.setdefault(quotiented.project(element), []).append(element)

    for image in sorted(fibers, key=str):
        image_queries = type_queries(
            quotiented.structure, image, m, relation_names=base_names
        )
        for element in sorted(fibers[image], key=str):
            for query in image_queries:
                if not satisfies(source, query, {query.free[0]: element}):
                    return ConservativityReport(
                        conservative=False,
                        quotient=quotiented,
                        witness_element=element,
                        witness_query=query,
                    )
    return ConservativityReport(conservative=True, quotient=quotiented)


def is_conservative(colored: ColoredStructure, n: int, m: int) -> bool:
    """Boolean form of :func:`conservativity_report`."""
    return conservativity_report(colored, n, m).conservative


@dataclass
class ConservativeWitness:
    """A successful conservativity search.

    Attributes
    ----------
    colored:
        The coloring C̄ used (a natural coloring unless overridden).
    n:
        The quotient parameter that worked.
    m:
        The preserved type size.
    quotient:
        The finite structure ``M_n^{Σ̄}(C̄)`` with its projection.
    attempts:
        The values of n that were tried (diagnostics).
    """

    colored: ColoredStructure
    n: int
    m: int
    quotient: Quotient
    attempts: List[int] = field(default_factory=list)


def find_conservative(
    structure: Structure,
    m: int,
    n_start: "Optional[int]" = None,
    n_max: "Optional[int]" = None,
    coloring: "Optional[ColoredStructure]" = None,
) -> ConservativeWitness:
    """Search for n making a (natural) coloring n-conservative up to m.

    This executes Definition 9 / the Main Lemma constructively: fix the
    natural coloring, try ``n = n_start, n_start+1, …, n_max``.

    Raises
    ------
    ConservativityError
        When no n in the range works — for VTDAGs this means the range
        was too small (Lemma 2 guarantees success eventually); for
        non-VTDAGs it may be a genuine impossibility (Example 6).
    """
    colored = coloring if coloring is not None else natural_coloring(structure, m)
    first = n_start if n_start is not None else m
    last = n_max if n_max is not None else m + 4
    attempts: List[int] = []
    for n in range(first, last + 1):
        attempts.append(n)
        report = conservativity_report(colored, n, m)
        if report.conservative:
            return ConservativeWitness(
                colored=colored,
                n=n,
                m=m,
                quotient=report.quotient,
                attempts=attempts,
            )
    raise ConservativityError(
        f"no n in [{first}, {last}] makes the coloring conservative up to "
        f"size {m} (structure with {structure.domain_size} elements)"
    )


def spade3_holds(
    colored: ColoredStructure,
    n: int,
    m: int,
    prebuilt: "Optional[Quotient]" = None,
) -> Tuple[bool, "Optional[ConjunctiveQuery]"]:
    """Check the weaker condition (♠3) of Remark 3.

    Every Boolean CQ over Σ with at most *m* variables true in the
    quotient must be true in C (the converse is automatic).  Returns
    ``(verdict, counterexample_query)``.
    """
    quotiented = prebuilt or quotient(colored.structure, n)
    base_names = colored.base_relations
    source = colored.structure
    for sentence in boolean_type_queries(
        quotiented.structure, m, relation_names=base_names
    ):
        if not satisfies(source, sentence):
            return False, sentence
    return True, None
