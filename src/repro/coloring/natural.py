"""Natural colorings (Definition 14).

A coloring C̄ of C is *natural* (for a target type size ``m``) when

1. elements within ``P^m`` of one another have different **hues**, and
2. elements with equal **lightness** have isomorphic predecessor
   neighbourhoods ``C ↾ (P(e) ∪ C_con)``.

Construction ("It is easy to see that for each VTDAG C there exists a
natural coloring"):

* lightness — index the isomorphism class (over fixed constants) of
  each element's predecessor neighbourhood;
* hue — greedy coloring of the conflict graph whose edges join ``e``
  with every other element of ``P_m(e)``; for a structure of bounded
  in-degree the greedy pass needs only boundedly many hues (the paper's
  ``m + 1`` colors on a chain fall out of exactly this).

Constants additionally receive pairwise distinct hues, realising the
uniqueness used in Lemma 7(iii).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..lf.canonical import canonical_label
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from ..vtdag.predecessors import (
    iterated_predecessors,
    predecessor_neighbourhood,
)
from .colors import Color, ColoredStructure, apply_coloring


def lightness_classes(structure: Structure) -> Dict[Element, int]:
    """Assign a lightness to every element.

    The lightness is an index of the isomorphism class (fixing the
    constants) of ``C ↾ (P(e) ∪ C_con)``, so Definition 14's second
    condition holds by construction.  Constants get the dedicated
    lightness key of their own identity (they are all forced distinct
    from non-constants).
    """
    table: Dict[Tuple, int] = {}
    assignment: Dict[Element, int] = {}
    for element in sorted(structure.domain(), key=str):
        if isinstance(element, Constant):
            key: Tuple = ("constant",)
        else:
            neighbourhood = predecessor_neighbourhood(structure, element)
            if len(neighbourhood.nonconstant_elements()) <= 7:
                key = (
                    "nonconstant",
                    canonical_label(neighbourhood),
                    neighbourhood.domain_size,
                )
            else:
                # Exact iso-labels are exponential; beyond the VTDAG
                # regime (where P(e) is tiny) fall back to a coarse
                # invariant.  Definition 14's condition 2 may then be
                # violated for exotic inputs — naturality_violations
                # still reports it honestly.
                profile = tuple(
                    sorted(
                        (fact.pred, tuple(arg == element for arg in fact.args))
                        for fact in neighbourhood.facts_about(element)
                    )
                )
                key = (
                    "approx",
                    neighbourhood.domain_size,
                    len(neighbourhood.facts()),
                    profile,
                )
        index = table.get(key)
        if index is None:
            index = len(table)
            table[key] = index
        assignment[element] = index
    return assignment


def hue_assignment(structure: Structure, m: int) -> Dict[Element, int]:
    """Greedy hues such that any two elements of one ``P_m`` set differ.

    The conflict graph joins ``e`` to every *other* member of
    ``P_m(e)``; greedy coloring over a deterministic element order
    assigns each element the least hue unused among its already-colored
    conflicts.  Constants get unique hues from a disjoint range.
    """
    conflicts: Dict[Element, Set[Element]] = {e: set() for e in structure.domain()}
    for element in structure.domain():
        if isinstance(element, Constant):
            continue
        for ancestor in iterated_predecessors(structure, element, m):
            if ancestor != element:
                conflicts[element].add(ancestor)
                conflicts.setdefault(ancestor, set()).add(element)

    hues: Dict[Element, int] = {}

    def creation_order(element: Element):
        # Nulls sort by numeric identifier (chase-creation order), so a
        # chain is greedily colored root-to-leaf and gets the paper's
        # m+1 hues rather than a scrambled-order surplus.
        from ..lf.terms import Null

        if isinstance(element, Null):
            return (0, element.ident, "")
        return (1, 0, str(element))

    nonconstants = sorted(
        (e for e in structure.domain() if not isinstance(e, Constant)),
        key=creation_order,
    )
    for element in nonconstants:
        used = {hues[other] for other in conflicts[element] if other in hues}
        hue = 0
        while hue in used:
            hue += 1
        hues[element] = hue
    highest = max(hues.values(), default=-1)
    for offset, constant in enumerate(
        sorted(structure.constant_elements(), key=str), start=1
    ):
        hues[constant] = highest + offset
    return hues


def natural_coloring(structure: Structure, m: int) -> ColoredStructure:
    """A natural coloring of *structure* for type size *m* (Def. 14)."""
    lightness = lightness_classes(structure)
    hues = hue_assignment(structure, m)
    assignment = {
        element: Color(hues[element], lightness[element])
        for element in structure.domain()
    }
    return apply_coloring(structure, assignment)


def cyclic_coloring(structure: Structure, palette: int) -> ColoredStructure:
    """A *bounded-palette* coloring: hues cycle through ``palette`` values.

    This is the coloring of the paper's Example 4 (``K_{i mod (m+1)}``)
    and the right tool for the negative experiments: Example 6 and
    Remark 3 assert that **no coloring with a fixed palette** can be
    conservative on arbitrarily long orders/chains, which only shows up
    when the palette does not grow with the structure (a fresh color
    per element always yields the identity quotient).

    Elements are cycled in a deterministic order; for a chain built
    with increasing :class:`~repro.lf.terms.Null` identifiers this
    reproduces Example 4's ``a_i ↦ K_{i mod palette}`` exactly.
    """
    if palette < 1:
        raise ValueError("palette must have at least one color")

    def order_key(element: Element):
        from ..lf.terms import Null

        if isinstance(element, Null):
            return (0, element.ident, "")
        return (1, 0, str(element))

    assignment: Dict[Element, Color] = {}
    for index, element in enumerate(sorted(structure.domain(), key=order_key)):
        assignment[element] = Color(index % palette, 0)
    return apply_coloring(structure, assignment)


def distinct_coloring(structure: Structure) -> ColoredStructure:
    """Every element its own color: the quotient becomes the identity.

    Useful as a control in experiments — trivially conservative, but
    with a palette that grows with the structure, which is exactly what
    Definition 9 does *not* allow a single coloring to do as m grows.
    """
    assignment = {
        element: Color(index, 0)
        for index, element in enumerate(sorted(structure.domain(), key=str))
    }
    return apply_coloring(structure, assignment)


def naturality_violations(
    colored: ColoredStructure, m: int
) -> List[str]:
    """Check Definition 14 on an arbitrary coloring; list violations.

    Condition 2 is checked via isomorphism over fixed constants of the
    predecessor neighbourhoods (on the *base* structure, colors
    stripped).
    """
    from ..lf.canonical import isomorphic_over_constants

    problems: List[str] = []
    base = colored.base
    elements = sorted(base.domain(), key=str)
    for element in elements:
        for ancestor in iterated_predecessors(base, element, m):
            if ancestor == element:
                continue
            mine = colored.assignment[element]
            theirs = colored.assignment[ancestor]
            if mine.hue == theirs.hue:
                problems.append(
                    f"{element} and its P^{m}-ancestor {ancestor} share hue "
                    f"{mine.hue}"
                )
    by_lightness: Dict[int, List[Element]] = {}
    for element in elements:
        by_lightness.setdefault(colored.assignment[element].lightness, []).append(
            element
        )
    for lightness, members in sorted(by_lightness.items()):
        reference = members[0]
        reference_hood = predecessor_neighbourhood(base, reference)
        for other in members[1:]:
            other_hood = predecessor_neighbourhood(base, other)
            if isinstance(reference, Constant) != isinstance(other, Constant):
                problems.append(
                    f"lightness {lightness} mixes constants and non-constants"
                )
                continue
            if isinstance(reference, Constant):
                continue  # all constant neighbourhoods are C ↾ C_con
            try:
                isomorphic = isomorphic_over_constants(reference_hood, other_hood)
            except ValueError:
                # neighbourhoods too large for the exact test: compare
                # the cheap invariants only (see lightness_classes)
                isomorphic = (
                    reference_hood.domain_size == other_hood.domain_size
                    and len(reference_hood.facts()) == len(other_hood.facts())
                )
            if not isomorphic:
                problems.append(
                    f"lightness {lightness}: P-neighbourhoods of {reference} "
                    f"and {other} are not isomorphic"
                )
    return problems


def is_natural(colored: ColoredStructure, m: int) -> bool:
    """Whether the coloring satisfies Definition 14 for size *m*."""
    return not naturality_violations(colored, m)
