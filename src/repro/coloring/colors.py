"""Colors ``K_h^l`` and colorings (Definitions 6 and 7).

A *color* is a unary predicate with two coordinates: its **hue** ``h``
and its **lightness** ``l``.  A *coloring* of a structure C over Σ is a
structure C̄ over Σ̄ ⊆ Σ ∪ K that restricts to C over Σ and gives every
element exactly one color.

Hue and lightness play different roles in natural colorings
(Definition 14): hues must differ along short ancestor chains, while
equal lightness certifies isomorphic predecessor neighbourhoods.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ColoringError
from ..lf.atoms import Atom
from ..lf.structures import Structure
from ..lf.terms import Element

_COLOR_NAME = re.compile(r"^K_h(\d+)_l(\d+)$")


@dataclass(frozen=True, order=True)
class Color:
    """The color ``K_h^l`` (Definition 6).

    Attributes
    ----------
    hue:
        The paper's ``h``.
    lightness:
        The paper's ``l``.
    """

    hue: int
    lightness: int

    @property
    def predicate(self) -> str:
        """The unary predicate name encoding this color."""
        return f"K_h{self.hue}_l{self.lightness}"

    @staticmethod
    def parse(name: str) -> "Optional[Color]":
        """Recover a color from its predicate name, or ``None``."""
        match = _COLOR_NAME.match(name)
        if match is None:
            return None
        return Color(int(match.group(1)), int(match.group(2)))

    def __str__(self) -> str:
        return f"K_h{self.hue}^l{self.lightness}"


@dataclass
class ColoredStructure:
    """A coloring C̄ of a structure C (Definition 7).

    Attributes
    ----------
    structure:
        C̄ itself: the base facts plus one color atom per element.
    base_relations:
        The names of Σ (the color predicates are exactly the rest).
    assignment:
        element → :class:`Color`.
    """

    structure: Structure
    base_relations: FrozenSet[str]
    assignment: Dict[Element, Color]

    @property
    def base(self) -> Structure:
        """``C̄ ↾ Σ``: the structure without its colors."""
        return self.structure.restrict_signature(self.base_relations)

    def color_of(self, element: Element) -> Color:
        """The unique color of *element*."""
        return self.assignment[element]

    def colors_used(self) -> FrozenSet[Color]:
        """The set of colors actually assigned."""
        return frozenset(self.assignment.values())

    @property
    def palette_size(self) -> int:
        """Number of distinct colors."""
        return len(self.colors_used())

    def verify(self) -> List[str]:
        """Check Definition 7; return violations (empty = valid).

        1. color predicates are disjoint from Σ;
        2. ``C̄ ↾ Σ`` equals the base facts;
        3. every element has exactly one color atom, matching the
           assignment table.
        """
        problems: List[str] = []
        for name in self.base_relations:
            if Color.parse(name) is not None:
                problems.append(f"base relation {name} looks like a color")
        counts: Dict[Element, int] = {e: 0 for e in self.structure.domain()}
        for fact in self.structure.facts():
            color = Color.parse(fact.pred)
            if color is None:
                continue
            if fact.arity != 1:
                problems.append(f"color atom not unary: {fact}")
                continue
            element = fact.args[0]
            counts[element] = counts.get(element, 0) + 1
            if self.assignment.get(element) != color:
                problems.append(
                    f"{element} colored {color} but assigned "
                    f"{self.assignment.get(element)}"
                )
        for element, count in counts.items():
            if count != 1:
                problems.append(f"{element} has {count} color atoms (need 1)")
        return problems


def apply_coloring(
    structure: Structure,
    assignment: Dict[Element, Color],
) -> ColoredStructure:
    """Build C̄ from C and a total color assignment.

    Raises
    ------
    ColoringError
        If some domain element lacks a color, or a base relation name
        collides with a color predicate.
    """
    missing = [e for e in structure.domain() if e not in assignment]
    if missing:
        raise ColoringError(f"elements without a color: {sorted(missing, key=str)[:5]}")
    base_names = structure.signature.relation_names()
    for name in base_names:
        if Color.parse(name) is not None:
            raise ColoringError(f"base relation {name} collides with color namespace")
    colored = structure.copy()
    for element in sorted(structure.domain(), key=str):
        colored.add_fact(Atom(assignment[element].predicate, (element,)))
    return ColoredStructure(
        structure=colored,
        base_relations=frozenset(base_names),
        assignment=dict(assignment),
    )


def coloring_from_structure(structure: Structure) -> ColoredStructure:
    """Recover a :class:`ColoredStructure` from a structure that already
    contains color atoms (e.g. after parsing or quotienting).

    Raises
    ------
    ColoringError
        If some element does not have exactly one color atom.
    """
    assignment: Dict[Element, Color] = {}
    base_names = set()
    for name in structure.signature.relation_names():
        if Color.parse(name) is None:
            base_names.add(name)
    for fact in structure.facts():
        color = Color.parse(fact.pred)
        if color is None:
            continue
        element = fact.args[0]
        if element in assignment and assignment[element] != color:
            raise ColoringError(f"{element} has two colors")
        assignment[element] = color
    missing = [e for e in structure.domain() if e not in assignment]
    if missing:
        raise ColoringError(f"uncolored elements: {sorted(missing, key=str)[:5]}")
    return ColoredStructure(
        structure=structure.copy(),
        base_relations=frozenset(base_names),
        assignment=assignment,
    )
