"""Finite controllability harness: model search and the ordering
conjecture of Section 5.5."""

from .minimize import minimize_model
from .order import (
    OrderingWitness,
    default_candidates,
    find_ordering,
    ordering_implies_query,
)
from .search import (
    SEARCH_TIMING_FIELDS,
    SearchConfig,
    SearchHeuristic,
    SearchResult,
    SearchStats,
    every_finite_model_satisfies,
    find_counter_model,
    legacy_search,
    search_finite_model,
)

__all__ = [
    "OrderingWitness",
    "SEARCH_TIMING_FIELDS",
    "SearchConfig",
    "SearchHeuristic",
    "SearchResult",
    "SearchStats",
    "default_candidates",
    "every_finite_model_satisfies",
    "find_counter_model",
    "find_ordering",
    "legacy_search",
    "minimize_model",
    "ordering_implies_query",
    "search_finite_model",
]
