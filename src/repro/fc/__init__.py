"""Finite controllability harness: model search and the ordering
conjecture of Section 5.5."""

from .minimize import minimize_model
from .order import (
    OrderingWitness,
    default_candidates,
    find_ordering,
    ordering_implies_query,
)
from .search import (
    SearchResult,
    SearchStats,
    every_finite_model_satisfies,
    find_counter_model,
    search_finite_model,
)

__all__ = [
    "OrderingWitness",
    "SearchResult",
    "SearchStats",
    "default_candidates",
    "every_finite_model_satisfies",
    "find_counter_model",
    "find_ordering",
    "minimize_model",
    "ordering_implies_query",
    "search_finite_model",
]
