"""Finite-model search: the independent check on finite controllability.

Definition 1 makes FC a statement about the existence of finite models:
``T is FC`` iff whenever ``Chase(D, T) ⊭ Φ`` there is a finite
``M ⊨ D, T`` with ``M ⊭ Φ``.  The Theorem-2 pipeline *constructs* such
an M for binary BDD theories; this module *searches* for one with no
theory-side assumptions, which gives the experiments an independent
oracle to cross-check against — and, crucially, a way to explore the
paper's **negative** example (Section 5.5), where every finite model
satisfies the query.

The search is a depth-first exploration of chase states in which an
existential trigger may be satisfied by **reusing** any existing
element before inventing a fresh one (fresh elements bounded by
``max_elements``).  Datalog rules are saturated deterministically at
every node.  Within its bounds the search is complete: if it reports
"no model avoiding Φ with ≤ N elements", there is none.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..chase.engine import datalog_saturate, is_model
from ..errors import ModelSearchExhausted
from ..lf.atoms import Atom
from ..lf.homomorphism import find_homomorphism, homomorphisms, satisfies
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Element, Null, NullFactory, Variable


@dataclass
class SearchStats:
    """Diagnostics of a search run.

    Attributes
    ----------
    nodes:
        States expanded.
    pruned_by_query:
        Branches cut because the forbidden query became true.
    duplicates:
        States skipped as already seen (by fact-set).
    exhausted:
        ``True`` iff the whole bounded space was explored (makes a
        negative answer a *proof* for the given bounds).
    """

    nodes: int = 0
    pruned_by_query: int = 0
    duplicates: int = 0
    exhausted: bool = True


@dataclass
class SearchResult:
    """Outcome of :func:`search_finite_model`.

    Attributes
    ----------
    model:
        A finite model (``None`` if none found within bounds).
    stats:
        Search diagnostics.
    """

    model: "Optional[Structure]"
    stats: SearchStats

    @property
    def found(self) -> bool:
        return self.model is not None


def _violated_existential(
    structure: Structure, theory: Theory
) -> "Optional[Tuple[Rule, Dict[Variable, Element]]]":
    """First existential trigger whose head has no witness."""
    for rule in theory.rules:
        if rule.is_datalog:
            continue
        for binding in homomorphisms(rule.body, structure):
            frontier_binding = {
                var: value
                for var, value in binding.items()
                if var in rule.head_variables()
            }
            if find_homomorphism(rule.head, structure, frontier_binding) is None:
                return rule, binding
    return None


def _apply_head(
    structure: Structure,
    rule: Rule,
    binding: Dict[Variable, Element],
    witnesses: Dict[Variable, Element],
) -> Structure:
    extended = dict(binding)
    extended.update(witnesses)
    branched = structure.copy()
    for head in rule.head:
        branched.add_fact(head.substitute(extended))  # type: ignore[arg-type]
    return branched


def search_finite_model(
    database: Structure,
    theory: Theory,
    forbidden: "Optional[ConjunctiveQuery | UnionOfConjunctiveQueries]" = None,
    max_elements: int = 10,
    max_nodes: int = 50_000,
) -> SearchResult:
    """Search for a finite ``M ⊨ database, theory`` (avoiding *forbidden*).

    Existential triggers branch over every reuse of an existing element
    (per existential variable) and, while the domain is below
    *max_elements*, one fresh element.  The search prefers reuse, so
    small models surface first.

    When ``forbidden`` is given, any state satisfying it is pruned —
    sound because states only grow along a branch and CQs are monotone.
    """
    stats = SearchStats()
    nulls = NullFactory.above(database.domain())
    seen: Set[frozenset] = set()

    def signature_of(structure: Structure) -> frozenset:
        return structure.facts()

    start = datalog_saturate(database, theory).structure
    stack: List[Structure] = [start]

    while stack:
        if stats.nodes >= max_nodes:
            stats.exhausted = False
            break
        state = stack.pop()
        marker = signature_of(state)
        if marker in seen:
            stats.duplicates += 1
            continue
        seen.add(marker)
        stats.nodes += 1

        if forbidden is not None and satisfies(state, forbidden):
            stats.pruned_by_query += 1
            continue

        trigger = _violated_existential(state, theory)
        if trigger is None:
            return SearchResult(model=state, stats=stats)
        rule, binding = trigger
        existentials = sorted(rule.existential_variables())
        domain = sorted(state.domain(), key=str)

        branches: List[Structure] = []
        if state.domain_size < max_elements:
            fresh = {var: nulls.fresh() for var in existentials}
            branches.append(_apply_head(state, rule, binding, fresh))
        for combination in itertools.product(domain, repeat=len(existentials)):
            witnesses = dict(zip(existentials, combination))
            branches.append(_apply_head(state, rule, binding, witnesses))
        # saturate datalog in every branch before stacking; push reuse
        # branches last so they are explored first (LIFO).
        for branch in branches:
            stack.append(datalog_saturate(branch, theory).structure)

    return SearchResult(model=None, stats=stats)


def every_finite_model_satisfies(
    database: Structure,
    theory: Theory,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
    max_elements: int = 8,
    max_nodes: int = 50_000,
) -> Tuple[bool, SearchStats]:
    """Check the Section 5.5 phenomenon: within the bounds, does *every*
    finite model of (database, theory) satisfy *query*?

    Returns ``(verdict, stats)``.  A ``True`` verdict with
    ``stats.exhausted`` is a proof for models with at most
    *max_elements* elements; without exhaustion it is only "none
    found".  A ``False`` verdict is always a hard counterexample (a
    model avoiding the query was found).
    """
    outcome = search_finite_model(
        database, theory, forbidden=query, max_elements=max_elements, max_nodes=max_nodes
    )
    return (not outcome.found), outcome.stats


def find_counter_model(
    database: Structure,
    theory: Theory,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
    max_elements: int = 10,
    max_nodes: int = 50_000,
) -> Structure:
    """A finite model of (database, theory) avoiding *query*.

    Raises
    ------
    ModelSearchExhausted
        When the bounded search finds none (see
        :func:`every_finite_model_satisfies` for what that means).
    """
    outcome = search_finite_model(
        database, theory, forbidden=query, max_elements=max_elements, max_nodes=max_nodes
    )
    if outcome.model is None:
        raise ModelSearchExhausted(
            f"no finite model avoiding the query within {max_elements} "
            f"elements / {max_nodes} nodes (exhausted={outcome.stats.exhausted})"
        )
    return outcome.model
