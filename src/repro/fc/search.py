"""Finite-model search: the independent check on finite controllability.

Definition 1 makes FC a statement about the existence of finite models:
``T is FC`` iff whenever ``Chase(D, T) ⊭ Φ`` there is a finite
``M ⊨ D, T`` with ``M ⊭ Φ``.  The Theorem-2 pipeline *constructs* such
an M for binary BDD theories; this module *searches* for one with no
theory-side assumptions, which gives the experiments an independent
oracle to cross-check against — and, crucially, a way to explore the
paper's **negative** example (Section 5.5), where every finite model
satisfies the query.

The search explores chase states in which an existential trigger may be
satisfied by **reusing** any existing element before inventing a fresh
one (fresh elements bounded by ``max_elements``).  Datalog rules are
saturated deterministically at every node.  Within its bounds the
search is complete: if it reports "no model avoiding Φ with ≤ N
elements", there is none.

The default engine (``engine="delta"``) is built for throughput:

* **copy-on-write states** — a branch records only its parent pointer
  and the handful of head facts it adds; the full structure is
  materialised lazily when (and only when) the state is expanded;
* **incremental saturation** — a materialised state re-saturates from
  its delta via the semi-naive machinery
  (:func:`repro.chase.seminaive.incremental_datalog_saturate`) instead
  of re-running the fixpoint from scratch; a state whose saturation
  exceeds ``max_facts`` is treated as a pruned branch;
* **canonical dedup** — states are hashed by a null-renaming-invariant
  key (:func:`repro.lf.canonical.canonical_key`), collapsing branches
  that differ only in invented null names (sound: rules and queries
  never mention nulls, so isomorphic-over-constants states have
  identical futures);
* **compiled triggers** — violated-existential detection runs on
  per-rule precompiled join plans (:mod:`repro.lf.plan`), reused across
  every node of the run;
* **configurable frontier** — depth-first by default (matching
  :func:`legacy_search`'s reuse-first order), or best-first by smallest
  domain / fewest violations via :class:`SearchConfig`.

:func:`legacy_search` keeps the original copy-everything algorithm
callable for parity testing and ablation benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..chase.engine import datalog_saturate
from ..chase.seminaive import incremental_datalog_saturate, seminaive_saturate
from ..config import BudgetedConfig, OnBudget, coerce_enum
from ..errors import ChaseBudgetExceeded, ModelSearchExhausted
from ..runtime.guard import RuntimeGuard, StopReason
from ..lf.atoms import Atom
from ..lf.canonical import canonical_key
from ..lf.homomorphism import find_homomorphism, homomorphisms, satisfies
from ..lf.plan import QueryPlan, plan_for
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Element, NullFactory, Variable
from ..store import ensure_backend, resolve_backend

#: Stats keys that are wall times — not a pure function of the inputs —
#: mirroring :data:`repro.chase.stats.TIMING_FIELDS`; stripped by
#: ``SearchStats.as_dict(timings=False)``.
SEARCH_TIMING_FIELDS = (
    "wall_ms",
    "materialise_ms",
    "saturate_ms",
    "canonical_ms",
    "query_ms",
    "expand_ms",
)


class SearchHeuristic(str, Enum):
    """Frontier orderings of the finite-model search.

    Attributes
    ----------
    DFS:
        Depth-first, reuse-combinations first — the classic order of
        :func:`legacy_search`, which surfaces small models quickly.
    SMALLEST_DOMAIN:
        Best-first by the state's domain size: prefer states that
        invented fewer elements (a small-model bias that, unlike DFS,
        never commits to a deep fruitless branch).
    FEWEST_VIOLATIONS:
        Best-first by how many existential triggers the expanded parent
        still violated: prefer branches whose parents were closest to
        being models.
    """

    DFS = "dfs"
    SMALLEST_DOMAIN = "smallest-domain"
    FEWEST_VIOLATIONS = "fewest-violations"

    @classmethod
    def coerce(cls, value: "SearchHeuristic | str") -> "SearchHeuristic":
        return coerce_enum(value, cls, "heuristic")


@dataclass
class SearchConfig(BudgetedConfig):
    """Budgets and knobs of :func:`search_finite_model`.

    Follows the library-wide config contract (:mod:`repro.config`):
    budgets plus an :class:`~repro.config.OnBudget` policy, overridable
    via :meth:`~repro.config.BudgetedConfig.with_overrides`.

    Parameters
    ----------
    max_elements:
        Cap on the model's domain size — this *defines* the bounded
        search space ("models with at most N elements"), it is not an
        ``on_budget`` event.
    max_nodes:
        Node budget.  Hitting it ends the run with
        ``stats.exhausted=False``; under ``OnBudget.RAISE`` it raises
        :class:`~repro.errors.ModelSearchExhausted` instead.
    max_facts:
        Per-state saturation budget.  A state whose datalog fixpoint
        exceeds it is pruned (counted in ``stats.saturation_pruned``)
        and the run loses its exhaustiveness claim.
    heuristic:
        Frontier ordering (:class:`SearchHeuristic`; strings accepted).
    canonical_dedup:
        Hash states by the null-renaming-invariant
        :func:`~repro.lf.canonical.canonical_key` (default) instead of
        the raw fact set — the raw mode is the ablation switch.
    """

    max_elements: int = 10
    max_nodes: int = 50_000
    max_facts: "Optional[int]" = 100_000
    heuristic: SearchHeuristic = SearchHeuristic.DFS
    canonical_dedup: bool = True
    on_budget: OnBudget = OnBudget.RETURN

    def __post_init__(self) -> None:
        super().__post_init__()
        self.heuristic = SearchHeuristic.coerce(self.heuristic)


@dataclass
class SearchStats:
    """Diagnostics of a search run.

    Attributes
    ----------
    engine:
        ``"delta"`` (the incremental engine) or ``"legacy"``.
    heuristic:
        The frontier ordering used (``"dfs"`` for the legacy engine).
    nodes:
        States expanded.
    pruned_by_query:
        Branches cut because the forbidden query became true.
    duplicates:
        States skipped as already seen — under canonical dedup this
        includes states identical only up to renaming invented nulls.
    exhausted:
        ``True`` iff the whole bounded space was explored (makes a
        negative answer a *proof* for the given bounds).  Any pruned
        saturation or a node-budget stop clears it.
    states_created:
        Branch states pushed onto the frontier (copy-on-write: a
        created state holds only its delta until materialised).
    states_materialised:
        States actually built into full structures (created minus
        materialised = work the laziness and pre-dedup saved).
    canonical_keys:
        Canonical-form computations performed.
    saturation_new_facts:
        Datalog facts derived across all incremental saturations.
    saturation_rounds:
        Semi-naive rounds across all incremental saturations.
    saturation_pruned:
        States discarded because their saturation exceeded
        ``max_facts``.
    frontier_peak:
        Largest frontier size reached.
    wall_ms / materialise_ms / saturate_ms / canonical_ms / query_ms /
    expand_ms:
        Phase wall times (the only nondeterministic fields; see
        :data:`SEARCH_TIMING_FIELDS`).
    """

    nodes: int = 0
    pruned_by_query: int = 0
    duplicates: int = 0
    exhausted: bool = True
    engine: str = "delta"
    heuristic: str = "dfs"
    states_created: int = 0
    states_materialised: int = 0
    canonical_keys: int = 0
    saturation_new_facts: int = 0
    saturation_rounds: int = 0
    saturation_pruned: int = 0
    frontier_peak: int = 0
    wall_ms: float = 0.0
    materialise_ms: float = 0.0
    saturate_ms: float = 0.0
    canonical_ms: float = 0.0
    query_ms: float = 0.0
    expand_ms: float = 0.0

    def as_dict(self, timings: bool = True) -> Dict[str, Any]:
        """A JSON-ready dict; ``timings=False`` strips every wall time."""
        payload: Dict[str, Any] = {
            "engine": self.engine,
            "heuristic": self.heuristic,
            "nodes": self.nodes,
            "pruned_by_query": self.pruned_by_query,
            "duplicates": self.duplicates,
            "exhausted": self.exhausted,
            "states_created": self.states_created,
            "states_materialised": self.states_materialised,
            "canonical_keys": self.canonical_keys,
            "saturation_new_facts": self.saturation_new_facts,
            "saturation_rounds": self.saturation_rounds,
            "saturation_pruned": self.saturation_pruned,
            "frontier_peak": self.frontier_peak,
        }
        if timings:
            payload["wall_ms"] = round(self.wall_ms, 3)
            payload["materialise_ms"] = round(self.materialise_ms, 3)
            payload["saturate_ms"] = round(self.saturate_ms, 3)
            payload["canonical_ms"] = round(self.canonical_ms, 3)
            payload["query_ms"] = round(self.query_ms, 3)
            payload["expand_ms"] = round(self.expand_ms, 3)
        return payload

    def render(self) -> str:
        """Deterministically ordered text lines for the CLI's ``--stats``."""
        lines = [
            f"# search: engine={self.engine} heuristic={self.heuristic} "
            f"nodes={self.nodes} duplicates={self.duplicates} "
            f"pruned_by_query={self.pruned_by_query} "
            f"exhausted={self.exhausted}",
            f"# states: created={self.states_created} "
            f"materialised={self.states_materialised} "
            f"canonical_keys={self.canonical_keys} "
            f"frontier_peak={self.frontier_peak}",
            f"# saturation: facts+={self.saturation_new_facts} "
            f"rounds={self.saturation_rounds} pruned={self.saturation_pruned}",
            f"# wall: total={self.wall_ms:.2f}ms "
            f"materialise={self.materialise_ms:.2f}ms "
            f"saturate={self.saturate_ms:.2f}ms "
            f"canonical={self.canonical_ms:.2f}ms "
            f"query={self.query_ms:.2f}ms expand={self.expand_ms:.2f}ms",
        ]
        return "\n".join(lines)


@dataclass
class SearchResult:
    """Outcome of :func:`search_finite_model`.

    Attributes
    ----------
    model:
        A finite model (``None`` if none found within bounds).
    stats:
        Search diagnostics.
    stopped_reason:
        Why the run ended (:class:`~repro.runtime.StopReason`):
        ``fixpoint`` when the search settled (model found, or the
        bounded space fully explored), ``budget`` on the node or
        saturation budget, ``deadline``/``cancelled``/``memory`` when a
        runtime guard tripped.
    """

    model: "Optional[Structure]"
    stats: SearchStats
    stopped_reason: StopReason = StopReason.FIXPOINT

    @property
    def found(self) -> bool:
        return self.model is not None


# ----------------------------------------------------------------------
# Compiled trigger detection (shared plans across every node of a run)
# ----------------------------------------------------------------------
class _CompiledRule:
    """Precompiled plans for one existential rule.

    The body plan enumerates the rule's triggers; the head plan, with
    the frontier variables prebound, answers "does a witness exist?".
    Rules whose body or head contains equality atoms fall back to the
    generic matcher (the planner rejects equalities by design).
    """

    __slots__ = ("rule", "frontier", "body_plan", "head_plan")

    def __init__(self, rule: Rule, structure: Structure):
        self.rule = rule
        self.frontier = frozenset(rule.head_variables() - rule.existential_variables())
        self.body_plan: "Optional[QueryPlan]" = None
        self.head_plan: "Optional[QueryPlan]" = None
        if not any(a.is_equality for a in rule.body):
            self.body_plan = plan_for(tuple(rule.body), frozenset(), structure)
        if not any(a.is_equality for a in rule.head):
            self.head_plan = plan_for(tuple(rule.head), self.frontier, structure)

    def triggers(self, structure: Structure) -> "Iterator[Dict[Variable, Element]]":
        if self.body_plan is None:
            return homomorphisms(self.rule.body, structure)
        return self.body_plan.bindings(structure)

    def head_satisfied(
        self, structure: Structure, binding: Dict[Variable, Element]
    ) -> bool:
        frontier_binding = {var: binding[var] for var in self.frontier}
        if self.head_plan is None:
            return (
                find_homomorphism(self.rule.head, structure, frontier_binding)
                is not None
            )
        return next(self.head_plan.bindings(structure, frontier_binding), None) is not None


class _TriggerFinder:
    """All existential rules of a theory, compiled once per run."""

    def __init__(self, theory: Theory, structure: Structure):
        self.compiled = [
            _CompiledRule(rule, structure)
            for rule in theory.rules
            if not rule.is_datalog
        ]

    def first_violation(
        self, structure: Structure
    ) -> "Optional[Tuple[Rule, Dict[Variable, Element]]]":
        for entry in self.compiled:
            for binding in entry.triggers(structure):
                if not entry.head_satisfied(structure, binding):
                    return entry.rule, binding
        return None

    def count_violations(self, structure: Structure, cap: int = 64) -> int:
        found = 0
        for entry in self.compiled:
            for binding in entry.triggers(structure):
                if not entry.head_satisfied(structure, binding):
                    found += 1
                    if found >= cap:
                        return found
        return found


# ----------------------------------------------------------------------
# Copy-on-write search states
# ----------------------------------------------------------------------
class _State:
    """A search state: parent pointer + local delta, materialised lazily.

    Until expanded, a state costs only its delta (the substituted head
    facts of one trigger).  ``structure`` and ``facts`` are filled in
    at expansion time, after incremental saturation.
    """

    __slots__ = ("parent", "delta", "structure", "facts", "domain_size")

    def __init__(
        self,
        parent: "Optional[_State]",
        delta: Tuple[Atom, ...],
        structure: "Optional[Structure]" = None,
        domain_size: int = 0,
    ):
        self.parent = parent
        self.delta = delta
        self.structure = structure
        self.facts: "Optional[FrozenSet[Atom]]" = (
            structure.facts() if structure is not None else None
        )
        self.domain_size = domain_size


def _violated_existential(
    structure: Structure, theory: Theory
) -> "Optional[Tuple[Rule, Dict[Variable, Element]]]":
    """First existential trigger whose head has no witness."""
    for rule in theory.rules:
        if rule.is_datalog:
            continue
        for binding in homomorphisms(rule.body, structure):
            frontier_binding = {
                var: value
                for var, value in binding.items()
                if var in rule.head_variables()
            }
            if find_homomorphism(rule.head, structure, frontier_binding) is None:
                return rule, binding
    return None


def _apply_head(
    structure: Structure,
    rule: Rule,
    binding: Dict[Variable, Element],
    witnesses: Dict[Variable, Element],
) -> Structure:
    extended = dict(binding)
    extended.update(witnesses)
    branched = structure.copy()
    for head in rule.head:
        branched.add_fact(head.substitute(extended))  # type: ignore[arg-type]
    return branched


def _head_delta(
    structure: Structure,
    rule: Rule,
    binding: Dict[Variable, Element],
    witnesses: Dict[Variable, Element],
) -> Tuple[Atom, ...]:
    """The facts this branch adds (substituted heads not already present)."""
    extended = dict(binding)
    extended.update(witnesses)
    return tuple(
        fact
        for fact in (head.substitute(extended) for head in rule.head)  # type: ignore[arg-type]
        if not structure.has_fact(fact)
    )


# ----------------------------------------------------------------------
# The delta engine
# ----------------------------------------------------------------------
def _delta_search(
    database: Structure,
    theory: Theory,
    forbidden: "Optional[ConjunctiveQuery | UnionOfConjunctiveQueries]",
    config: SearchConfig,
) -> SearchResult:
    started = time.perf_counter()
    stats = SearchStats(engine="delta", heuristic=config.heuristic.value)
    guard = RuntimeGuard.from_config(config, "fc-search")
    # convert (not copy) here: the root saturation below copies anyway
    database = ensure_backend(database, config.resolved_store(), copy=False)

    def finish(
        model: "Optional[Structure]",
        reason: StopReason = StopReason.FIXPOINT,
    ) -> SearchResult:
        stats.wall_ms = (time.perf_counter() - started) * 1000.0
        if stats.saturation_pruned:
            stats.exhausted = False
        return SearchResult(model=model, stats=stats, stopped_reason=reason)

    nulls = NullFactory.above(database.domain())
    datalog_rules = [rule for rule in theory.rules if rule.is_datalog]

    try:
        root_structure = seminaive_saturate(
            database, theory, max_facts=config.max_facts
        )
    except ChaseBudgetExceeded:
        stats.saturation_pruned += 1
        stats.exhausted = False
        return finish(None, StopReason.BUDGET)

    finder = _TriggerFinder(theory, root_structure)
    root = _State(None, (), root_structure, root_structure.domain_size)

    best_first = config.heuristic is not SearchHeuristic.DFS
    stack: List[_State] = []
    heap: List[Tuple[int, int, _State]] = []
    pushes = itertools.count()

    def push(state: _State, score: int) -> None:
        stats.states_created += 1
        if best_first:
            heapq.heappush(heap, (score, next(pushes), state))
        else:
            stack.append(state)
        stats.frontier_peak = max(stats.frontier_peak, len(stack) + len(heap))

    def pop() -> _State:
        if best_first:
            return heapq.heappop(heap)[2]
        return stack.pop()

    push(root, 0)
    stats.states_created = 0  # the root is given, not branched
    seen: Set[Any] = set()
    seen_raw: Set[FrozenSet[Atom]] = set()

    while stack or heap:
        reason = guard.check()
        if reason is not None:
            stats.exhausted = False
            if config.should_raise:
                stats.wall_ms = (time.perf_counter() - started) * 1000.0
                raise guard.exception(reason, stats=stats)
            return finish(None, reason)
        if stats.nodes >= config.max_nodes:
            stats.exhausted = False
            if config.should_raise:
                stats.wall_ms = (time.perf_counter() - started) * 1000.0
                raise ModelSearchExhausted(
                    f"node budget exhausted ({config.max_nodes} nodes) "
                    "before a verdict",
                    stats=stats,
                )
            return finish(None, StopReason.BUDGET)
        state = pop()

        if state.structure is None:
            # Cheap raw pre-check: saturation is deterministic, so equal
            # pre-saturation fact sets yield equal states — skip before
            # paying for materialisation.
            raw = state.parent.facts.union(state.delta)  # type: ignore[union-attr]
            if raw in seen_raw:
                stats.duplicates += 1
                continue
            seen_raw.add(raw)

            clock = time.perf_counter()
            working = state.parent.structure.copy()  # type: ignore[union-attr]
            for fact in state.delta:
                working.add_fact(fact)
            stats.states_materialised += 1
            stats.materialise_ms += (time.perf_counter() - clock) * 1000.0

            clock = time.perf_counter()
            try:
                added, rounds = incremental_datalog_saturate(
                    working,
                    theory,
                    state.delta,
                    max_facts=config.max_facts,
                    rules=datalog_rules,
                )
            except ChaseBudgetExceeded:
                stats.saturation_pruned += 1
                stats.saturate_ms += (time.perf_counter() - clock) * 1000.0
                continue
            stats.saturation_new_facts += added
            stats.saturation_rounds += rounds
            stats.saturate_ms += (time.perf_counter() - clock) * 1000.0

            state.structure = working
            state.facts = working.facts()
            state.domain_size = working.domain_size
        else:
            seen_raw.add(state.facts)

        structure = state.structure
        clock = time.perf_counter()
        if config.canonical_dedup and structure.nonconstant_elements():
            # Constant-only states skip canonicalisation: the identity
            # is the only isomorphism fixing every constant, so the raw
            # fact set already is the canonical form.
            marker: Any = canonical_key(structure)
            stats.canonical_keys += 1
        else:
            marker = state.facts
        stats.canonical_ms += (time.perf_counter() - clock) * 1000.0
        if marker in seen:
            stats.duplicates += 1
            continue
        seen.add(marker)
        stats.nodes += 1

        if forbidden is not None:
            clock = time.perf_counter()
            forbidden_holds = satisfies(structure, forbidden)
            stats.query_ms += (time.perf_counter() - clock) * 1000.0
            if forbidden_holds:
                stats.pruned_by_query += 1
                continue

        clock = time.perf_counter()
        trigger = finder.first_violation(structure)
        if trigger is None:
            stats.expand_ms += (time.perf_counter() - clock) * 1000.0
            return finish(structure)

        rule, binding = trigger
        existentials = sorted(rule.existential_variables())
        domain = sorted(structure.domain(), key=str)

        score = 0
        if config.heuristic is SearchHeuristic.FEWEST_VIOLATIONS:
            score = finder.count_violations(structure)

        pushed_deltas: Set[FrozenSet[Atom]] = set()

        def branch(witnesses: Dict[Variable, Element], child_domain: int) -> None:
            delta = _head_delta(structure, rule, binding, witnesses)
            if not delta:
                return
            key = frozenset(delta)
            if key in pushed_deltas:
                return
            pushed_deltas.add(key)
            child = _State(state, delta, domain_size=child_domain)
            child_score = score
            if config.heuristic is SearchHeuristic.SMALLEST_DOMAIN:
                child_score = child_domain
            push(child, child_score)

        # Fresh pushed first, reuse combinations after: the LIFO stack
        # then explores reuse first, matching legacy_search's order.
        if state.domain_size < config.max_elements:
            fresh = {var: nulls.fresh() for var in existentials}
            branch(fresh, state.domain_size + len(existentials))
        for combination in itertools.product(domain, repeat=len(existentials)):
            branch(dict(zip(existentials, combination)), state.domain_size)
        stats.expand_ms += (time.perf_counter() - clock) * 1000.0

    return finish(None)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def search_finite_model(
    database: Structure,
    theory: Theory,
    forbidden: "Optional[ConjunctiveQuery | UnionOfConjunctiveQueries]" = None,
    max_elements: int = 10,
    max_nodes: int = 50_000,
    config: "Optional[SearchConfig]" = None,
    **overrides,
) -> SearchResult:
    """Search for a finite ``M ⊨ database, theory`` (avoiding *forbidden*).

    Existential triggers branch over every reuse of an existing element
    (per existential variable) and, while the domain is below
    ``max_elements``, one fresh element.  The default DFS frontier
    prefers reuse, so small models surface first.

    When ``forbidden`` is given, any state satisfying it is pruned —
    sound because states only grow along a branch and CQs are monotone.

    Pass a :class:`SearchConfig` for the full set of knobs (an explicit
    *config* wins over the ``max_elements`` / ``max_nodes`` shorthands);
    extra keyword overrides (``wall_ms=...``, ``heuristic=...``) are
    applied on top via
    :meth:`~repro.config.BudgetedConfig.with_overrides`.
    :func:`legacy_search` runs the pre-rebuild algorithm for ablation.
    """
    if config is None:
        config = SearchConfig(max_elements=max_elements, max_nodes=max_nodes)
    config = config.with_overrides(**overrides)
    return _delta_search(database, theory, forbidden, config)


def legacy_search(
    database: Structure,
    theory: Theory,
    forbidden: "Optional[ConjunctiveQuery | UnionOfConjunctiveQueries]" = None,
    max_elements: int = 10,
    max_nodes: int = 50_000,
    config: "Optional[SearchConfig]" = None,
) -> SearchResult:
    """The original eager algorithm: full copy + full re-saturation per
    branch, raw fact-set dedup.  Kept for parity tests and as the
    baseline of the ``BENCH_fc`` scoreboard.  An optional *config*
    supplies the runtime-guard fields (``wall_ms``, ``cancel_token``,
    ``max_rss_mb``); the count budgets stay the explicit arguments."""
    started = time.perf_counter()
    stats = SearchStats(engine="legacy", heuristic="dfs")
    guard = RuntimeGuard.from_config(config, "fc-search")
    should_raise = config.should_raise if config is not None else False
    backend = config.resolved_store() if config is not None else resolve_backend()
    database = ensure_backend(database, backend, copy=False)
    nulls = NullFactory.above(database.domain())
    seen: Set[frozenset] = set()

    def finish(
        model: "Optional[Structure]",
        reason: StopReason = StopReason.FIXPOINT,
    ) -> SearchResult:
        stats.wall_ms = (time.perf_counter() - started) * 1000.0
        return SearchResult(model=model, stats=stats, stopped_reason=reason)

    start = datalog_saturate(database, theory).structure
    stack: List[Structure] = [start]
    stopped_reason = StopReason.FIXPOINT

    while stack:
        reason = guard.check()
        if reason is not None:
            stats.exhausted = False
            if should_raise:
                stats.wall_ms = (time.perf_counter() - started) * 1000.0
                raise guard.exception(reason, stats=stats)
            stopped_reason = reason
            break
        if stats.nodes >= max_nodes:
            stats.exhausted = False
            stopped_reason = StopReason.BUDGET
            break
        state = stack.pop()
        marker = state.facts()
        if marker in seen:
            stats.duplicates += 1
            continue
        seen.add(marker)
        stats.nodes += 1

        if forbidden is not None and satisfies(state, forbidden):
            stats.pruned_by_query += 1
            continue

        trigger = _violated_existential(state, theory)
        if trigger is None:
            return finish(state)
        rule, binding = trigger
        existentials = sorted(rule.existential_variables())
        domain = sorted(state.domain(), key=str)

        branches: List[Structure] = []
        if state.domain_size < max_elements:
            fresh = {var: nulls.fresh() for var in existentials}
            branches.append(_apply_head(state, rule, binding, fresh))
        for combination in itertools.product(domain, repeat=len(existentials)):
            witnesses = dict(zip(existentials, combination))
            branches.append(_apply_head(state, rule, binding, witnesses))
        # saturate datalog in every branch before stacking; push reuse
        # branches last so they are explored first (LIFO).
        for branch in branches:
            stack.append(datalog_saturate(branch, theory).structure)
            stats.states_created += 1
            stats.states_materialised += 1
        stats.frontier_peak = max(stats.frontier_peak, len(stack))

    return finish(None, stopped_reason)


def every_finite_model_satisfies(
    database: Structure,
    theory: Theory,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
    max_elements: int = 8,
    max_nodes: int = 50_000,
    config: "Optional[SearchConfig]" = None,
) -> Tuple[bool, SearchStats]:
    """Check the Section 5.5 phenomenon: within the bounds, does *every*
    finite model of (database, theory) satisfy *query*?

    Returns ``(verdict, stats)``.  A ``True`` verdict with
    ``stats.exhausted`` is a proof for models with at most
    *max_elements* elements; without exhaustion it is only "none
    found".  A ``False`` verdict is always a hard counterexample (a
    model avoiding the query was found).
    """
    outcome = search_finite_model(
        database,
        theory,
        forbidden=query,
        max_elements=max_elements,
        max_nodes=max_nodes,
        config=config,
    )
    return (not outcome.found), outcome.stats


def find_counter_model(
    database: Structure,
    theory: Theory,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
    max_elements: int = 10,
    max_nodes: int = 50_000,
    config: "Optional[SearchConfig]" = None,
) -> Structure:
    """A finite model of (database, theory) avoiding *query*.

    Raises
    ------
    ModelSearchExhausted
        When the bounded search finds none (see
        :func:`every_finite_model_satisfies` for what that means).
    """
    outcome = search_finite_model(
        database,
        theory,
        forbidden=query,
        max_elements=max_elements,
        max_nodes=max_nodes,
        config=config,
    )
    if outcome.model is None:
        raise ModelSearchExhausted(
            f"no finite model avoiding the query within bounds "
            f"(exhausted={outcome.stats.exhausted})",
            stats=outcome.stats,
        )
    return outcome.model
