"""The (dead-end) ordering conjecture of Section 5.5.

Conjecture 2 (refuted by the paper): *T is not FC iff T defines an
ordering* — i.e. there are D, an infinite ``A ⊆ Chase(D, T)`` and a CQ
``Φ(x, y)`` with ``Chase ⊭ ∃x Φ(x, x)`` such that Φ strictly totally
orders A.

The "if" direction is true and executable: :func:`ordering_implies_query`
verifies the paper's argument that a defined ordering forces
``∃x Φ(x, x)`` in every finite model.  The "only if" direction fails on
the notorious Section 5.5 theory; :func:`find_ordering` is the bounded
detector used to show that *no small Φ orders a large subset* of its
chase, while the same detector instantly finds the ordering in the
natural non-FC example (successor + transitivity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..chase.engine import ChaseConfig, chase
from ..chase.results import ChaseResult
from ..lf.atoms import Atom, atom
from ..lf.homomorphism import all_answers, satisfies
from ..lf.queries import ConjunctiveQuery
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Element, Variable


@dataclass
class OrderingWitness:
    """A found ordering: the query and the ordered subset.

    Attributes
    ----------
    query:
        Φ(x, y), irreflexive on the (truncated) chase.
    ordered:
        A ⊆ chase elements on which Φ is a strict total order, in
        order.
    """

    query: ConjunctiveQuery
    ordered: List[Element] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.ordered)


def default_candidates(theory: Theory, max_length: int = 2) -> List[ConjunctiveQuery]:
    """A candidate pool of ordering queries: single binary atoms and
    short compositions ``R1(x, u) ∧ R2(u, y)`` over the theory's binary
    predicates (the shapes that order chase levels in practice)."""
    x, y, u = Variable("x"), Variable("y"), Variable("u")
    binaries = sorted(
        pred
        for pred, arity in theory.signature.relations.items()
        if arity == 2
    )
    pool: List[ConjunctiveQuery] = []
    for pred in binaries:
        pool.append(ConjunctiveQuery([atom(pred, x, y)], (x, y)))
    if max_length >= 2:
        for first in binaries:
            for second in binaries:
                pool.append(
                    ConjunctiveQuery(
                        [atom(first, x, u), atom(second, u, y)], (x, y)
                    )
                )
    return pool


def _strict_total_chain(
    relation: Set[Tuple[Element, Element]], elements: Sequence[Element]
) -> List[Element]:
    """A longest-effort chain on which the relation is a strict total
    order: greedy extension of chains under the relation (with the
    converse absent), checked for totality pairwise."""
    best: List[Element] = []
    ordered = set(relation)
    for start in elements:
        chain = [start]
        frontier = start
        improved = True
        while improved:
            improved = False
            for candidate in elements:
                if candidate in chain:
                    continue
                forward = (frontier, candidate) in ordered
                backward = (candidate, frontier) in ordered
                if forward and not backward:
                    # totality & antisymmetry against the whole chain
                    if all(
                        (link, candidate) in ordered and (candidate, link) not in ordered
                        for link in chain
                    ):
                        chain.append(candidate)
                        frontier = candidate
                        improved = True
                        break
        if len(chain) > len(best):
            best = chain
    return best


def find_ordering(
    theory: Theory,
    database: Structure,
    min_size: int = 5,
    max_depth: int = 8,
    candidates: "Optional[List[ConjunctiveQuery]]" = None,
    max_facts: "Optional[int]" = 50_000,
) -> "Optional[OrderingWitness]":
    """Bounded search for a defined ordering (Conjecture 2's premise).

    Chases the database to *max_depth*, then tests each candidate Φ:
    Φ must be irreflexive on the whole truncation, and must totally
    order at least *min_size* elements.  Returns the first witness, or
    ``None`` (which, being a bounded search, refutes nothing — but on
    the Section 5.5 theory it illustrates the paper's point that no
    natural ordering exists, while on successor+transitivity it finds
    ``E`` itself immediately).
    """
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=max_depth, max_facts=max_facts, max_elements=None),
    )
    structure = result.structure
    pool = candidates if candidates is not None else default_candidates(theory)
    elements = sorted(structure.domain(), key=str)
    for query in pool:
        x, y = query.free
        reflexive = ConjunctiveQuery(
            [a.substitute({y: x}) for a in query.atoms], ()
        )
        if satisfies(structure, reflexive):
            continue  # Chase ⊨ ∃x Φ(x,x): not irreflexive
        relation = all_answers(structure, query)
        chainlike = _strict_total_chain(relation, elements)
        if len(chainlike) >= min_size:
            return OrderingWitness(query=query, ordered=chainlike)
    return None


def ordering_implies_query(
    witness: OrderingWitness,
    finite_model: Structure,
) -> bool:
    """The true half of Conjecture 2, checked on a concrete model.

    If Φ orders an infinite subset of the chase, any finite model —
    which receives the chase through a homomorphism — must identify two
    ordered elements, making ``∃x Φ(x, x)`` true.  For a finite chase
    subset the argument needs the model to be smaller than the ordered
    chain; this helper just evaluates ``∃x Φ(x, x)`` on the model.
    """
    query = witness.query
    x, y = query.free
    reflexive = ConjunctiveQuery([a.substitute({y: x}) for a in query.atoms], ())
    return satisfies(finite_model, reflexive)
