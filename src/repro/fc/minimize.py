"""Counter-model minimisation.

The Theorem-2 pipeline and the model search both tend to produce models
with some slack.  :func:`minimize_model` greedily shrinks a model while
preserving the three certificate properties (contains D, satisfies T,
avoids Q): first dropping whole elements, then individual non-database
facts.  Greedy means locally minimal, not globally smallest — finding
the smallest model is as hard as the search itself.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..chase.engine import is_model
from ..lf.homomorphism import satisfies
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Constant


def _acceptable(
    candidate: Structure,
    theory: Theory,
    database: Structure,
    forbidden,
) -> bool:
    if not candidate.contains_structure(database):
        return False
    if forbidden is not None and satisfies(candidate, forbidden):
        return False
    return is_model(candidate, theory)


def minimize_model(
    model: Structure,
    theory: Theory,
    database: Structure,
    forbidden: "Optional[ConjunctiveQuery | UnionOfConjunctiveQueries]" = None,
    drop_facts: bool = True,
) -> Structure:
    """Greedily shrink *model* while keeping it a counter-model.

    Parameters
    ----------
    model:
        A structure with ``model ⊇ database``, ``model ⊨ theory`` and
        (if *forbidden* is given) ``model ⊭ forbidden``.
    drop_facts:
        After the element pass, also try dropping individual facts that
        are not database facts.

    Returns
    -------
    Structure
        A locally minimal model with the same certificate properties
        (verified on every accepted step, so the result is always
        valid even if the input was not minimal-izable).
    """
    current = model.copy()

    # Pass 1: drop whole elements (all facts touching them).
    changed = True
    while changed:
        changed = False
        candidates = sorted(
            (e for e in current.domain() if not isinstance(e, Constant)),
            key=lambda e: -current.degree(e),
        )
        for element in candidates:
            survivors = current.domain() - {element}
            candidate = current.restrict_elements(survivors)
            if _acceptable(candidate, theory, database, forbidden):
                current = candidate
                changed = True
                break

    # Pass 2: drop redundant facts.
    if drop_facts:
        changed = True
        while changed:
            changed = False
            for fact in current.sorted_facts():
                if database.has_fact(fact):
                    continue
                candidate = current.copy()
                candidate.discard_fact(fact)
                if _acceptable(candidate, theory, database, forbidden):
                    current = candidate
                    changed = True
                    break

    return current
