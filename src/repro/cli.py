"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``chase``        run the chase, print facts (optionally explain one)
``certain``      certain answers of a query (chase route)
``rewrite``      UCQ rewriting of a query (BDD route), with κ-style stats
``classify``     syntactic class profile of a theory
``countermodel`` the Theorem-2/3 pipeline: a finite model avoiding a query
``fc-search``    bounded finite-model search (Definition 1 oracle)
``skeleton``     extract S(D,T) and check Lemma 3
``serve``        warm multi-tenant service mode (:mod:`repro.serve`):
                 line-JSON over TCP/Unix socket, same payloads as
                 ``--json``, SIGTERM → drain → exit 130

Theories/databases are files; pass ``-e`` to treat the arguments as
inline text instead.  Everything prints deterministic, line-oriented
output suitable for scripting.

Machine-readable surface
------------------------
Four global flags work on every command (before or after the command
name):

``--json``         emit exactly one JSON object on stdout — always with
                   the keys ``command``, ``status``, ``counts``
                   (integer counters), plus per-command payload
                   (``facts``, ``answers``, ``disjuncts``, ...).
                   Engine-backed commands also carry
                   ``stopped_reason`` (see below) and a ``stats``
                   object (per-round trigger/delta/probe counters);
                   the ``wall_ms`` entries are the only
                   nondeterministic fields.  The object is printed
                   even when the run is interrupted or times out, so
                   JSON consumers always get a well-formed payload
                   with ``exit_code``.
``--stats``        in text mode, print the per-round chase
                   instrumentation as ``#``-prefixed comment lines; in
                   JSON mode it is implied.
``--wall-ms MS``   wall-clock deadline for the run (monotonic;
                   engines stop cooperatively with a partial result).
``--max-rss-mb M`` soft peak-RSS ceiling for the run.

``stopped_reason`` vocabulary (:class:`~repro.runtime.StopReason`):
``fixpoint`` (natural completion), ``budget`` (a count budget ran
out), ``deadline`` (``--wall-ms`` expired), ``cancelled`` (Ctrl-C /
SIGTERM), ``memory`` (``--max-rss-mb`` crossed).

Exit codes
----------
===========  =========================================================
``0``        success (chase ran, answers computed, model found, ...)
``1``        error: unreadable input, parse failure, or any
             :class:`~repro.errors.ReproError` (budget exceptions
             included when a config says raise)
``2``        incomplete/unknown: a budget was exhausted before the
             verdict (``certain`` unknown, ``rewrite`` not saturated,
             ``chase --explain`` target absent, Lemma-3 check failed,
             ``fc-search`` out of nodes before a verdict) — including
             a ``deadline`` or ``memory`` guard stop
``3``        no counter-model exists: ``countermodel`` found the query
             to be certain, or ``fc-search`` exhausted the bounded
             space without finding a model
``130``      interrupted: the run was cancelled (Ctrl-C / SIGTERM);
             with ``--json`` the payload still carries the partial
             counters and ``stopped_reason: "cancelled"``
===========  =========================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .errors import BudgetError, Cancelled, DeadlineExceeded, MemoryBudgetExceeded, ReproError
from .lf import parse_query, parse_structure, parse_theory
from .runtime import StopReason, cancellation_scope

# The exit-code table and the per-command payload builders are shared
# with ``repro serve`` (same run, same JSON); see repro.payloads.
from .payloads import (  # noqa: F401  (EXIT_* are part of the public surface)
    EXIT_ERROR,
    EXIT_INCOMPLETE,
    EXIT_INTERRUPTED,
    EXIT_NO_COUNTERMODEL,
    EXIT_OK,
    stop_code as _stop_code,
    stats_dict as _stats_dict,
)
from . import payloads


def _load(text_or_path: str, inline: bool) -> str:
    if inline:
        return text_or_path
    return Path(text_or_path).read_text()


def _theory(args):
    return parse_theory(_load(args.theory, args.inline))


def _database(args):
    return parse_structure(_load(args.database, args.inline))


def _query(args):
    free = [name for name in (args.free or "").split(",") if name]
    return parse_query(args.query, free=free)


def _emit_json(payload: Dict[str, Any], exit_code: int) -> int:
    """Print the one JSON object of the run (sorted keys: determinism)."""
    payload["exit_code"] = exit_code
    print(json.dumps(payload, sort_keys=True, default=str))
    return exit_code


def _guard_overrides(args) -> Dict[str, Any]:
    """The shared config fields from the global CLI flags (runtime
    guards plus the fact-store backend)."""
    return {
        "wall_ms": args.wall_ms,
        "max_rss_mb": args.max_rss_mb,
        "store": args.store,
    }


def _print_stats(args, stats) -> None:
    """Text-mode ``--stats``: comment lines, deterministic order."""
    if args.stats and stats is not None:
        print(stats.render())


def _parse_updates(text: str):
    """Parse an update script into ``(adds, removes)`` batches.

    One fact per line, prefixed ``+`` (insert) or ``-`` (retract);
    blank lines separate batches; ``#`` comments are skipped.
    """
    from .lf.parser import parse_facts

    batches = []
    adds: List[Any] = []
    removes: List[Any] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if line.startswith("#"):
            continue
        if not line:
            if adds or removes:
                batches.append((adds, removes))
                adds, removes = [], []
            continue
        if line.startswith("+"):
            adds.extend(parse_facts(line[1:].strip()))
        elif line.startswith("-"):
            removes.extend(parse_facts(line[1:].strip()))
        else:
            raise ReproError(
                f"update line {lineno} must start with '+' or '-': {line!r}"
            )
    if adds or removes:
        batches.append((adds, removes))
    return batches


def _cmd_chase_incremental(args, theory, database) -> int:
    """The ``chase --incremental UPDATES`` path: maintain a view."""
    from .chase import ChaseView, IncrementalConfig, explain

    batches = _parse_updates(_load(args.incremental, args.inline))
    view = ChaseView(
        database,
        theory,
        IncrementalConfig(max_depth=args.depth, **_guard_overrides(args)),
    )
    results = []
    for adds, removes in batches:
        results.append(view.update(adds=adds, removes=removes))
    status = "saturated" if view.saturated else "truncated"
    payload, code = payloads.incremental_chase_payload(view, results)
    if args.json:
        return _emit_json(payload, code)
    print(f"# chase {status} after {len(results)} updates: "
          f"{len(view)} facts over {len(view.base_facts())} base facts, "
          f"depth {view.depth} (stopped: {view.stopped_reason.value})")
    if args.stats:
        _print_stats(args, view.initial_result.stats)
        for index, update in enumerate(results, start=1):
            print(f"# update {index}:")
            print(update.stats.render())
    for fact in view.structure.sorted_facts():
        print(fact)
    if args.explain:
        result = view.as_result()
        facts = sorted(view.structure.facts_with_pred(args.explain), key=str)
        if not facts:
            print(f"# no {args.explain}-facts to explain", file=sys.stderr)
            return EXIT_ERROR
        print(f"# derivation of {facts[0]}:")
        print(explain(result, facts[0]).render(theory))
    return code


def _cmd_chase(args) -> int:
    from .chase import ChaseConfig, chase, explain

    theory = _theory(args)
    database = _database(args)
    if args.incremental is not None:
        return _cmd_chase_incremental(args, theory, database)
    result = chase(
        database,
        theory,
        ChaseConfig(
            max_depth=args.depth, trace=bool(args.explain), **_guard_overrides(args)
        ),
    )
    status = "saturated" if result.saturated else "truncated"
    payload, code = payloads.chase_payload(result)
    if args.json:
        return _emit_json(payload, code)
    shown = status if result.saturated else f"truncated at depth {result.depth}"
    print(f"# chase {shown}: {len(result.structure)} facts, "
          f"{result.structure.domain_size} elements, "
          f"{len(result.new_elements)} invented "
          f"(stopped: {result.stopped_reason.value})")
    _print_stats(args, result.stats)
    for fact in result.structure.sorted_facts():
        print(fact)
    if args.explain:
        facts = sorted(result.structure.facts_with_pred(args.explain), key=str)
        if not facts:
            print(f"# no {args.explain}-facts to explain", file=sys.stderr)
            return EXIT_ERROR
        print(f"# derivation of {facts[0]}:")
        print(explain(result, facts[0]).render(theory))
    return code


def _cmd_certain(args) -> int:
    from .chase import ChaseConfig, certain_report

    theory = _theory(args)
    database = _database(args)
    query = _query(args)
    config = ChaseConfig(
        max_depth=args.depth,
        max_facts=200_000,
        max_elements=None,
        **_guard_overrides(args),
    )
    report = certain_report(database, theory, query, config=config)
    verdict = {True: "certain", False: "not-certain", None: "unknown"}[report.verdict]
    payload, code = payloads.certain_payload(report)
    rows = sorted(report.answers, key=str)
    if args.json:
        return _emit_json(payload, code)
    if query.is_boolean:
        print(verdict)
        _print_stats(args, report.stats)
        return code
    print(f"# {len(report.answers)} certain answers "
          f"({'complete' if report.complete else 'lower bound'})")
    _print_stats(args, report.stats)
    for row in rows:
        print(", ".join(str(value) for value in row))
    return code


def _cmd_rewrite(args) -> int:
    from .config import OnBudget
    from .rewriting import RewriteConfig, legacy_rewrite, rewrite

    theory = _theory(args)
    query = _query(args)
    config = RewriteConfig(
        max_steps=args.max_steps,
        max_queries=args.max_queries,
        on_budget=OnBudget.RETURN,
        **_guard_overrides(args),
    )
    engine = legacy_rewrite if args.legacy else rewrite
    result = engine(query, theory, config)
    payload, code = payloads.rewrite_payload(result)
    if args.json:
        return _emit_json(payload, code)
    status = "saturated" if result.saturated else "budget-exhausted (incomplete!)"
    print(f"# {status}: {len(result.ucq)} disjuncts, max width "
          f"{result.max_width}, k_psi <= {result.depth_bound}")
    _print_stats(args, result.stats)
    for disjunct in result.ucq:
        print(disjunct)
    return code


def _cmd_classify(args) -> int:
    from .classes import classify

    profile = classify(_theory(args))
    if args.json:
        payload, code = payloads.classify_payload(profile)
        return _emit_json(payload, code)
    for name, verdict in sorted(profile.items()):
        print(f"{name}: {'yes' if verdict else 'no'}")
    return EXIT_OK


def _cmd_countermodel(args) -> int:
    from .core import PipelineConfig, build_finite_counter_model

    theory = _theory(args)
    database = _database(args)
    query = _query(args)
    config = PipelineConfig(**_guard_overrides(args))
    if args.depths:
        config = config.with_overrides(
            chase_depths=tuple(int(d) for d in args.depths.split(","))
        )
    result = build_finite_counter_model(theory, database, query, config)
    if args.json:
        payload, code = payloads.countermodel_payload(result)
        return _emit_json(payload, code)
    if result.query_certain:
        print("# the query is certain: no counter-model exists")
        return EXIT_NO_COUNTERMODEL
    print(f"# verified finite counter-model: {result.model_size} elements "
          f"(kappa={result.kappa}, eta={result.eta}, depth={result.depth})")
    if args.stats:
        for stats in result.chase_stats:
            print(stats.render())
    for fact in result.model.sorted_facts():
        print(fact)
    return EXIT_OK


def _cmd_fc_search(args) -> int:
    from .fc import SearchConfig, legacy_search, search_finite_model

    theory = _theory(args)
    database = _database(args)
    forbidden = None
    if args.query is not None:
        free = [name for name in (args.free or "").split(",") if name]
        forbidden = parse_query(args.query, free=free)
    if args.legacy:
        outcome = legacy_search(
            database,
            theory,
            forbidden=forbidden,
            max_elements=args.max_elements,
            max_nodes=args.max_nodes,
            config=SearchConfig(**_guard_overrides(args)),
        )
    else:
        config = SearchConfig(
            max_elements=args.max_elements,
            max_nodes=args.max_nodes,
            heuristic=args.heuristic,
            canonical_dedup=not args.no_canonical_dedup,
            **_guard_overrides(args),
        )
        outcome = search_finite_model(
            database, theory, forbidden=forbidden, config=config
        )
    stats = outcome.stats
    payload, code = payloads.fc_search_payload(outcome)
    if args.json:
        return _emit_json(payload, code)
    if outcome.found:
        print(f"# model found: {outcome.model.domain_size} elements, "
              f"{len(outcome.model)} facts ({stats.nodes} nodes explored)")
    elif stats.exhausted:
        print(f"# no model with <= {args.max_elements} elements "
              f"(exhaustive: {stats.nodes} nodes)")
    else:
        print(f"# inconclusive: stopped after {stats.nodes} nodes "
              f"({outcome.stopped_reason.value})")
    _print_stats(args, stats)
    if outcome.model is not None:
        for fact in outcome.model.sorted_facts():
            print(fact)
    return code


def _cmd_skeleton(args) -> int:
    from .skeleton import lemma3_report, skeleton

    theory = _theory(args)
    database = _database(args)
    result = skeleton(
        database, theory, max_depth=args.depth, **_guard_overrides(args)
    )
    report = lemma3_report(result)
    payload, code = payloads.skeleton_payload(result, report)
    if args.json:
        return _emit_json(payload, code)
    print(f"# skeleton: {len(result.structure)} atoms over "
          f"{result.structure.domain_size} elements; "
          f"flesh: {len(result.flesh)} atoms")
    print(f"# Lemma 3: forest={report.forest} acyclic={report.acyclic} "
          f"in-degree<=1={report.in_degree_at_most_one} "
          f"degree {report.degree_observed}/{report.degree_bound} "
          f"vtdag={report.vtdag}")
    for fact in result.structure.sorted_facts():
        print(fact)
    return code


def _serve_env_int(name: str, fallback: "Optional[int]") -> "Optional[int]":
    """An integer default from the environment (``repro serve`` quotas)."""
    import os

    value = os.environ.get(name, "").strip()
    if not value:
        return fallback
    try:
        return int(value)
    except ValueError:
        raise SystemExit(
            f"repro serve: ${name} must be an integer, got {value!r}"
        ) from None


def _cmd_serve(args) -> int:
    from .serve import ServeConfig, run_server

    wall_ms = args.request_wall_ms
    if wall_ms is None:
        wall_ms = args.wall_ms  # the global flag doubles as the default SLA
    config = ServeConfig(
        host=args.host,
        port=args.port,
        path=args.unix,
        workers=args.workers,
        max_sessions=args.max_sessions,
        drain_ms=args.drain_ms,
        max_pending=args.max_pending,
        tenant_max_pending=args.tenant_max_pending,
        tenant_max_inflight=args.tenant_max_inflight,
        admission_disabled=args.no_admission,
        wall_ms=wall_ms,
        max_rss_mb=args.max_rss_mb,
        store=args.store,
    )

    def announce(server) -> None:
        import os

        if args.json:
            print(json.dumps({
                "command": "serve",
                "status": "ready",
                "host": server.host,
                "port": server.port,
                "path": config.path,
                "workers": config.workers,
                "request_wall_ms": config.wall_ms,
                "max_pending": config.max_pending,
                "admission": not config.admission_disabled,
                "pid": os.getpid(),
            }, sort_keys=True, default=str))
        else:
            where = (config.path if config.path is not None
                     else f"{server.host}:{server.port}")
            print(f"# repro serve ready on {where} "
                  f"(workers={config.workers}, "
                  f"request-wall-ms={config.wall_ms}, pid={os.getpid()})")
        sys.stdout.flush()

    return run_server(config, ready=announce)


def build_parser() -> argparse.ArgumentParser:
    # The global flags live on the root parser (``repro --json chase``)
    # AND, with SUPPRESS defaults, on every subcommand — so the natural
    # ``repro chase --json`` works too without clobbering the root value.
    global_flags = argparse.ArgumentParser(add_help=False)
    global_flags.add_argument(
        "--json", action="store_true", default=argparse.SUPPRESS,
        help="emit one JSON object instead of line-oriented text",
    )
    global_flags.add_argument(
        "--stats", action="store_true", default=argparse.SUPPRESS,
        help="print per-round chase instrumentation (implied by --json)",
    )
    global_flags.add_argument(
        "--wall-ms", type=float, default=argparse.SUPPRESS, metavar="MS",
        help="wall-clock deadline: stop cooperatively with a partial result",
    )
    global_flags.add_argument(
        "--max-rss-mb", type=float, default=argparse.SUPPRESS, metavar="MB",
        help="soft peak-RSS ceiling: stop cooperatively when crossed",
    )
    global_flags.add_argument(
        "--store", choices=["dict", "columnar"], default=argparse.SUPPRESS,
        help="fact-store backend (default: $REPRO_STORE, else keep the "
             "input's backend)",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Datalog∃ laboratory for 'On the BDD/FC Conjecture'.",
        epilog="exit codes: 0 success, 1 error, 2 incomplete/unknown "
               "(count budget, --wall-ms deadline, or --max-rss-mb ceiling), "
               "3 no counter-model (query certain), 130 interrupted "
               "(Ctrl-C/SIGTERM; partial result still emitted under --json). "
               "JSON payloads carry stopped_reason: "
               "fixpoint|budget|deadline|cancelled|memory.",
    )
    parser.add_argument(
        "-e", "--inline", action="store_true",
        help="treat THEORY/DATABASE arguments as inline text, not files",
    )
    parser.add_argument("--json", action="store_true", default=False,
                        help=argparse.SUPPRESS)
    parser.add_argument("--stats", action="store_true", default=False,
                        help=argparse.SUPPRESS)
    parser.add_argument("--wall-ms", type=float, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--max-rss-mb", type=float, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--store", choices=["dict", "columnar"], default=None,
                        help=argparse.SUPPRESS)
    commands = parser.add_subparsers(dest="command", required=True)

    chase_cmd = commands.add_parser("chase", help="run the chase",
                                    parents=[global_flags])
    chase_cmd.add_argument("theory")
    chase_cmd.add_argument("database")
    chase_cmd.add_argument("--depth", type=int, default=8)
    chase_cmd.add_argument(
        "--incremental", metavar="UPDATES",
        help="maintain an incremental view: apply blank-line-separated "
             "batches of '+ Fact' / '- Fact' lines from this file "
             "(inline text with -e)")
    chase_cmd.add_argument("--explain", metavar="PRED",
                           help="print a derivation tree for a PRED-fact")
    chase_cmd.set_defaults(handler=_cmd_chase)

    certain_cmd = commands.add_parser("certain", help="certain answers",
                                      parents=[global_flags])
    certain_cmd.add_argument("theory")
    certain_cmd.add_argument("database")
    certain_cmd.add_argument("query")
    certain_cmd.add_argument("--free", help="comma-separated free variables")
    certain_cmd.add_argument("--depth", type=int, default=12)
    certain_cmd.set_defaults(handler=_cmd_certain)

    rewrite_cmd = commands.add_parser("rewrite", help="UCQ rewriting (BDD)",
                                      parents=[global_flags])
    rewrite_cmd.add_argument("theory")
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--free", help="comma-separated free variables")
    rewrite_cmd.add_argument("--max-steps", type=int, default=20_000)
    rewrite_cmd.add_argument("--max-queries", type=int, default=2_000)
    rewrite_cmd.add_argument(
        "--legacy", action="store_true",
        help="use the quadratic-frontier baseline engine (ablation)")
    rewrite_cmd.set_defaults(handler=_cmd_rewrite)

    classify_cmd = commands.add_parser("classify", help="syntactic classes",
                                       parents=[global_flags])
    classify_cmd.add_argument("theory")
    classify_cmd.set_defaults(handler=_cmd_classify)

    counter_cmd = commands.add_parser(
        "countermodel", help="finite counter-model (Theorem 2/3)",
        parents=[global_flags],
    )
    counter_cmd.add_argument("theory")
    counter_cmd.add_argument("database")
    counter_cmd.add_argument("query")
    counter_cmd.add_argument("--free", help="comma-separated free variables")
    counter_cmd.add_argument("--depths", help="comma-separated chase depths")
    counter_cmd.set_defaults(handler=_cmd_countermodel)

    search_cmd = commands.add_parser(
        "fc-search",
        help="bounded finite-model search (Definition 1 oracle)",
        parents=[global_flags],
    )
    search_cmd.add_argument("theory")
    search_cmd.add_argument("database")
    search_cmd.add_argument(
        "query", nargs="?", default=None,
        help="forbidden query: search for a model NOT satisfying it",
    )
    search_cmd.add_argument("--free", help="comma-separated free variables")
    search_cmd.add_argument("--max-elements", type=int, default=10)
    search_cmd.add_argument("--max-nodes", type=int, default=50_000)
    search_cmd.add_argument(
        "--heuristic", default="dfs",
        choices=["dfs", "smallest-domain", "fewest-violations"],
        help="frontier ordering of the incremental engine",
    )
    search_cmd.add_argument(
        "--legacy", action="store_true",
        help="use the pre-rewrite engine (saturate-at-push, exact dedup)",
    )
    search_cmd.add_argument(
        "--no-canonical-dedup", action="store_true",
        help="hash states by raw fact sets instead of canonical keys",
    )
    search_cmd.set_defaults(handler=_cmd_fc_search)

    skeleton_cmd = commands.add_parser("skeleton", help="extract S(D,T)",
                                       parents=[global_flags])
    skeleton_cmd.add_argument("theory")
    skeleton_cmd.add_argument("database")
    skeleton_cmd.add_argument("--depth", type=int, default=8)
    skeleton_cmd.set_defaults(handler=_cmd_skeleton)

    serve_cmd = commands.add_parser(
        "serve",
        help="warm multi-tenant service (line-JSON over TCP/Unix socket)",
        parents=[global_flags],
        epilog="SIGTERM/SIGINT: stop accepting, answer queued requests "
               "with a draining error, drain in-flight requests (up to "
               "--drain-ms, then cancel them cooperatively), exit 130. "
               "A bind failure prints one JSON line to stderr and exits "
               "1. The readiness line reports the bound port (use "
               "--port 0 for an ephemeral one). --wall-ms acts as the "
               "default per-request SLA when --request-wall-ms is not "
               "given (queue time counts: the deadline starts at "
               "admission); --max-rss-mb is the shared soft ceiling. "
               "Requests past the admission bounds are shed immediately "
               "with error 'overloaded' and a retry_after_ms hint.",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7464,
                           help="TCP port (0 = ephemeral; default 7464)")
    serve_cmd.add_argument("--unix", metavar="PATH", default=None,
                           help="listen on a Unix-domain socket instead")
    serve_cmd.add_argument("--workers", type=int, default=4,
                           help="worker threads (default 4)")
    serve_cmd.add_argument("--max-sessions", type=int, default=64,
                           help="LRU bound on warm tenant sessions")
    serve_cmd.add_argument("--drain-ms", type=float, default=5000.0,
                           help="shutdown grace for in-flight requests")
    serve_cmd.add_argument("--request-wall-ms", type=float, default=None,
                           metavar="MS",
                           help="default per-request SLA deadline")
    serve_cmd.add_argument(
        "--max-pending", type=int,
        default=_serve_env_int("REPRO_SERVE_MAX_PENDING", 1024),
        help="global bound on queued requests before shedding "
             "(default $REPRO_SERVE_MAX_PENDING, else 1024)")
    serve_cmd.add_argument(
        "--tenant-max-pending", type=int,
        default=_serve_env_int("REPRO_SERVE_TENANT_MAX_PENDING", None),
        help="per-tenant queue bound (default "
             "$REPRO_SERVE_TENANT_MAX_PENDING, else --max-pending)")
    serve_cmd.add_argument(
        "--tenant-max-inflight", type=int,
        default=_serve_env_int("REPRO_SERVE_TENANT_MAX_INFLIGHT", None),
        help="per-tenant bound on concurrently-running requests "
             "(default $REPRO_SERVE_TENANT_MAX_INFLIGHT, else --workers)")
    serve_cmd.add_argument(
        "--no-admission", action="store_true", default=False,
        help="disable admission control (unbounded executor queue; the "
             "benchmark ablation baseline — not for production)")
    serve_cmd.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    """Entry point; returns the process exit code (see the docstring table).

    The whole run executes inside a
    :func:`~repro.runtime.cancellation_scope`: the first Ctrl-C /
    SIGTERM trips the ambient cancel token, engines unwind
    cooperatively, and the process exits :data:`EXIT_INTERRUPTED` —
    with the usual one-line JSON payload under ``--json``.  A second
    signal (or an interrupt outside any engine checkpoint) lands in the
    ``KeyboardInterrupt`` handler below, which still emits well-formed
    JSON before exiting.
    """
    parser = build_parser()
    args = parser.parse_args(argv)

    def fail(status: str, error: "Optional[BaseException]", code: int) -> int:
        """The uniform non-success surface: one JSON object or one stderr line."""
        if args.json:
            payload: Dict[str, Any] = {
                "command": args.command,
                "status": status,
                "exit_code": code,
            }
            if error is not None and str(error):
                payload["error"] = str(error)
            if isinstance(error, BudgetError):
                payload["stopped_reason"] = error.stopped_reason
            elif status == "interrupted":
                payload["stopped_reason"] = StopReason.CANCELLED.value
            print(json.dumps(payload, sort_keys=True, default=str))
        else:
            detail = f": {error}" if error is not None and str(error) else ""
            print(f"{status}{detail}", file=sys.stderr)
        return code

    try:
        with cancellation_scope():
            return args.handler(args)
    except Cancelled as error:
        return fail("interrupted", error, EXIT_INTERRUPTED)
    except (DeadlineExceeded, MemoryBudgetExceeded) as error:
        return fail("incomplete", error, EXIT_INCOMPLETE)
    except KeyboardInterrupt:
        return fail("interrupted", None, EXIT_INTERRUPTED)
    except (ReproError, OSError) as error:
        return fail("error", error, EXIT_ERROR)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
