"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``chase``        run the chase, print facts (optionally explain one)
``certain``      certain answers of a query (chase route)
``rewrite``      UCQ rewriting of a query (BDD route), with κ-style stats
``classify``     syntactic class profile of a theory
``countermodel`` the Theorem-2/3 pipeline: a finite model avoiding a query
``skeleton``     extract S(D,T) and check Lemma 3

Theories/databases are files; pass ``-e`` to treat the arguments as
inline text instead.  Everything prints deterministic, line-oriented
output suitable for scripting.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .errors import ReproError
from .lf import parse_query, parse_structure, parse_theory


def _load(text_or_path: str, inline: bool) -> str:
    if inline:
        return text_or_path
    return Path(text_or_path).read_text()


def _theory(args):
    return parse_theory(_load(args.theory, args.inline))


def _database(args):
    return parse_structure(_load(args.database, args.inline))


def _query(args):
    free = [name for name in (args.free or "").split(",") if name]
    return parse_query(args.query, free=free)


def _cmd_chase(args) -> int:
    from .chase import ChaseConfig, chase, explain

    theory = _theory(args)
    database = _database(args)
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=args.depth, trace=bool(args.explain)),
    )
    status = "saturated" if result.saturated else f"truncated at depth {result.depth}"
    print(f"# chase {status}: {len(result.structure)} facts, "
          f"{result.structure.domain_size} elements, "
          f"{len(result.new_elements)} invented")
    for fact in result.structure.sorted_facts():
        print(fact)
    if args.explain:
        facts = sorted(result.structure.facts_with_pred(args.explain), key=str)
        if not facts:
            print(f"# no {args.explain}-facts to explain", file=sys.stderr)
            return 1
        print(f"# derivation of {facts[0]}:")
        print(explain(result, facts[0]).render(theory))
    return 0


def _cmd_certain(args) -> int:
    from .chase import certain_answers, certain_boolean

    theory = _theory(args)
    database = _database(args)
    query = _query(args)
    if query.is_boolean:
        verdict = certain_boolean(database, theory, query, max_depth=args.depth)
        print({True: "certain", False: "not-certain", None: "unknown"}[verdict])
        return 0 if verdict is not None else 2
    answers, complete = certain_answers(
        database, theory, query, max_depth=args.depth
    )
    print(f"# {len(answers)} certain answers "
          f"({'complete' if complete else 'lower bound'})")
    for row in sorted(answers, key=str):
        print(", ".join(str(value) for value in row))
    return 0


def _cmd_rewrite(args) -> int:
    from .rewriting import RewriteConfig, rewrite

    theory = _theory(args)
    query = _query(args)
    config = RewriteConfig(
        max_steps=args.max_steps, max_queries=args.max_queries, on_budget="return"
    )
    result = rewrite(query, theory, config)
    status = "saturated" if result.saturated else "budget-exhausted (incomplete!)"
    print(f"# {status}: {len(result.ucq)} disjuncts, max width "
          f"{result.max_width}, k_psi <= {result.depth_bound}")
    for disjunct in result.ucq:
        print(disjunct)
    return 0 if result.saturated else 2


def _cmd_classify(args) -> int:
    from .classes import classify

    profile = classify(_theory(args))
    for name, verdict in sorted(profile.items()):
        print(f"{name}: {'yes' if verdict else 'no'}")
    return 0


def _cmd_countermodel(args) -> int:
    from .core import PipelineConfig, build_finite_counter_model

    theory = _theory(args)
    database = _database(args)
    query = _query(args)
    config = PipelineConfig()
    if args.depths:
        config = PipelineConfig(
            chase_depths=tuple(int(d) for d in args.depths.split(","))
        )
    result = build_finite_counter_model(theory, database, query, config)
    if result.query_certain:
        print("# the query is certain: no counter-model exists")
        return 3
    print(f"# verified finite counter-model: {result.model_size} elements "
          f"(kappa={result.kappa}, eta={result.eta}, depth={result.depth})")
    for fact in result.model.sorted_facts():
        print(fact)
    return 0


def _cmd_skeleton(args) -> int:
    from .skeleton import lemma3_report, skeleton

    theory = _theory(args)
    database = _database(args)
    result = skeleton(database, theory, max_depth=args.depth)
    report = lemma3_report(result)
    print(f"# skeleton: {len(result.structure)} atoms over "
          f"{result.structure.domain_size} elements; "
          f"flesh: {len(result.flesh)} atoms")
    print(f"# Lemma 3: forest={report.forest} acyclic={report.acyclic} "
          f"in-degree<=1={report.in_degree_at_most_one} "
          f"degree {report.degree_observed}/{report.degree_bound} "
          f"vtdag={report.vtdag}")
    for fact in result.structure.sorted_facts():
        print(fact)
    return 0 if report.all_hold else 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Datalog∃ laboratory for 'On the BDD/FC Conjecture'.",
    )
    parser.add_argument(
        "-e", "--inline", action="store_true",
        help="treat THEORY/DATABASE arguments as inline text, not files",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chase_cmd = commands.add_parser("chase", help="run the chase")
    chase_cmd.add_argument("theory")
    chase_cmd.add_argument("database")
    chase_cmd.add_argument("--depth", type=int, default=8)
    chase_cmd.add_argument("--explain", metavar="PRED",
                           help="print a derivation tree for a PRED-fact")
    chase_cmd.set_defaults(handler=_cmd_chase)

    certain_cmd = commands.add_parser("certain", help="certain answers")
    certain_cmd.add_argument("theory")
    certain_cmd.add_argument("database")
    certain_cmd.add_argument("query")
    certain_cmd.add_argument("--free", help="comma-separated free variables")
    certain_cmd.add_argument("--depth", type=int, default=12)
    certain_cmd.set_defaults(handler=_cmd_certain)

    rewrite_cmd = commands.add_parser("rewrite", help="UCQ rewriting (BDD)")
    rewrite_cmd.add_argument("theory")
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--free", help="comma-separated free variables")
    rewrite_cmd.add_argument("--max-steps", type=int, default=20_000)
    rewrite_cmd.add_argument("--max-queries", type=int, default=2_000)
    rewrite_cmd.set_defaults(handler=_cmd_rewrite)

    classify_cmd = commands.add_parser("classify", help="syntactic classes")
    classify_cmd.add_argument("theory")
    classify_cmd.set_defaults(handler=_cmd_classify)

    counter_cmd = commands.add_parser(
        "countermodel", help="finite counter-model (Theorem 2/3)"
    )
    counter_cmd.add_argument("theory")
    counter_cmd.add_argument("database")
    counter_cmd.add_argument("query")
    counter_cmd.add_argument("--free", help="comma-separated free variables")
    counter_cmd.add_argument("--depths", help="comma-separated chase depths")
    counter_cmd.set_defaults(handler=_cmd_countermodel)

    skeleton_cmd = commands.add_parser("skeleton", help="extract S(D,T)")
    skeleton_cmd.add_argument("theory")
    skeleton_cmd.add_argument("database")
    skeleton_cmd.add_argument("--depth", type=int, default=8)
    skeleton_cmd.set_defaults(handler=_cmd_skeleton)

    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
