"""Positive n-types, the ``≡_n`` partition, and quotient structures.

This package implements Sections 2.2–2.3 of the paper: Definition 3
(positive n-types), Definition 4 (``≡_n``), Definition 5 (``M_n(C)``),
Lemma 1, and the (♠1) induced projections.
"""

from .bruteforce import (
    brute_force_equivalent,
    brute_force_subsumed,
    brute_force_type,
    clear_type_query_cache,
    enumerate_type_queries,
)
from .partition import TypePartition
from .ptype import (
    boolean_type_queries,
    equivalent,
    less_equal,
    ptp_as_query_set,
    ptp_contains,
    type_queries,
    type_subsumed,
    types_equal,
)
from .quotient import (
    Quotient,
    induced_projection,
    is_homomorphic_image,
    projections_compatible,
    quotient,
)

__all__ = [
    "Quotient",
    "TypePartition",
    "boolean_type_queries",
    "brute_force_equivalent",
    "brute_force_subsumed",
    "brute_force_type",
    "clear_type_query_cache",
    "enumerate_type_queries",
    "equivalent",
    "induced_projection",
    "is_homomorphic_image",
    "less_equal",
    "projections_compatible",
    "ptp_as_query_set",
    "ptp_contains",
    "quotient",
    "type_queries",
    "type_subsumed",
    "types_equal",
]
