"""Brute-force positive-type comparison: the reference implementation.

:mod:`repro.ptypes.ptype` decides ``ptp_n`` inclusion through canonical
subqueries of connected subsets — fast, but its correctness rests on a
reduction argument.  This module provides the *definitionally obvious*
(and exponentially slow) alternative: enumerate every conjunctive query
``Ψ(x̄, y)`` with at most ``n`` variables and at most ``k`` atoms over
the structure's signature, and compare memberships directly.

The two implementations are cross-validated in the property suite
(``tests/property/test_bruteforce_validation.py``); the enumerator also
powers small didactic inspections (listing an element's type).

Only practical for tiny parameters: the query count is roughly
``(#atom-shapes)^k`` with ``#atom-shapes = Σ_R (n+#constants)^arity``.
"""

from __future__ import annotations

import itertools
import threading
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..lf.atoms import Atom
from ..lf.canonical import FREE_VARIABLE
from ..lf.homomorphism import satisfies
from ..lf.queries import ConjunctiveQuery
from ..lf.structures import Structure
from ..lf.terms import Constant, Element, Variable


#: Memo for :func:`enumerate_type_queries`: the enumeration is pure in
#: its parameters and exponentially expensive, and the brute-force
#: cross-validators call it once per element pair with identical
#: parameters.  Keyed on the full (normalised) parameter tuple; bounded
#: — cleared wholesale when full — because cached tuples hold entire
#: query lists.
_TYPE_QUERY_CACHE: "dict[tuple, Tuple[ConjunctiveQuery, ...]]" = {}
_TYPE_QUERY_CACHE_MAX = 64
#: Miss-path guard for multi-threaded callers (the serve worker pool):
#: hits stay lock-free; the size-check + insert is atomic.  A duplicate
#: enumeration outside the lock is idempotent, never corrupting.
_TYPE_QUERY_CACHE_LOCK = threading.Lock()


def clear_type_query_cache() -> None:
    """Drop the :func:`enumerate_type_queries` memo (for tests)."""
    with _TYPE_QUERY_CACHE_LOCK:
        _TYPE_QUERY_CACHE.clear()


def enumerate_type_queries(
    signature_relations: "dict[str, int]",
    constants: Iterable[Constant],
    n: int,
    max_atoms: int,
    include_equalities: bool = True,
) -> Iterator[ConjunctiveQuery]:
    """Every CQ ``Ψ(x̄, y)`` with ``|x̄| < n`` and ≤ *max_atoms* atoms.

    Variables are the free ``y`` plus ``x0 … x_{n-2}``; deduplicated up
    to canonical renaming.  Queries whose free variable does not occur
    are skipped (they say nothing about the element).  With
    *include_equalities*, the Remark-1 queries ``y = c`` are included.

    Results are memoised per parameter set (the enumeration is pure and
    deterministic); callers get a generator over the cached tuple.
    """
    if n < 1:
        return
    constant_list = sorted(constants, key=str)
    key = (
        tuple(sorted(signature_relations.items())),
        tuple(constant_list),
        n,
        max_atoms,
        include_equalities,
    )
    cached = _TYPE_QUERY_CACHE.get(key)
    if cached is None:
        cached = tuple(
            _enumerate_type_queries(
                signature_relations, constant_list, n, max_atoms, include_equalities
            )
        )
        with _TYPE_QUERY_CACHE_LOCK:
            if len(_TYPE_QUERY_CACHE) >= _TYPE_QUERY_CACHE_MAX:
                _TYPE_QUERY_CACHE.clear()
            _TYPE_QUERY_CACHE[key] = cached
    yield from cached


def _enumerate_type_queries(
    signature_relations: "dict[str, int]",
    constants: Iterable[Constant],
    n: int,
    max_atoms: int,
    include_equalities: bool,
) -> Iterator[ConjunctiveQuery]:
    variables: List[Variable] = [FREE_VARIABLE] + [
        Variable(f"x{i}") for i in range(n - 1)
    ]
    terms: List = list(variables) + sorted(constants, key=str)

    shapes: List[Atom] = []
    for pred, arity in sorted(signature_relations.items()):
        for combo in itertools.product(terms, repeat=arity):
            if any(isinstance(t, Variable) for t in combo):
                shapes.append(Atom(pred, combo))

    seen: Set[ConjunctiveQuery] = set()
    if include_equalities:
        for constant in sorted(constants, key=str):
            query = ConjunctiveQuery(
                [Atom("=", (FREE_VARIABLE, constant))], (FREE_VARIABLE,)
            )
            marker = query.canonical()
            if marker not in seen:
                seen.add(marker)
                yield query

    for count in range(1, max_atoms + 1):
        for combo in itertools.combinations(shapes, count):
            used = {v for atom in combo for v in atom.variable_set()}
            if FREE_VARIABLE not in used:
                continue
            query = ConjunctiveQuery(combo, (FREE_VARIABLE,))
            marker = query.canonical()
            if marker in seen:
                continue
            seen.add(marker)
            yield query


def brute_force_type(
    structure: Structure,
    element: Element,
    n: int,
    max_atoms: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> FrozenSet[ConjunctiveQuery]:
    """The atom-bounded slice of ``ptp_n``: every enumerated query true
    at *element* (as canonical forms)."""
    relations = structure.signature.relations
    if relation_names is not None:
        wanted = set(relation_names)
        relations = {p: a for p, a in relations.items() if p in wanted}
    holds = set()
    for query in enumerate_type_queries(
        relations, structure.constant_elements(), n, max_atoms
    ):
        if satisfies(structure, query, {FREE_VARIABLE: element}):
            holds.add(query.canonical())
    return frozenset(holds)


def brute_force_subsumed(
    source: Structure,
    source_element: Element,
    target: Structure,
    target_element: Element,
    n: int,
    max_atoms: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> bool:
    """Reference for :func:`repro.ptypes.type_subsumed`, restricted to
    queries with at most *max_atoms* atoms: every enumerated query true
    at the source element must hold at the target element.

    Note the one-sided relationship to the real (unbounded) inclusion:
    if the real inclusion holds, so does every bounded one; a bounded
    inclusion may be optimistic.  The cross-validation therefore checks
    *(real says ⊆) ⟹ (bounded says ⊆)* exactly, and treats a bounded-⊆
    with real-⊄ as expected slack when ``max_atoms`` is small.
    """
    relations = source.signature.relations
    if relation_names is not None:
        wanted = set(relation_names)
        relations = {p: a for p, a in relations.items() if p in wanted}
    constants = source.constant_elements() | target.constant_elements()
    for query in enumerate_type_queries(relations, constants, n, max_atoms):
        if satisfies(source, query, {FREE_VARIABLE: source_element}):
            if not satisfies(target, query, {FREE_VARIABLE: target_element}):
                return False
    return True


def brute_force_equivalent(
    structure: Structure,
    left: Element,
    right: Element,
    n: int,
    max_atoms: int,
) -> bool:
    """Reference for :func:`repro.ptypes.equivalent` (atom-bounded)."""
    return brute_force_subsumed(
        structure, left, structure, right, n, max_atoms
    ) and brute_force_subsumed(structure, right, structure, left, n, max_atoms)
