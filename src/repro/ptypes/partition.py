"""Partitioning a structure's domain by ``≡_n`` (Definition 4).

The quotient structures ``M_n(C)`` of Definition 5 live on exactly this
partition.  Computing it naively is quadratic in the domain with an
expensive test per pair; :class:`TypePartition` makes it practical:

* every element's canonical type generators are computed once and
  cached;
* elements are pre-grouped by a cheap invariant (their generator
  *set*, which over-refines nothing: equal types need not mean equal
  generator sets, so groups are then merged by the real ``≡_n`` test);
* constants are singletons by Remark 1 and skip all tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..lf.homomorphism import satisfies
from ..lf.queries import ConjunctiveQuery
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from .ptype import type_queries


class TypePartition:
    """The ``≡_n`` partition of a structure's domain.

    Parameters
    ----------
    structure:
        The structure whose domain is partitioned.
    n:
        The type size (Definition 3's bound: at most ``n`` variables).
    relation_names:
        Optional sub-signature over which types are computed — when
        partitioning a colored structure ``C̄`` the types are taken over
        the *full* colored signature (that is what ``M_n^Σ̄(C̄)`` uses),
        so this is usually left ``None``.
    elements:
        Restrict the partition to these elements (types are still
        computed within the whole structure).  The Theorem-2 pipeline
        uses this to quotient only the *interior* of a depth-truncated
        skeleton, whose types provably agree with the infinite chase.
    """

    def __init__(
        self,
        structure: Structure,
        n: int,
        relation_names: "Optional[Iterable[str]]" = None,
        elements: "Optional[Iterable[Element]]" = None,
    ):
        self.structure = structure
        self.n = n
        self.relation_names = (
            frozenset(relation_names) if relation_names is not None else None
        )
        self.elements = (
            frozenset(elements) if elements is not None else structure.domain()
        )
        self._queries: Dict[Element, List[ConjunctiveQuery]] = {}
        self._classes: "Optional[List[FrozenSet[Element]]]" = None
        self._class_of: Dict[Element, int] = {}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def queries_of(self, element: Element) -> List[ConjunctiveQuery]:
        """Cached canonical type generators of *element*."""
        cached = self._queries.get(element)
        if cached is None:
            cached = type_queries(
                self.structure, element, self.n, self.relation_names
            )
            self._queries[element] = cached
        return cached

    def _subsumed(self, left: Element, right: Element) -> bool:
        """``ptp_n(left) ⊆ ptp_n(right)`` using cached generators."""
        for query in self.queries_of(left):
            if not satisfies(self.structure, query, {query.free[0]: right}):
                return False
        return True

    def equivalent(self, left: Element, right: Element) -> bool:
        """Definition 4's ``≡_n`` (cached, constant-aware)."""
        if left == right:
            return True
        if isinstance(left, Constant) or isinstance(right, Constant):
            return False
        return self._subsumed(left, right) and self._subsumed(right, left)

    # ------------------------------------------------------------------
    # The partition
    # ------------------------------------------------------------------
    def classes(self) -> List[FrozenSet[Element]]:
        """The equivalence classes, deterministically ordered."""
        if self._classes is not None:
            return self._classes

        classes: List[FrozenSet[Element]] = []
        # Constants are singletons (Remark 1) — no tests needed.
        for constant in sorted(self.structure.constant_elements(), key=str):
            if constant in self.elements:
                classes.append(frozenset([constant]))

        # Pre-group by the canonical generator set: a sound
        # under-approximation of ≡_n (equal sets ⟹ equal types) —
        # those groups merge instantly; the remaining merges use the
        # pairwise test.
        buckets: Dict[FrozenSet, List[Element]] = {}
        chosen = [
            e
            for e in sorted(self.structure.nonconstant_elements(), key=str)
            if e in self.elements
        ]
        for element in chosen:
            marker = frozenset(q.canonical() for q in self.queries_of(element))
            buckets.setdefault(marker, []).append(element)

        representatives: List[Tuple[Element, List[Element]]] = []
        for marker in sorted(buckets, key=lambda m: sorted(str(q) for q in m)):
            members = buckets[marker]
            # equal generator sets ⟹ equivalent: one group
            placed = False
            for rep, group in representatives:
                if self.equivalent(rep, members[0]):
                    group.extend(members)
                    placed = True
                    break
            if not placed:
                representatives.append((members[0], list(members)))

        for _, group in representatives:
            classes.append(frozenset(group))
        self._classes = classes
        self._class_of = {}
        for index, group in enumerate(classes):
            for member in group:
                self._class_of[member] = index
        return classes

    def class_index(self, element: Element) -> int:
        """Index of the class containing *element*."""
        self.classes()
        return self._class_of[element]

    def same_class(self, left: Element, right: Element) -> bool:
        """Whether the two elements are ``≡_n`` (via the partition)."""
        return self.class_index(left) == self.class_index(right)

    def __len__(self) -> int:
        return len(self.classes())
