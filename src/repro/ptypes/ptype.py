"""Positive n-types (Definition 3) and their comparison.

``ptp_n(C, e, Σ)`` is the set of all conjunctive queries ``Ψ(x̄, y)``
over Σ with ``|x̄| < n`` (so at most ``n`` variables counting ``y``)
such that ``C ⊨ Ψ(x̄, e)``.  The set is infinite, but it is *generated*
under query homomorphism by finitely many **canonical subqueries**, and
the generators can be restricted to *connected* subsets.

Soundness/completeness of the reduction
----------------------------------------
Write a query Ψ(x̄, y) as the conjunction of its *y-component* Ψ_y (the
atoms reachable from y through shared **variables** — constants do not
connect, they are fixed pins) and its remaining components Ψ_1, …, Ψ_k
(each a Boolean query).

* Each canonical query of a connected subset ``V ∋ e`` (with
  ``|V| ≤ n``; all constants and their atoms included, constant-only
  atoms dropped) is true at ``e`` by the identity valuation, and its
  image set is variable-connected.
* Conversely, if ``C ⊨ Ψ(x̄, e)`` via σ, then ``σ(vars(Ψ_y))`` is a
  connected subset of size ≤ n containing e whose canonical query
  entails Ψ_y (compose the satisfying valuation with σ), and each Ψ_i
  is entailed by the canonical Boolean query of ``σ(vars(Ψ_i))``.

Hence:

* **within one structure** ``ptp_n(C, d) ⊆ ptp_n(C, e)`` iff every
  connected canonical query of ``d`` is satisfied at ``e`` — the
  Boolean components are satisfied in C by σ itself, so they never
  discriminate (:func:`less_equal`, :func:`equivalent`);
* **across two structures** (the conservativity condition (♠2),
  comparing C with ``M_n(C̄)``) the Boolean components *do* matter —
  they are exactly the (♠3) content of Remark 3 — so
  :func:`type_subsumed` combines the anchored connected generators with
  the connected Boolean generators of at most ``n - 1`` variables.

Equality atoms ``y = c`` are generated when the distinguished element
is a constant, realising Remark 1 (constants are never merged with
anything else).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..lf.canonical import (
    FREE_VARIABLE,
    canonical_query,
    connected_subsets_containing,
)
from ..lf.homomorphism import satisfies
from ..lf.queries import ConjunctiveQuery
from ..lf.structures import Structure
from ..lf.terms import Constant, Element


def type_queries(
    structure: Structure,
    element: Element,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> List[ConjunctiveQuery]:
    """The connected canonical generators of ``ptp_n(C, element, Σ)``.

    De-duplicated up to variable renaming.  ``relation_names`` restricts
    to a sub-signature (the Σ of a colored signature Σ̄).  Constant-only
    atoms are skipped — the constant part of a structure is unchanged by
    the quotient operations this machinery serves.
    """
    if n < 1:
        raise ValueError("positive n-types need n >= 1")
    names = frozenset(relation_names) if relation_names is not None else None
    constants = structure.constant_elements()
    queries: List[ConjunctiveQuery] = []
    seen = set()
    for subset in connected_subsets_containing(structure, element, n, names):
        chosen = set(subset) | set(constants)
        query = canonical_query(
            structure,
            chosen,
            element,
            relation_names=names,
            skip_constant_only=True,
        )
        marker = query.canonical()
        if marker not in seen:
            seen.add(marker)
            queries.append(query)
    return queries


def boolean_type_queries(
    structure: Structure,
    max_variables: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> List[ConjunctiveQuery]:
    """The connected Boolean sentences of ≤ ``max_variables`` variables
    true in *structure* (canonical generators, deduplicated).

    These are the Ψ_i components of the reduction above, and also the
    exact content of condition (♠3) in Remark 3.
    """
    if max_variables < 1:
        return []
    names = frozenset(relation_names) if relation_names is not None else None
    constants = structure.constant_elements()
    queries: List[ConjunctiveQuery] = []
    seen = set()
    for anchor in sorted(structure.domain(), key=str):
        for subset in connected_subsets_containing(
            structure, anchor, max_variables, names
        ):
            chosen = set(subset) | set(constants)
            query = canonical_query(
                structure,
                chosen,
                anchor,
                relation_names=names,
                skip_constant_only=True,
            ).boolean()
            marker = query.canonical()
            if marker not in seen:
                seen.add(marker)
                queries.append(query)
    return queries


def ptp_contains(
    structure: Structure,
    element: Element,
    query: ConjunctiveQuery,
) -> bool:
    """Whether ``query ∈ ptp(structure, element)``: satisfaction at the
    element.  The query must have exactly one free variable (the ``y``
    of Definition 3)."""
    if len(query.free) != 1:
        raise ValueError("a type query has exactly one free variable")
    return satisfies(structure, query, {query.free[0]: element})


def type_subsumed(
    source: Structure,
    source_element: Element,
    target: Structure,
    target_element: Element,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
    source_queries: "Optional[List[ConjunctiveQuery]]" = None,
    check_boolean: bool = True,
) -> bool:
    """``ptp_n(source, source_element) ⊆ ptp_n(target, target_element)``.

    The anchored connected generators of the source (optionally supplied
    pre-computed via *source_queries*) must hold at the target element;
    when *source* and *target* are different structures, the connected
    Boolean sentences of the source with at most ``n - 1`` variables
    must also hold in the target (set ``check_boolean=False`` to skip,
    e.g. when the caller checks them once for many elements).
    """
    queries = (
        source_queries
        if source_queries is not None
        else type_queries(source, source_element, n, relation_names)
    )
    for query in queries:
        if not satisfies(target, query, {query.free[0]: target_element}):
            return False
    if check_boolean and source is not target and not source.same_facts(target):
        for sentence in boolean_type_queries(source, n - 1, relation_names):
            if not satisfies(target, sentence):
                return False
    return True


def types_equal(
    source: Structure,
    source_element: Element,
    target: Structure,
    target_element: Element,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> bool:
    """``ptp_n(source, e) = ptp_n(target, e')`` — both inclusions."""
    return type_subsumed(
        source, source_element, target, target_element, n, relation_names
    ) and type_subsumed(
        target, target_element, source, source_element, n, relation_names
    )


def less_equal(
    structure: Structure,
    left: Element,
    right: Element,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> bool:
    """The preorder ``≼_n`` within one structure:
    ``ptp_n(C, left) ⊆ ptp_n(C, right)``."""
    return type_subsumed(
        structure, left, structure, right, n, relation_names, check_boolean=False
    )


def equivalent(
    structure: Structure,
    left: Element,
    right: Element,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> bool:
    """Definition 4's ``≡_n``: equal positive n-types.

    Constants short-circuit: by Remark 1 a constant is ``≡_n``-related
    only to itself (the query ``y = c`` separates it from everything).
    """
    if left == right:
        return True
    if isinstance(left, Constant) or isinstance(right, Constant):
        return False
    return less_equal(structure, left, right, n, relation_names) and less_equal(
        structure, right, left, n, relation_names
    )


def ptp_as_query_set(
    structure: Structure,
    element: Element,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> FrozenSet[ConjunctiveQuery]:
    """The canonical generators as a frozen set of canonical forms.

    Two elements with equal generator sets are ``≡_n`` (each generator
    of one is a true-at-the-other generator of the other); the converse
    may fail, so use :func:`equivalent` for the real comparison.  This
    set is still handy as a cheap pre-partitioning key.
    """
    return frozenset(
        q.canonical() for q in type_queries(structure, element, n, relation_names)
    )
