"""Quotient structures ``M_n(C)`` (Definition 5) and the projections ``q_n``.

``M_n(C)`` has the ``≡_n``-classes as elements, with the minimal
relations making the quotient map a homomorphism: a tuple of classes is
related iff some tuple of representatives is.  Constants are singleton
classes (Remark 1) and keep their identity; every other class is
materialised as a fresh :class:`~repro.lf.terms.Null` so quotients can
be chased, colored, and quotiented again.

Lemma 1's two claims are executable here:
:func:`projections_compatible` checks that ``q_n``-equal elements are
``q_{n-1}``-equal, and :func:`induced_projection` builds the map
``M_{n+1}(C) → M_n(C)`` of (♠1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..lf.atoms import Atom
from ..lf.structures import Structure
from ..lf.terms import Constant, Element, Null
from .partition import TypePartition


@dataclass
class Quotient:
    """The result of a quotient operation.

    Attributes
    ----------
    structure:
        ``M_n(C)`` itself.
    projection:
        The map ``q_n : Dom(C) → Dom(M_n(C))``.
    classes:
        The underlying ``≡_n``-classes, aligned with class elements.
    n:
        The type size used.
    source:
        The structure that was quotiented.
    """

    structure: Structure
    projection: Dict[Element, Element]
    classes: List[FrozenSet[Element]]
    n: int
    source: Structure

    def project(self, element: Element) -> Element:
        """``q_n(element)``."""
        return self.projection[element]

    def project_fact(self, fact: Atom) -> Atom:
        """The image of a fact under ``q_n``."""
        return fact.substitute(self.projection)  # type: ignore[arg-type]

    def fiber(self, image: Element) -> FrozenSet[Element]:
        """``q_n^{-1}(image)``: the class projected onto *image*."""
        members = [e for e, v in self.projection.items() if v == image]
        return frozenset(members)

    @property
    def size(self) -> int:
        """Number of elements of the quotient."""
        return self.structure.domain_size


def quotient(
    structure: Structure,
    n: int,
    relation_names: "Optional[Iterable[str]]" = None,
    partition: "Optional[TypePartition]" = None,
    elements: "Optional[Iterable[Element]]" = None,
) -> Quotient:
    """Build ``M_n(C)`` per Definition 5.

    Parameters
    ----------
    structure:
        The structure C (usually a colored skeleton ``S̄``).
    n:
        The type size.
    relation_names:
        Sub-signature for the types; ``None`` uses the full signature of
        C — this is the paper's ``M_n^{Σ̄}(C̄)`` when C is colored.
    partition:
        A pre-computed partition to reuse (must match the arguments).
    elements:
        Quotient only this subset of the domain (types still computed in
        the whole structure); facts touching excluded elements are
        dropped.  Used by the Theorem-2 pipeline to quotient the
        interior of a truncated skeleton.
    """
    parts = partition or TypePartition(structure, n, relation_names, elements)
    classes = parts.classes()

    projection: Dict[Element, Element] = {}
    next_null = 0
    for group in classes:
        representative = sorted(group, key=str)[0]
        if isinstance(representative, Constant):
            image: Element = representative
        else:
            image = Null(next_null, rule_index=-1, level=-1)
            next_null += 1
        for member in group:
            projection[member] = image

    projected = Structure(signature=structure.signature)
    for element in structure.domain():
        if element in projection:
            projected.add_element(projection[element])
    for fact in structure.facts():
        if all(arg in projection for arg in fact.args):
            projected.add_fact(fact.substitute(projection))  # type: ignore[arg-type]

    return Quotient(
        structure=projected,
        projection=projection,
        classes=classes,
        n=n,
        source=structure,
    )


def projections_compatible(finer: Quotient, coarser: Quotient) -> bool:
    """Lemma 1, first claim: ``q_n(d) = q_n(e) ⟹ q_{n-1}(d) = q_{n-1}(e)``.

    *finer* is the quotient at the larger n, *coarser* at the smaller.
    """
    if finer.source is not coarser.source and not finer.source.same_facts(
        coarser.source
    ):
        raise ValueError("quotients must be of the same structure")
    by_fine_image: Dict[Element, Element] = {}
    for element, fine_image in finer.projection.items():
        coarse_image = coarser.projection[element]
        known = by_fine_image.get(fine_image)
        if known is None:
            by_fine_image[fine_image] = coarse_image
        elif known != coarse_image:
            return False
    return True


def induced_projection(finer: Quotient, coarser: Quotient) -> Dict[Element, Element]:
    """The map ``M_{n+1}(C) → M_n(C)`` of (♠1).

    Well defined by Lemma 1; raises if the quotients are incompatible
    (which would falsify the lemma).
    """
    if not projections_compatible(finer, coarser):
        raise ValueError("projections are not compatible (Lemma 1 violated?)")
    mapping: Dict[Element, Element] = {}
    for element, fine_image in finer.projection.items():
        mapping[fine_image] = coarser.projection[element]
    return mapping


def is_homomorphic_image(quotiented: Quotient) -> bool:
    """Sanity check: ``q_n`` is a homomorphism and the relations of
    ``M_n(C)`` are minimal (every quotient fact is the image of a
    source fact) — the two halves of Definition 5."""
    source_images = {
        fact.substitute(quotiented.projection)  # type: ignore[arg-type]
        for fact in quotiented.source.facts()
        if all(arg in quotiented.projection for arg in fact.args)
    }
    return source_images == set(quotiented.structure.facts())
