"""Test infrastructure shipped with the library.

:mod:`repro.testing.faults` — the deterministic fault injector that
trips any runtime guard (deadline / cancellation / memory) at the K-th
checkpoint of a named engine, driving the partial-result test battery
in ``tests/runtime/``.
"""

from .faults import ENGINE_NAMES, FaultInjector, inject_fault

__all__ = ["ENGINE_NAMES", "FaultInjector", "inject_fault"]
