"""Test infrastructure shipped with the library.

:mod:`repro.testing.faults` — the deterministic fault injector that
trips any runtime guard (deadline / cancellation / memory) at the K-th
checkpoint of a named engine, driving the partial-result test battery
in ``tests/runtime/`` — plus the serve-side worker faults
(:func:`inject_serve_fault`: slow workers, stuck jobs) the chaos
battery in ``tests/serve/test_chaos.py`` drives overload scenarios
with.
"""

from .faults import (
    ENGINE_NAMES,
    SERVE_FAULT_MODES,
    FaultInjector,
    ServeFault,
    inject_fault,
    inject_serve_fault,
)

__all__ = [
    "ENGINE_NAMES",
    "FaultInjector",
    "SERVE_FAULT_MODES",
    "ServeFault",
    "inject_fault",
    "inject_serve_fault",
]
