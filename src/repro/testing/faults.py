"""Deterministic fault injection for the runtime-guard layer.

Wall-clock, memory, and signal faults are miserable to reproduce in
tests: a deadline test that actually sleeps is slow *and* flaky, an RSS
test depends on the allocator, a SIGINT test on scheduler timing.  The
injector sidesteps all of that by tripping the guard *logically*: it
installs a process-wide hook (:func:`repro.runtime.set_fault_hook`)
that every active :class:`~repro.runtime.RuntimeGuard` consults at
every checkpoint, and returns the configured
:class:`~repro.runtime.StopReason` at exactly the K-th checkpoint of
the named engine.  From the engine's point of view the stop is
indistinguishable from the real thing, so one parametrised battery
covers every ``(engine, reason, policy)`` cell of the contract:
partial result flagged incomplete under ``OnBudget.RETURN``, typed
exception carrying ``.stats`` under ``OnBudget.RAISE``.

While a hook is installed, :meth:`RuntimeGuard.from_config` always
builds an *active* guard — faults reach engines whose configs carry no
wall/memory budgets at all (``guards_disabled=True`` still wins: the
ablation switch must measure the true unguarded path).

>>> from repro.testing import inject_fault
>>> from repro.chase import chase
>>> with inject_fault("chase", "deadline") as injector:
...     result = chase(database, theory)          # doctest: +SKIP
>>> result.stopped_reason                          # doctest: +SKIP
<StopReason.DEADLINE: 'deadline'>
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..runtime.guard import (
    GUARD_REASONS,
    StopReason,
    fault_hook_installed,
    set_fault_hook,
)

#: The guard names engines register under (``RuntimeGuard.from_config``'s
#: ``engine`` argument) — the valid targets of :func:`inject_fault`.
ENGINE_NAMES = ("chase", "rewrite", "fc-search", "pipeline")


class FaultInjector:
    """The hook object: counts checkpoints, trips at the K-th.

    Attributes
    ----------
    engine:
        Which engine's checkpoints count (others pass through).
    reason:
        The :class:`~repro.runtime.StopReason` to inject — one of the
        guard reasons (``deadline``/``cancelled``/``memory``).
    at_checkpoint:
        1-based checkpoint index at which to trip; every checkpoint
        from there on returns the reason (guards are sticky anyway).
    calls:
        Checkpoints observed for *engine* so far (diagnostic).
    tripped:
        Whether the fault has fired at least once.
    """

    __slots__ = ("engine", "reason", "at_checkpoint", "calls", "tripped")

    def __init__(self, engine: str, reason: StopReason, at_checkpoint: int = 1):
        self.engine = engine
        self.reason = reason
        self.at_checkpoint = at_checkpoint
        self.calls = 0
        self.tripped = False

    def __call__(self, engine_name: str) -> "Optional[StopReason]":
        if engine_name != self.engine:
            return None
        self.calls += 1
        if self.calls >= self.at_checkpoint:
            self.tripped = True
            return self.reason
        return None

    def __repr__(self) -> str:
        state = "tripped" if self.tripped else f"{self.calls} calls"
        return (
            f"FaultInjector({self.engine!r}, {self.reason.value!r}, "
            f"at={self.at_checkpoint}, {state})"
        )


@contextmanager
def inject_fault(
    engine: str,
    reason: "StopReason | str",
    at_checkpoint: int = 1,
) -> "Iterator[FaultInjector]":
    """Trip *engine*'s guard with *reason* at its K-th checkpoint.

    The hook is installed for the dynamic extent of the ``with`` block
    and unconditionally removed on exit.  Only one injector can be
    active at a time (the hook is process-wide); nesting raises.

    Parameters
    ----------
    engine:
        One of :data:`ENGINE_NAMES`.
    reason:
        A guard :class:`~repro.runtime.StopReason` (or its string
        value): ``deadline``, ``cancelled``, or ``memory`` —
        ``fixpoint`` and ``budget`` are decided by the engines
        themselves and cannot be injected.
    at_checkpoint:
        1-based checkpoint index to trip at (default: the first).
    """
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    stop = StopReason(reason)
    if stop not in GUARD_REASONS:
        raise ValueError(
            f"only guard reasons can be injected "
            f"({', '.join(r.value for r in GUARD_REASONS)}), got {stop.value!r}"
        )
    if at_checkpoint < 1:
        raise ValueError(f"at_checkpoint must be >= 1, got {at_checkpoint}")
    if fault_hook_installed():
        raise RuntimeError("a fault injector is already active (no nesting)")
    injector = FaultInjector(engine, stop, at_checkpoint)
    set_fault_hook(injector)
    try:
        yield injector
    finally:
        set_fault_hook(None)
