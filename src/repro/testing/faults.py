"""Deterministic fault injection for the runtime-guard layer.

Wall-clock, memory, and signal faults are miserable to reproduce in
tests: a deadline test that actually sleeps is slow *and* flaky, an RSS
test depends on the allocator, a SIGINT test on scheduler timing.  The
injector sidesteps all of that by tripping the guard *logically*: it
installs a process-wide hook (:func:`repro.runtime.set_fault_hook`)
that every active :class:`~repro.runtime.RuntimeGuard` consults at
every checkpoint, and returns the configured
:class:`~repro.runtime.StopReason` at exactly the K-th checkpoint of
the named engine.  From the engine's point of view the stop is
indistinguishable from the real thing, so one parametrised battery
covers every ``(engine, reason, policy)`` cell of the contract:
partial result flagged incomplete under ``OnBudget.RETURN``, typed
exception carrying ``.stats`` under ``OnBudget.RAISE``.

While a hook is installed, :meth:`RuntimeGuard.from_config` always
builds an *active* guard — faults reach engines whose configs carry no
wall/memory budgets at all (``guards_disabled=True`` still wins: the
ablation switch must measure the true unguarded path).

>>> from repro.testing import inject_fault
>>> from repro.chase import chase
>>> with inject_fault("chase", "deadline") as injector:
...     result = chase(database, theory)          # doctest: +SKIP
>>> result.stopped_reason                          # doctest: +SKIP
<StopReason.DEADLINE: 'deadline'>
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from ..runtime.guard import (
    GUARD_REASONS,
    StopReason,
    fault_hook_installed,
    set_fault_hook,
)

#: The guard names engines register under (``RuntimeGuard.from_config``'s
#: ``engine`` argument) — the valid targets of :func:`inject_fault`.
ENGINE_NAMES = ("chase", "rewrite", "fc-search", "pipeline")


class FaultInjector:
    """The hook object: counts checkpoints, trips at the K-th.

    Attributes
    ----------
    engine:
        Which engine's checkpoints count (others pass through).
    reason:
        The :class:`~repro.runtime.StopReason` to inject — one of the
        guard reasons (``deadline``/``cancelled``/``memory``).
    at_checkpoint:
        1-based checkpoint index at which to trip; every checkpoint
        from there on returns the reason (guards are sticky anyway).
    calls:
        Checkpoints observed for *engine* so far (diagnostic).
    tripped:
        Whether the fault has fired at least once.
    """

    __slots__ = ("engine", "reason", "at_checkpoint", "calls", "tripped")

    def __init__(self, engine: str, reason: StopReason, at_checkpoint: int = 1):
        self.engine = engine
        self.reason = reason
        self.at_checkpoint = at_checkpoint
        self.calls = 0
        self.tripped = False

    def __call__(self, engine_name: str) -> "Optional[StopReason]":
        if engine_name != self.engine:
            return None
        self.calls += 1
        if self.calls >= self.at_checkpoint:
            self.tripped = True
            return self.reason
        return None

    def __repr__(self) -> str:
        state = "tripped" if self.tripped else f"{self.calls} calls"
        return (
            f"FaultInjector({self.engine!r}, {self.reason.value!r}, "
            f"at={self.at_checkpoint}, {state})"
        )


@contextmanager
def inject_fault(
    engine: str,
    reason: "StopReason | str",
    at_checkpoint: int = 1,
) -> "Iterator[FaultInjector]":
    """Trip *engine*'s guard with *reason* at its K-th checkpoint.

    The hook is installed for the dynamic extent of the ``with`` block
    and unconditionally removed on exit.  Only one injector can be
    active at a time (the hook is process-wide); nesting raises.

    Parameters
    ----------
    engine:
        One of :data:`ENGINE_NAMES`.
    reason:
        A guard :class:`~repro.runtime.StopReason` (or its string
        value): ``deadline``, ``cancelled``, or ``memory`` —
        ``fixpoint`` and ``budget`` are decided by the engines
        themselves and cannot be injected.
    at_checkpoint:
        1-based checkpoint index to trip at (default: the first).
    """
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    stop = StopReason(reason)
    if stop not in GUARD_REASONS:
        raise ValueError(
            f"only guard reasons can be injected "
            f"({', '.join(r.value for r in GUARD_REASONS)}), got {stop.value!r}"
        )
    if at_checkpoint < 1:
        raise ValueError(f"at_checkpoint must be >= 1, got {at_checkpoint}")
    if fault_hook_installed():
        raise RuntimeError("a fault injector is already active (no nesting)")
    injector = FaultInjector(engine, stop, at_checkpoint)
    set_fault_hook(injector)
    try:
        yield injector
    finally:
        set_fault_hook(None)


# ----------------------------------------------------------------------
# Serve-side worker faults (the chaos battery's levers)
# ----------------------------------------------------------------------

#: Valid :class:`ServeFault` modes.
SERVE_FAULT_MODES = ("slow", "stuck")


class ServeFault:
    """A worker-pool fault: slow down or wedge matching requests.

    Installed as the serve fault hook
    (:func:`repro.serve.set_serve_fault_hook`), so it runs on the pool
    thread at the top of :func:`~repro.serve.execute_request` — after
    dispatch, before any engine work — which is exactly where a
    slow/wedged worker hurts: it occupies a pool slot while the
    admission queues back up behind it.

    Modes
    -----
    ``slow``:
        Sleep ``delay_ms`` before letting the request run — a worker
        that is merely overloaded.
    ``stuck``:
        Block until the request's :class:`~repro.runtime.CancelToken`
        trips (client ``cancel`` op, disconnect, or shutdown drain),
        bounded by ``timeout_s`` as a test-hang safety net — a worker
        wedged on something only cancellation can unwind.

    ``ops`` / ``tenants`` restrict which requests are hit (``None`` =
    all); ``max_hits`` bounds how many requests are hit in total, so a
    battery can wedge exactly K workers and keep the rest honest.
    """

    __slots__ = ("mode", "delay_ms", "ops", "tenants", "max_hits",
                 "timeout_s", "hits")

    def __init__(
        self,
        mode: str,
        delay_ms: float = 50.0,
        ops: "Optional[tuple]" = None,
        tenants: "Optional[tuple]" = None,
        max_hits: "Optional[int]" = None,
        timeout_s: float = 30.0,
    ) -> None:
        if mode not in SERVE_FAULT_MODES:
            raise ValueError(
                f"unknown serve fault mode {mode!r}; expected one of "
                f"{SERVE_FAULT_MODES}"
            )
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        self.mode = mode
        self.delay_ms = delay_ms
        self.ops = None if ops is None else tuple(ops)
        self.tenants = None if tenants is None else tuple(tenants)
        self.max_hits = max_hits
        self.timeout_s = timeout_s
        self.hits = 0

    def __call__(self, request: "Dict[str, Any]", token: Any) -> None:
        if self.ops is not None and request.get("op") not in self.ops:
            return
        if (
            self.tenants is not None
            and request.get("tenant", "default") not in self.tenants
        ):
            return
        if self.max_hits is not None and self.hits >= self.max_hits:
            return
        self.hits += 1
        if self.mode == "slow":
            time.sleep(self.delay_ms / 1000.0)
        else:  # stuck: only cancellation (or the safety net) frees us
            token.wait(self.timeout_s)

    def __repr__(self) -> str:
        return f"ServeFault({self.mode!r}, hits={self.hits})"


@contextmanager
def inject_serve_fault(mode: str, **kwargs: Any) -> "Iterator[ServeFault]":
    """Install a :class:`ServeFault` for the extent of the block.

    The hook is process-wide (one per process, like
    :func:`inject_fault`); nesting raises.  Arguments beyond *mode* are
    forwarded to :class:`ServeFault`.
    """
    from ..serve.jobs import set_serve_fault_hook

    fault = ServeFault(mode, **kwargs)
    previous = set_serve_fault_hook(fault)
    if previous is not None:
        set_serve_fault_hook(previous)
        raise RuntimeError("a serve fault is already active (no nesting)")
    try:
        yield fault
    finally:
        set_serve_fault_hook(None)
