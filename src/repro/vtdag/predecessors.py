"""Predecessor sets ``P(e)`` and their iterates ``P_k(e)``.

Definition 10 of the paper: for ``e ∈ C_con``, ``P(e) = {e}``; for
``e ∈ C_non``,

    P(e) = {e} ∪ { x ∈ C_non : C ⊨ R(x, e) for some binary R ∈ Σ }.

Definition 13 iterates this: ``P_0(e) = P(e)`` and
``P_k(e) = ⋃_{a ∈ P_{k-1}(e)} P(a)`` — the ancestors reachable within
``k`` backward steps.  These sets drive both the VTDAG conditions
(Definition 11) and natural colorings (Definition 14).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from ..lf.structures import Structure
from ..lf.terms import Constant, Element


def predecessor_set(structure: Structure, element: Element) -> FrozenSet[Element]:
    """The paper's ``P(e)`` (Definition 10).

    Constants are their own predecessor set; for non-constants the set
    additionally contains every *non-constant* direct predecessor
    through any binary relation.
    """
    if isinstance(element, Constant):
        return frozenset([element])
    found: Set[Element] = {element}
    for parent in structure.predecessors(element):
        if not isinstance(parent, Constant):
            found.add(parent)
    return frozenset(found)


def iterated_predecessors(
    structure: Structure, element: Element, k: int
) -> FrozenSet[Element]:
    """The paper's ``P_k(e)`` (Definition 13): ``P`` iterated ``k`` times.

    ``P_0(e) = P(e)``; each further step closes under ``P`` once.
    """
    current: Set[Element] = set(predecessor_set(structure, element))
    for _ in range(k):
        grown: Set[Element] = set()
        for member in current:
            grown.update(predecessor_set(structure, member))
        if grown == current:
            break  # reached the ancestor closure early
        current = grown
    return frozenset(current)


def predecessor_neighbourhood(
    structure: Structure, element: Element
) -> Structure:
    """The structure ``C ↾ (P(e) ∪ C_con)`` used as a color's lightness.

    Definition 14's second condition compares these neighbourhoods up to
    isomorphism.
    """
    elements = set(predecessor_set(structure, element)) | set(
        structure.constant_elements()
    )
    return structure.restrict_elements(elements)
