"""Very Treelike DAGs: predecessor sets and Definition 11 checks."""

from .checks import VTDAGReport, is_forest, is_vtdag, max_degree, vtdag_report
from .predecessors import (
    iterated_predecessors,
    predecessor_neighbourhood,
    predecessor_set,
)

__all__ = [
    "VTDAGReport",
    "is_forest",
    "is_vtdag",
    "iterated_predecessors",
    "max_degree",
    "predecessor_neighbourhood",
    "predecessor_set",
    "vtdag_report",
]
