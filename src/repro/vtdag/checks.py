"""Very Treelike DAG recognition (Definition 11) and related checks.

A structure C is a VTDAG when ``C_non`` is a DAG and

1. for each binary relation R and each ``e ∈ C_non`` there is at most
   one ``d ∈ C_non`` with ``R(d, e)`` — unique non-constant direct
   predecessor per relation;
2. for each ``e ∈ C_non``, ``P(e)`` is a directed clique: any two
   predecessors are comparable under ``P``.

Every (directed) tree is a VTDAG; the skeletons of Section 3.2 are
forests, hence VTDAGs.  The Main Lemma (Lemma 2) — every VTDAG is
ptp-conservative — is exercised over these structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from .predecessors import predecessor_set


@dataclass
class VTDAGReport:
    """Outcome of a VTDAG check, with human-readable violations.

    Attributes
    ----------
    is_vtdag:
        The verdict.
    violations:
        Messages describing each failed condition (empty when valid).
    """

    is_vtdag: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_vtdag


def _nonconstant_cycle(structure: Structure) -> "Optional[List[Element]]":
    """A directed cycle within ``C_non`` (through binary atoms), if any."""
    nonconstants = structure.nonconstant_elements()
    WHITE, GREY, BLACK = 0, 1, 2
    state: Dict[Element, int] = {e: WHITE for e in nonconstants}
    parent: Dict[Element, Element] = {}

    for start in sorted(nonconstants, key=str):
        if state[start] != WHITE:
            continue
        stack: List[tuple] = [(start, iter(sorted(structure.successors(start), key=str)))]
        state[start] = GREY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in nonconstants:
                    continue
                if state[successor] == GREY:
                    # reconstruct the cycle
                    cycle = [successor, node]
                    walker = node
                    while walker != successor and walker in parent:
                        walker = parent[walker]
                        cycle.append(walker)
                    return cycle
                if state[successor] == WHITE:
                    state[successor] = GREY
                    parent[successor] = node
                    stack.append(
                        (successor, iter(sorted(structure.successors(successor), key=str)))
                    )
                    advanced = True
                    break
            if not advanced:
                state[node] = BLACK
                stack.pop()
    return None


def vtdag_report(structure: Structure) -> VTDAGReport:
    """Check Definition 11, reporting every violation found."""
    violations: List[str] = []

    cycle = _nonconstant_cycle(structure)
    if cycle is not None:
        violations.append(f"C_non contains a directed cycle: {cycle}")

    nonconstants = structure.nonconstant_elements()
    for relation in sorted(structure.signature.binary_relations()):
        for element in sorted(nonconstants, key=str):
            parents = [
                d
                for d in structure.predecessors(element, relation)
                if not isinstance(d, Constant)
            ]
            if len(parents) > 1:
                violations.append(
                    f"{element} has {len(parents)} non-constant "
                    f"{relation}-predecessors: {sorted(parents, key=str)}"
                )

    for element in sorted(nonconstants, key=str):
        predecessors = predecessor_set(structure, element)
        members = sorted(predecessors, key=str)
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                left_set = predecessor_set(structure, left)
                right_set = predecessor_set(structure, right)
                if left not in right_set and right not in left_set:
                    violations.append(
                        f"P({element}) is not a directed clique: "
                        f"{left} and {right} are incomparable"
                    )

    return VTDAGReport(is_vtdag=not violations, violations=violations)


def is_vtdag(structure: Structure) -> bool:
    """Whether *structure* satisfies Definition 11."""
    return vtdag_report(structure).is_vtdag


def is_forest(structure: Structure) -> bool:
    """Whether ``C_non`` is a forest: acyclic with in-degree ≤ 1
    counting *all* binary atoms from non-constant parents.

    This is the shape Lemma 3(iii) proves for skeletons; every forest
    is a VTDAG (the ``P``-clique condition is vacuous with one parent).
    """
    if _nonconstant_cycle(structure) is not None:
        return False
    for element in structure.nonconstant_elements():
        parents = {
            d
            for d in structure.predecessors(element)
            if not isinstance(d, Constant)
        }
        if len(parents) > 1:
            return False
    return True


def max_degree(structure: Structure) -> int:
    """Largest number of facts touching a single non-constant element
    (the measure bounded by Lemma 3(iv))."""
    return max(
        (structure.degree(e) for e in structure.nonconstant_elements()),
        default=0,
    )
