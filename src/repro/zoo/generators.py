"""Synthetic generators: structures and theories for benchmarks.

Everything is deterministic given the seed — benchmarks must be
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from ..lf.atoms import Atom, atom
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Null, Variable


def chain_structure(length: int, pred: str = "E", constants: bool = False) -> Structure:
    """A directed chain with *length* edges.

    With ``constants=True`` the elements are named constants
    ``v0 … vN`` (a plain database); otherwise anonymous nulls.
    """
    if constants:
        elements: List = [Constant(f"v{i}") for i in range(length + 1)]
    else:
        elements = [Null(i) for i in range(length + 1)]
    return Structure(atom(pred, u, v) for u, v in zip(elements, elements[1:]))


def cycle_structure(size: int, pred: str = "E") -> Structure:
    """A directed cycle on *size* anonymous elements."""
    elements = [Null(i) for i in range(size)]
    return Structure(
        atom(pred, elements[i], elements[(i + 1) % size]) for i in range(size)
    )


def binary_tree_structure(depth: int, preds: Tuple[str, str] = ("F", "G")) -> Structure:
    """A complete binary tree of the given depth with two edge labels."""
    facts: List[Atom] = []
    counter = [1]
    root = Null(0)

    def grow(parent: Null, remaining: int) -> None:
        if remaining == 0:
            return
        for pred in preds:
            child = Null(counter[0])
            counter[0] += 1
            facts.append(atom(pred, parent, child))
            grow(child, remaining - 1)

    grow(root, depth)
    return Structure(facts, domain=[root])


def grid_structure(rows: int, cols: int) -> Structure:
    """A directed grid: H-edges rightward, V-edges downward."""
    def node(r: int, c: int) -> Null:
        return Null(r * cols + c)

    facts: List[Atom] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                facts.append(atom("H", node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                facts.append(atom("V", node(r, c), node(r + 1, c)))
    return Structure(facts)


def disjoint_chains_database(
    chains: int,
    length: int = 1,
    pred: str = "E",
    anchor: Optional[str] = "R",
) -> Structure:
    """*chains* disjoint E-chains of *length* edges over named constants,
    plus one ``anchor(a0, a0)`` loop (skipped when *anchor* is None).

    The Section 5.5 model-search benchmark workload: every chain end
    violates the growth rule, so an eager engine saturates a wide
    frontier of branches the search never pops — exactly the work the
    copy-on-write engine skips.
    """
    facts: List[Atom] = []
    counter = 0
    for _ in range(chains):
        elements = [Constant(f"b{counter + i}") for i in range(length + 1)]
        counter += length + 1
        facts.extend(atom(pred, u, v) for u, v in zip(elements, elements[1:]))
    if anchor is not None:
        a0 = Constant("a0")
        facts.append(atom(anchor, a0, a0))
    return Structure(facts)


def random_edges_database(
    size: int,
    edges: int,
    predicates: Tuple[str, ...] = ("E",),
    seed: int = 0,
) -> Structure:
    """A random database over named constants (for chase benchmarks)."""
    rng = random.Random(seed)
    elements = [Constant(f"v{i}") for i in range(size)]
    facts = set()
    while len(facts) < edges:
        pred = rng.choice(predicates)
        facts.add(atom(pred, rng.choice(elements), rng.choice(elements)))
    return Structure(facts, domain=elements)


def random_linear_theory(
    predicates: int,
    rules: int,
    seed: int = 0,
) -> Theory:
    """A random *linear* Datalog∃ theory over binary predicates.

    Linear TGDs (single body atom) are BDD, so these theories feed the
    rewriting and Theorem-2 benchmarks.  Shapes generated, all in (♠5)
    form: ``P(x,y) → ∃z Q(y,z)`` and datalog ``P(x,y) → Q(x,y)`` /
    ``P(x,y) → Q(y,x)``.
    """
    rng = random.Random(seed)
    names = [f"P{i}" for i in range(predicates)]
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    generated: List[Rule] = []
    for index in range(rules):
        source, target = rng.choice(names), rng.choice(names)
        shape = rng.randrange(3)
        if shape == 0:
            generated.append(
                Rule((atom(source, x, y),), (atom(target, y, z),), f"r{index}")
            )
        elif shape == 1:
            generated.append(
                Rule((atom(source, x, y),), (atom(target, x, y),), f"r{index}")
            )
        else:
            generated.append(
                Rule((atom(source, x, y),), (atom(target, y, x),), f"r{index}")
            )
    return Theory(generated)


def chain_growth_theory(predicates: int) -> Theory:
    """A deterministic ladder of growth rules:
    ``P0(x,y) → ∃z P1(y,z) → … → ∃z P0(y,z)`` — a BDD theory whose
    chase is an infinite path cycling through *predicates* labels."""
    names = [f"P{i}" for i in range(predicates)]
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    generated = [
        Rule(
            (atom(names[i], x, y),),
            (atom(names[(i + 1) % predicates], y, z),),
            f"grow{i}",
        )
        for i in range(predicates)
    ]
    return Theory(generated)


def transitive_theory(pred: str = "E") -> Theory:
    """Plain transitivity — datalog, terminating chase, not FO-rewritable."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return Theory([Rule((atom(pred, x, y), atom(pred, y, z)), (atom(pred, x, z),))])


def churn_stream(
    database: Structure,
    batches: int,
    delta_size: int = 1,
    churn: float = 0.5,
    pred: str = "E",
    seed: int = 0,
    protected: "Optional[Iterable[Atom]]" = None,
) -> "List[Tuple[List[Atom], List[Atom]]]":
    """A deterministic streaming-update workload over *database*.

    Yields *batches* update batches ``(adds, removes)`` of *delta_size*
    operations each, where *churn* is the fraction of operations that
    retract a currently-live base fact (the rest insert fresh *pred*
    edges over the database's constants).  Retractions only ever pick
    facts that are live in the simulated base at that point, so every
    batch is applicable in order — both to a
    :class:`~repro.chase.view.ChaseView` and to a from-scratch rechase.

    *protected* facts are never retracted — how the streaming
    benchmarks keep a structural core (e.g. the successor cycle that
    keeps a growth theory's restricted chase saturating) stable while
    everything else churns.

    The stream is a pure function of its arguments (fixed *seed*),
    which is what lets the smoke benchmark compare incremental
    maintenance against full rechase on identical inputs.
    """
    rng = random.Random(seed)
    elements = sorted(
        (e for e in database.domain() if isinstance(e, Constant)),
        key=str,
    )
    if not elements:
        raise ValueError("churn_stream needs a database with constants")
    immune = frozenset(protected or ())
    live = set(database.facts())
    stream: "List[Tuple[List[Atom], List[Atom]]]" = []
    for _ in range(batches):
        adds: List[Atom] = []
        removes: List[Atom] = []
        for _ in range(delta_size):
            removable = sorted(live - set(removes) - immune, key=str)
            if removable and rng.random() < churn:
                victim = removable[rng.randrange(len(removable))]
                removes.append(victim)
            else:
                for _attempt in range(32):
                    fact = atom(
                        pred,
                        elements[rng.randrange(len(elements))],
                        elements[rng.randrange(len(elements))],
                    )
                    if fact not in live and fact not in adds:
                        break
                adds.append(fact)
        live.difference_update(removes)
        live.update(adds)
        stream.append((adds, removes))
    return stream
