"""Every named theory, database, and structure of the paper.

Each entry is a function returning fresh objects, so tests and
benchmarks cannot contaminate one another.  Section references are to
*On the BDD/FC Conjecture* (Gogacz & Marcinkowski).
"""

from __future__ import annotations

from typing import List, Tuple

from ..lf.atoms import atom
from ..lf.parser import parse_query, parse_structure, parse_theory
from ..lf.queries import ConjunctiveQuery
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Null


def example1_theory() -> Theory:
    """Example 1: the chain theory whose naive homomorphic image blows up.

    ``Chase({E(a,b)})`` is an infinite E-chain — the triangle rule never
    fires; but the 3-cycle image M′ triggers it and ``Chase(M′, T)`` is
    infinite.
    """
    return parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
        U(x,y) -> exists z. U(y,z)
        """
    )


def example1_database() -> Structure:
    """``D = {E(a, b)}``."""
    return parse_structure("E(a,b)")


def example1_triangle() -> Structure:
    """The homomorphic image M′: a directed 3-cycle through a and b."""
    return parse_structure("E(a,b)\nE(b,c)\nE(c,a)")


def example3_chain(length: int) -> Structure:
    """Example 3: the chain ``a_0 → a_1 → …`` (anonymous elements).

    The paper's chain is infinite; *length* is the truncation (number
    of edges).
    """
    elements = [Null(i) for i in range(length + 1)]
    return Structure(atom("E", u, v) for u, v in zip(elements, elements[1:]))


def example6_total_order(size: int) -> Structure:
    """Example 6: a (finite prefix of an) irreflexive total order."""
    elements = [Null(i) for i in range(size)]
    return Structure(
        atom("E", elements[i], elements[j])
        for i in range(size)
        for j in range(i + 1, size)
    )


def remark3_theory() -> Theory:
    """Remark 3: successor + transitivity."""
    return parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z) -> E(x,z)
        """
    )


def remark3_database() -> Structure:
    """``D = {E(a,a), E(b,c)}`` — the loop makes every sentence true."""
    return parse_structure("E(a,a)\nE(b,c)")


def example7_theory() -> Theory:
    """Example 7 (also Example 8): growth + E-confluence.

    BDD; the datalog rule is the troublemaker that survives the
    quotient and must be saturated (Lemma 5 territory).
    """
    return parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(u,y) -> R(x,u)
        """
    )


def example7_database() -> Structure:
    """``D = {E(a, b)}``."""
    return parse_structure("E(a,b)")


def example9_theory() -> Theory:
    """Example 9: the full binary F/G-tree theory.

    ``Chase({F(a,b)})`` is an infinite binary tree; its quotients
    contain *undirected* 4-cycles but no small directed cycles.
    """
    return parse_theory(
        """
        F(x,y) -> exists z. F(y,z)
        F(x,y) -> exists z. G(y,z)
        G(x,y) -> exists z. F(y,z)
        G(x,y) -> exists z. G(y,z)
        """
    )


def example9_database() -> Structure:
    """``D = {F(a, b)}``."""
    return parse_structure("F(a,b)")


def section54_theory() -> Theory:
    """Section 5.4: the quaternary obstruction.

    ``R(x,x',y,z) ⇒ E(y,z)`` and ``E(x,y), E(t,y) ⇒ ∃z R(x,t,y,z)`` —
    BDD, but any identification forces fresh witnesses that spawn new
    E-chains, defeating every Lemma-5-like embargo.
    """
    return parse_theory(
        """
        R(x,u,y,z) -> E(y,z)
        E(x,y), E(t,y) -> exists z. R(x,t,y,z)
        """
    )


def section54_database() -> Structure:
    """``D = {E(a, b)}``."""
    return parse_structure("E(a,b)")


def section55_theory() -> Theory:
    """Section 5.5's notorious example: not FC, yet defines no ordering.

    ``E`` grows a chain; the datalog rule walks ``R`` two steps along
    the chain for every one step on the left.
    """
    return parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        R(x,y), E(x,u), E(y,z), E(z,w) -> R(u,w)
        """
    )


def section55_database() -> Structure:
    """``D = {E(a0, a1), R(a0, a0)}``."""
    return parse_structure("E(a0,a1)\nR(a0,a0)")


def section55_query() -> ConjunctiveQuery:
    """``Φ(x, y) = E(x, y) ∧ R(y, y)`` — false in the chase, true in
    every finite model of the theory (the paper's argument)."""
    return parse_query("E(x,y), R(y,y)")


def guarded_example_theory() -> Theory:
    """A small guarded program (for the Section 5.6 translation): every
    rule has a body atom containing all body variables."""
    return parse_theory(
        """
        P(x,y,z) -> exists w. R(y,z,w)
        R(x,y,z) -> exists w. P(z,y,w)
        P(x,y,z), S(y) -> G(z)
        """
    )


def guarded_example_database() -> Structure:
    """Seed facts for the guarded example."""
    return parse_structure("P(a,b,c)\nS(b)")


def lemma13_bounded_degree_structure() -> Structure:
    """Section 5.5's chase shape: an E-chain with ``R(a_i, a_{2i})``
    (here truncated), degree bounded by 4 — the structure Lemma 13
    declares ptp-conservative."""
    length = 16
    elements = [Null(i) for i in range(length + 1)]
    facts = [atom("E", elements[i], elements[i + 1]) for i in range(length)]
    facts += [
        atom("R", elements[i], elements[2 * i])
        for i in range(1, length // 2 + 1)
    ]
    return Structure(facts)


#: Binary BDD theories with databases and non-certain queries for the
#: Theorem-2 corpus (experiment E10): (name, theory, database, query).
def theorem2_corpus(
    extended: bool = False,
) -> "List[Tuple[str, Theory, Structure, ConjunctiveQuery]]":
    """The corpus of (T, D, Q) triples the pipeline is exercised on.

    Every theory is binary and BDD (certified by the rewriting engine
    in the tests); every query is *not* certain, so Theorem 2 promises
    a finite counter-model.

    With ``extended=True`` the corpus additionally carries the
    rewriting stress entry ``linear-mix/P5-cycle-stress``: an 18-rule
    random linear theory whose 4-cycle query saturates only after a
    600+-disjunct frontier.  It satisfies every corpus invariant but
    is far too heavy for the per-entry pipeline tests, so only the
    rewriting benchmarks (``BENCH_rewrite.json``) opt in.
    """
    corpus: List[Tuple[str, Theory, Structure, ConjunctiveQuery]] = []
    corpus.append(
        (
            "example1/triangle-query",
            example1_theory(),
            example1_database(),
            parse_query("U(x,y)"),
        )
    )
    corpus.append(
        (
            "linear/loop-query",
            parse_theory("E(x,y) -> exists z. E(y,z)"),
            parse_structure("E(a,b)"),
            parse_query("E(x,x)"),
        )
    )
    corpus.append(
        (
            "example7/foreign-pred",
            example7_theory(),
            example7_database(),
            parse_query("R(x,u), P(u,w)"),
        )
    )
    corpus.append(
        (
            "binary-tree/F-G-join",
            example9_theory(),
            example9_database(),
            parse_query("F(x,y), G(x,y)"),
        )
    )
    corpus.append(
        (
            "two-chains/merge-query",
            parse_theory(
                """
                E(x,y) -> exists z. E(y,z)
                E(x,y) -> B(y)
                """
            ),
            parse_structure("E(a,b)\nE(c,d)"),
            parse_query("E(x,y), E(y,x)"),
        )
    )
    if extended:
        from .generators import random_linear_theory
        from ..lf.terms import Variable

        cycle = [Variable(f"x{i}") for i in range(4)]
        corpus.append(
            (
                "linear-mix/P5-cycle-stress",
                random_linear_theory(predicates=5, rules=18, seed=2),
                parse_structure("P0(a,b)"),
                ConjunctiveQuery(
                    [
                        atom(f"P{i % 5}", cycle[i], cycle[(i + 1) % 4])
                        for i in range(4)
                    ],
                    [cycle[0]],
                ),
            )
        )
    return corpus
