"""The skeleton ``S(D, T)`` (Definition 12) and Lemmas 3–4.

For a theory in (♠5) form chased on a database D, the skeleton keeps

* every element of the chase,
* every atom of D ("named" constants), and
* every atom of a *tuple generating predicate* (TGP — a predicate that
  appears as the head of an existential TGD).

The remaining chase atoms — those produced by datalog rules — are the
*flesh*.  Lemma 3 asserts the skeleton's non-constant part is a forest
of bounded degree; Lemma 4 asserts the chase can be rebuilt from the
skeleton using only datalog derivations (no new elements), i.e.
``Chase(S, T) = Chase(D, T)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..chase.engine import ChaseConfig, chase
from ..chase.results import ChaseResult
from ..lf.atoms import Atom
from ..lf.rules import Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from ..vtdag.checks import is_forest, is_vtdag, max_degree, vtdag_report


@dataclass
class SkeletonResult:
    """A skeleton together with its provenance.

    Attributes
    ----------
    structure:
        The skeleton S: database atoms + TGP atoms, over the full chase
        domain (datalog-only elements appear as isolated elements —
        there are none when the theory is in (♠5) form, since every
        chase element is created by a TGP atom).
    tgp_predicates:
        The TGPs used for the split.
    database_facts:
        The facts of D (always skeleton atoms).
    chase_result:
        The chase run the skeleton was extracted from.
    """

    structure: Structure
    tgp_predicates: FrozenSet[str]
    database_facts: FrozenSet[Atom]
    chase_result: ChaseResult

    @property
    def skeleton_atoms(self) -> FrozenSet[Atom]:
        """All atoms of S."""
        return self.structure.facts()

    @property
    def flesh(self) -> FrozenSet[Atom]:
        """The chase atoms *not* in S (datalog-derived)."""
        return self.chase_result.structure.facts() - self.structure.facts()


def skeleton_of_chase(
    chase_result: ChaseResult,
    database: Structure,
    theory: Theory,
) -> SkeletonResult:
    """Extract ``S(D, T)`` from an already-run chase (Definition 12)."""
    tgps = theory.tgp_predicates()
    kept: List[Atom] = []
    for fact in chase_result.structure.facts():
        if fact in database.facts() or fact.pred in tgps:
            kept.append(fact)
    structure = Structure(
        kept,
        domain=chase_result.structure.domain(),
        signature=chase_result.structure.signature,
    )
    return SkeletonResult(
        structure=structure,
        tgp_predicates=tgps,
        database_facts=database.facts(),
        chase_result=chase_result,
    )


def skeleton(
    database: Structure,
    theory: Theory,
    max_depth: int = 10,
    max_facts: "Optional[int]" = 100_000,
    **overrides,
) -> SkeletonResult:
    """Chase *database* under *theory* and extract the skeleton.

    The chase is truncated at *max_depth* rounds; the skeleton of a
    truncation is the truncation of the skeleton, so deeper runs only
    extend the forest downward.  Extra keyword overrides (``wall_ms``,
    ``cancel_token``, ...) are forwarded to the chase config.
    """
    result = chase(
        database,
        theory,
        ChaseConfig(max_depth=max_depth, max_facts=max_facts, max_elements=None),
        **overrides,
    )
    return skeleton_of_chase(result, database, theory)


def flesh_atoms(chased: Structure, skeleton_structure: Structure) -> FrozenSet[Atom]:
    """The flesh: atoms of the chase that are not skeleton atoms."""
    return chased.facts() - skeleton_structure.facts()


@dataclass
class Lemma3Report:
    """The four claims of Lemma 3, each checked separately.

    (i) ``S_non`` is acyclic; (ii) in-degree ≤ 1; (iii) forest;
    (iv) degree bounded by ``|Σ| + 1``.
    """

    acyclic: bool
    in_degree_at_most_one: bool
    forest: bool
    degree_bound: int
    degree_observed: int
    vtdag: bool
    details: List[str] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return (
            self.acyclic
            and self.in_degree_at_most_one
            and self.forest
            and self.degree_observed <= self.degree_bound
            and self.vtdag
        )


def lemma3_report(skeleton_result: SkeletonResult) -> Lemma3Report:
    """Check Lemma 3 on a concrete skeleton.

    The degree bound (iv) uses ``|Σ| + 1`` with |Σ| the number of
    relations of the ambient signature, as in the paper (each element
    has at most one outgoing TGP atom per TGP, one incoming creating
    atom, plus database/unary atoms).
    """
    structure = skeleton_result.structure
    report = vtdag_report(structure)
    acyclic = not any("cycle" in v for v in report.violations)
    in_degree_ok = True
    for element in structure.nonconstant_elements():
        parents = {
            d
            for d in structure.predecessors(element)
            if not isinstance(d, Constant)
        }
        if len(parents) > 1:
            in_degree_ok = False
            break
    signature_size = len(structure.signature.relation_names())
    observed = max_degree(structure)
    return Lemma3Report(
        acyclic=acyclic,
        in_degree_at_most_one=in_degree_ok,
        forest=is_forest(structure),
        degree_bound=signature_size + 1,
        degree_observed=observed,
        vtdag=report.is_vtdag,
        details=report.violations,
    )


def verify_lemma4(
    skeleton_result: SkeletonResult,
    theory: Theory,
    max_depth: "Optional[int]" = None,
) -> Tuple[bool, "Optional[str]"]:
    """Empirically check Lemma 4: ``Chase(S, T) = Chase(D, T)``.

    Re-chases the skeleton as a database instance.  On a *truncated*
    chase the claim to check is containment both ways up to the
    truncation depth:

    * every fact of ``Chase^k(D, T)`` is derived from S (Lemma 4's
      statement), and
    * chasing S creates **no new elements** (the paper's point: only
      datalog rules fire — the witnesses are already in the skeleton).

    The second bullet is checked exactly; the first up to *max_depth*
    (defaulting to the original chase's depth).

    Returns ``(verdict, explanation-on-failure)``.
    """
    depth = max_depth if max_depth is not None else skeleton_result.chase_result.depth
    rechased = chase(
        skeleton_result.structure,
        theory,
        ChaseConfig(max_depth=depth, max_facts=None, max_elements=None),
    )
    # On the *infinite* chase, Lemma 4 says no new elements at all.  On
    # a depth-d truncation the frontier (level-d) elements legitimately
    # lack their witnesses, so re-chasing extends past them; the lemma's
    # content is that no new element hangs off the *interior*.
    from ..lf.terms import Null

    original_domain = skeleton_result.chase_result.structure.domain()
    frontier_levels = {
        element
        for element in original_domain
        if isinstance(element, Null)
        and element.level >= skeleton_result.chase_result.depth
    }
    fresh = set(rechased.new_elements)
    for newborn in rechased.new_elements:
        creators = {
            parent
            for parent in rechased.structure.predecessors(newborn)
            if parent not in fresh
        }
        interior_creators = creators & (original_domain - frontier_levels)
        if interior_creators:
            return False, (
                f"chasing the skeleton created {newborn} from the interior "
                f"element(s) {sorted(interior_creators, key=str)[:2]}; the "
                "skeleton lost a needed witness"
            )
    original = skeleton_result.chase_result.structure.facts()
    rebuilt = rechased.structure.facts()
    missing = original - rebuilt
    if missing:
        sample = sorted(missing, key=str)[:3]
        return False, f"{len(missing)} chase facts not rebuilt from S, e.g. {sample}"
    extra = rebuilt - original
    if extra:
        # Facts derivable from S but beyond the original truncation are
        # fine on a truncated run only if the original was truncated.
        if skeleton_result.chase_result.saturated:
            sample = sorted(extra, key=str)[:3]
            return False, f"{len(extra)} unexpected facts beyond the chase, e.g. {sample}"
    return True, None
