"""The skeleton ``S(D, T)`` of a chase (Section 3.2)."""

from .skeleton import (
    Lemma3Report,
    SkeletonResult,
    flesh_atoms,
    lemma3_report,
    skeleton,
    skeleton_of_chase,
    verify_lemma4,
)

__all__ = [
    "Lemma3Report",
    "SkeletonResult",
    "flesh_atoms",
    "lemma3_report",
    "skeleton",
    "skeleton_of_chase",
    "verify_lemma4",
]
