"""Positive first-order (UCQ) rewriting — the BDD machinery.

Quick tour
----------
>>> from repro.lf import parse_theory, parse_query
>>> from repro.rewriting import rewrite, kappa
>>> theory = parse_theory('''
... E(x,y) -> exists z. E(y,z)
... E(x,y), E(x2,y) -> R(x,x2)
... ''')
>>> result = rewrite(parse_query("R(x,y)", free=["x", "y"]), theory)
>>> result.saturated
True
"""

from .bdd import (
    BDDProfile,
    RuleRewriting,
    answer_by_rewriting,
    answers_by_rewriting,
    bdd_profile,
    is_bdd_for,
    kappa,
    rewrite_query,
)
from .index import SubsumptionIndex, signature_of
from .rewriter import RewriteConfig, RewritingResult, legacy_rewrite, rewrite
from .stats import REWRITE_TIMING_FIELDS, RewriteStats
from .subsume import (
    clear_subsume_cache,
    cq_equivalent,
    cq_subsumes,
    freeze,
    minimize_ucq,
    normalize_equalities,
    subsume_cache_disabled,
    ucq_equivalent,
    ucq_subsumes,
)
from .unify import Unifier, mgu, unify_all

__all__ = [
    "BDDProfile",
    "REWRITE_TIMING_FIELDS",
    "RewriteConfig",
    "RewriteStats",
    "RewritingResult",
    "RuleRewriting",
    "SubsumptionIndex",
    "Unifier",
    "answer_by_rewriting",
    "answers_by_rewriting",
    "bdd_profile",
    "clear_subsume_cache",
    "cq_equivalent",
    "cq_subsumes",
    "freeze",
    "subsume_cache_disabled",
    "is_bdd_for",
    "kappa",
    "legacy_rewrite",
    "mgu",
    "minimize_ucq",
    "normalize_equalities",
    "rewrite",
    "rewrite_query",
    "signature_of",
    "ucq_equivalent",
    "ucq_subsumes",
    "unify_all",
]
