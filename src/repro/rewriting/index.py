"""An indexed subsumption frontier for the rewriting engine.

The legacy engine pruned each fresh disjunct by checking
``cq_subsumes(existing, candidate)`` against *every* kept disjunct — a
quadratic pairwise sweep where each check is a homomorphism search.
Most of those checks are structurally hopeless: ``general ⊇ specific``
requires a homomorphism from *general*'s atoms into the canonical
database of *specific*, which is impossible unless

* the free tuples have the same arity (answer columns must align),
* every relation named by *general* occurs in *specific* (an atom can
  only map to a fact over the same predicate),
* every constant of *general* occurs in *specific* (constants map to
  themselves), and
* every *link* of *general* — a variable shared between two atom slots
  ``(pred, position)`` — must be realised by a single element of
  *specific*'s canonical database occupying both slots (a homomorphism
  maps the shared variable to one element).

:class:`SubsumptionIndex` groups the kept disjuncts by their structural
signature — free-tuple shape, variable width, and the multiset of
relation names — and answers "which kept disjuncts could possibly
subsume this candidate?" by scanning *group keys* (few) instead of
disjuncts (many), applying the necessary conditions above before any
homomorphism is attempted.  Width and the full predicate multiset do
not constrain containment (a homomorphism may merge variables and
collapse atoms), so they participate in the grouping key — keeping
structurally identical disjuncts together and the per-group filter
work shared — but only the sound conditions filter.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from ..lf.queries import ConjunctiveQuery
from ..lf.terms import Variable

#: A structural signature: (free arity, width, predicate multiset).
SignatureKey = Tuple[int, int, Tuple[Tuple[str, int], ...]]

#: A slot is one argument position of one relation; a link is an
#: (ordered) pair of slots co-occupied by one variable/element.
Slot = Tuple[str, int]
Link = Tuple[Slot, Slot]


def required_links(query: ConjunctiveQuery) -> FrozenSet[Link]:
    """The slot pairs *query*'s variables force onto any hom image.

    For each variable, every pair of relational slots it occupies (a
    variable in ``P0(v, _) ∧ P1(_, v)`` occupies ``(P0, 0)`` and
    ``(P1, 1)``).  A homomorphism maps the variable to one element,
    which then occupies both slots in the target — so a containment
    ``general ⊇ specific`` needs every link of *general* available in
    *specific* (see :func:`available_links`).
    """
    slots: Dict[Variable, List[Slot]] = {}
    for item in query.atoms:
        if item.is_equality:
            continue
        for position, arg in enumerate(item.args):
            if isinstance(arg, Variable):
                slots.setdefault(arg, []).append((item.pred, position))
    links: set = set()
    for occupied in slots.values():
        if len(occupied) < 2:
            continue
        ordered = sorted(set(occupied))
        for i in range(len(ordered)):
            for j in range(i + 1, len(ordered)):
                links.add((ordered[i], ordered[j]))
    return frozenset(links)


def available_links(query: ConjunctiveQuery) -> FrozenSet[Link]:
    """The slot pairs realised by some element of *query*'s canonical DB.

    Computed on the frozen canonical database, so equality atoms
    (pinning a free variable to a constant or merging two frees) are
    respected.  Superset-closed target of :func:`required_links`.
    """
    from .subsume import freeze  # deferred: subsume imports nothing from here

    canonical, _ = freeze(query)
    slots: Dict[object, List[Slot]] = {}
    for fact in canonical:
        for position, arg in enumerate(fact.args):
            slots.setdefault(arg, []).append((fact.pred, position))
    links: set = set()
    for occupied in slots.values():
        if len(occupied) < 2:
            continue
        ordered = sorted(set(occupied))
        for i in range(len(ordered)):
            for j in range(i + 1, len(ordered)):
                links.add((ordered[i], ordered[j]))
    return frozenset(links)


def signature_of(query: ConjunctiveQuery) -> SignatureKey:
    """The (free-tuple shape, width, predicate multiset) key of a CQ.

    The predicate multiset counts relational (non-equality) atoms per
    predicate name, sorted for determinism.  Two CQs equal up to
    variable renaming always share a signature.
    """
    counts: Dict[str, int] = {}
    for item in query.atoms:
        if not item.is_equality:
            counts[item.pred] = counts.get(item.pred, 0) + 1
    multiset = tuple(sorted(counts.items()))
    return (len(query.free), query.width, multiset)


class _Group:
    """All indexed disjuncts sharing one structural signature."""

    __slots__ = ("free_arity", "preds", "members", "constants", "links")

    def __init__(self, key: SignatureKey):
        self.free_arity = key[0]
        self.preds: FrozenSet[str] = frozenset(name for name, _ in key[2])
        self.members: List[ConjunctiveQuery] = []
        #: Per-member constant sets, parallel to ``members``.
        self.constants: List[FrozenSet] = []
        #: Per-member required link sets, parallel to ``members``.
        self.links: List[FrozenSet[Link]] = []


class SubsumptionIndex:
    """The kept-disjunct frontier, grouped by structural signature.

    Supports the one query the engine's eager-subsumption pruning
    needs: :meth:`subsumer_candidates` — the kept disjuncts that pass
    every *sound necessary condition* for containing a given candidate.
    The caller still confirms each survivor with the homomorphism-backed
    :func:`~repro.rewriting.subsume.cq_subsumes`; the index only
    guarantees it never filters out a true subsumer.
    """

    __slots__ = ("_groups", "_size")

    def __init__(self) -> None:
        self._groups: Dict[SignatureKey, _Group] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def group_count(self) -> int:
        """Distinct structural signatures currently indexed."""
        return len(self._groups)

    def add(self, query: ConjunctiveQuery) -> None:
        """Index a kept disjunct under its structural signature."""
        key = signature_of(query)
        group = self._groups.get(key)
        if group is None:
            group = _Group(key)
            self._groups[key] = group
        group.members.append(query)
        group.constants.append(query.constants())
        group.links.append(required_links(query))
        self._size += 1

    def subsumer_candidates(
        self, candidate: ConjunctiveQuery
    ) -> List[ConjunctiveQuery]:
        """Kept disjuncts that could contain *candidate*.

        Applies the sound filters (free arity equal, predicate set a
        subset of the candidate's, constants a subset of the
        candidate's); everything else is left to the homomorphism
        check.  Disjuncts sharing the candidate's exact signature are
        listed first — equivalent duplicates are the most common
        subsumers, so callers that stop at the first hit benefit.
        """
        arity = len(candidate.free)
        preds = frozenset(
            item.pred for item in candidate.atoms if not item.is_equality
        )
        constants = candidate.constants()
        links = available_links(candidate)
        own_key = signature_of(candidate)
        survivors: List[ConjunctiveQuery] = []

        def scan(key: SignatureKey, group: _Group) -> None:
            if group.free_arity != arity or not group.preds <= preds:
                return
            for member, member_constants, member_links in zip(
                group.members, group.constants, group.links
            ):
                if member_constants <= constants and member_links <= links:
                    survivors.append(member)

        own_group = self._groups.get(own_key)
        if own_group is not None:
            scan(own_key, own_group)
        for key, group in self._groups.items():
            if key != own_key:
                scan(key, group)
        return survivors

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        for group in self._groups.values():
            yield from group.members


def minimize_indexed(
    disjuncts: List[ConjunctiveQuery], stats: object = None
) -> List[ConjunctiveQuery]:
    """Drop disjuncts subsumed by another disjunct, with prefilters.

    Produces exactly the list :func:`~repro.rewriting.subsume.minimize_ucq`
    would — same candidate order, same keep-first-representative rule —
    but guards every ``cq_subsumes`` call with the sound necessary
    conditions of :class:`SubsumptionIndex` (free arity, predicate-set,
    constant-set, and link-set containment), so the quadratic sweep
    performs homomorphism searches only on structurally comparable
    pairs.  When *stats* is a :class:`~repro.rewriting.stats.RewriteStats`
    its ``subsumption_checks`` / ``pairwise_checks_avoided`` counters
    absorb the sweep.
    """
    from .subsume import cq_subsumes

    checks = 0
    avoided = 0
    entries: List[tuple] = []
    for query in sorted(
        disjuncts, key=lambda q: (len(q.atoms), q.width, str(q))
    ):
        entries.append(
            (
                query,
                len(query.free),
                frozenset(a.pred for a in query.atoms if not a.is_equality),
                query.constants(),
                required_links(query),
                available_links(query),
            )
        )
    kept: List[tuple] = []
    for entry in entries:
        query, arity, preds, constants, required, available = entry
        dominated = False
        for other in kept:
            if (
                other[1] == arity
                and other[2] <= preds
                and other[3] <= constants
                and other[4] <= available
            ):
                checks += 1
                if cq_subsumes(other[0], query):
                    dominated = True
                    break
            else:
                avoided += 1
        if dominated:
            if stats is not None:
                stats.subsumption_checks += checks
                stats.pairwise_checks_avoided += avoided
                checks = avoided = 0
            continue
        survivors: List[tuple] = []
        for other in kept:
            if (
                other[1] == arity
                and preds <= other[2]
                and constants <= other[3]
                and required <= other[5]
            ):
                checks += 1
                if cq_subsumes(query, other[0]):
                    continue
            else:
                avoided += 1
            survivors.append(other)
        survivors.append(entry)
        kept = survivors
        if stats is not None:
            stats.subsumption_checks += checks
            stats.pairwise_checks_avoided += avoided
            checks = avoided = 0
    return [entry[0] for entry in kept]
