"""Unification of atoms over variables and constants.

The term language has no function symbols, so unification is a plain
union–find over terms with the single failure mode "two distinct
constants in one class".  The rewriting engine needs more than the
most general unifier: it needs the *equivalence classes* themselves to
check the applicability condition for existential variables, so the
:class:`Unifier` exposes them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..lf.atoms import Atom
from ..lf.terms import Constant, Term, Variable


class Unifier:
    """A union–find over terms (variables and constants).

    Constants act as rigid terms: two classes may be merged only if at
    most one of them contains a constant, and never two different
    constants.
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        """Representative of *term*'s class (path-compressing)."""
        root = term
        while root in self._parent:
            root = self._parent[root]
        while term != root:
            parent = self._parent[term]
            self._parent[term] = root
            term = parent
        return root

    def union(self, left: Term, right: Term) -> bool:
        """Merge the classes of *left* and *right*.

        Returns ``False`` on a constant clash (two distinct constants).
        Constants are kept as class representatives.
        """
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return True
        left_const = isinstance(left_root, Constant)
        right_const = isinstance(right_root, Constant)
        if left_const and right_const:
            return False
        if left_const:
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root
        return True

    def unify_atoms(self, left: Atom, right: Atom) -> bool:
        """Merge argument-wise; ``False`` on predicate/arity mismatch or
        constant clash (the unifier may then be partially updated —
        build a fresh one per attempt)."""
        if left.pred != right.pred or left.arity != right.arity:
            return False
        for s, t in zip(left.args, right.args):
            if not self.union(s, t):  # type: ignore[arg-type]
                return False
        return True

    def classes(self) -> List[Set[Term]]:
        """The non-trivial equivalence classes."""
        table: Dict[Term, Set[Term]] = {}
        for term in list(self._parent):
            root = self.find(term)
            table.setdefault(root, {root}).add(term)
        return list(table.values())

    def class_of(self, term: Term) -> Set[Term]:
        """The class of *term* (at least ``{term}``)."""
        root = self.find(term)
        members = {root, term}
        for other in list(self._parent):
            if self.find(other) == root:
                members.add(other)
        return members

    def substitution(self, prefer: "Optional[Iterable[Variable]]" = None) -> Dict[Variable, Term]:
        """The induced substitution: every variable to its representative.

        When the class contains a constant, the constant is the image.
        Otherwise the image is the class representative, except that
        variables listed in *prefer* are chosen as representatives of
        their classes when possible, earlier entries winning (the
        rewriting engine prefers to keep the query's free variables,
        then its other variables).
        """
        priority = {var: rank for rank, var in enumerate(prefer or ())}
        chosen: Dict[Term, Term] = {}
        for members in self.classes():
            constants = [m for m in members if isinstance(m, Constant)]
            if constants:
                representative: Term = constants[0]
            else:
                liked = sorted(
                    (m for m in members if m in priority),
                    key=lambda m: priority[m],
                )
                representative = liked[0] if liked else sorted(members, key=str)[0]
            for member in members:
                chosen[member] = representative
        return {
            term: image
            for term, image in chosen.items()
            if isinstance(term, Variable) and term != image
        }


def mgu(left: Atom, right: Atom) -> "Optional[Dict[Variable, Term]]":
    """Most general unifier of two atoms, or ``None``.

    Convenience wrapper over :class:`Unifier` for callers that only
    need the substitution.
    """
    unifier = Unifier()
    if not unifier.unify_atoms(left, right):
        return None
    return unifier.substitution()


def unify_all(pairs: Iterable[Tuple[Atom, Atom]]) -> "Optional[Unifier]":
    """Simultaneously unify several atom pairs; ``None`` on failure."""
    unifier = Unifier()
    for left, right in pairs:
        if not unifier.unify_atoms(left, right):
            return None
    return unifier
