"""BDD certificates, the constant κ, and rewriting-based answering.

The paper uses the BDD property in exactly one way (proof of Lemma 5):
for each rule body Ψ it takes the positive first-order rewriting Ψ′ and
the constant

    κ = max { |Var(Ψ′)| : Ψ ⇒ ψ is a rule of T }     (Section 3.3)

— the largest number of variables in the rewriting of any rule body.
:func:`kappa` computes that constant with the rewriting engine;
:func:`bdd_profile` exposes the per-rule rewritings for inspection.

``is_bdd_for`` returns a *three-valued* verdict: BDD is undecidable, so
budget exhaustion yields ``None`` rather than a guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import OnBudget
from ..errors import RewritingBudgetExceeded
from ..lf.homomorphism import all_answers, satisfies
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element
from .rewriter import RewriteConfig, RewritingResult, rewrite


@dataclass
class RuleRewriting:
    """The rewriting of one rule body (an entry of the BDD profile).

    Attributes
    ----------
    rule:
        The rule whose body was rewritten.
    result:
        The rewriting of ``rule.body_query()`` (frontier variables free).
    """

    rule: Rule
    result: RewritingResult

    @property
    def width(self) -> int:
        """``|Var(Ψ′)|`` for this rule's body."""
        return self.result.max_width


@dataclass
class BDDProfile:
    """The rewritings of every rule body of a theory.

    Attributes
    ----------
    entries:
        One :class:`RuleRewriting` per rule.
    saturated:
        Whether *every* rewriting saturated.  If so the profile is a
        certificate that all rule bodies are FO-rewritable — the
        precise ingredient the Theorem-2 pipeline needs.
    """

    entries: List[RuleRewriting] = field(default_factory=list)

    @property
    def saturated(self) -> bool:
        return all(entry.result.saturated for entry in self.entries)

    @property
    def kappa(self) -> int:
        """The paper's κ: max rewriting width over rule bodies."""
        return max((entry.width for entry in self.entries), default=0)

    def rewriting_of(self, rule: Rule) -> RewritingResult:
        """The rewriting of a specific rule's body."""
        for entry in self.entries:
            if entry.rule == rule:
                return entry.result
        raise KeyError(f"rule not in profile: {rule}")


def rewrite_query(
    query: ConjunctiveQuery,
    theory: Theory,
    config: "Optional[RewriteConfig]" = None,
) -> RewritingResult:
    """Alias of :func:`repro.rewriting.rewriter.rewrite` (re-exported
    here so the BDD-facing API is self-contained)."""
    return rewrite(query, theory, config)


def is_bdd_for(
    theory: Theory,
    query: ConjunctiveQuery,
    config: "Optional[RewriteConfig]" = None,
) -> "Optional[bool]":
    """Three-valued FO-rewritability of *query* under *theory*.

    ``True`` — the rewriting saturated (certificate in hand);
    ``None`` — the budget ran out (status unknown; raise the budget).
    ``False`` is never returned: divergence within a budget is not a
    proof of non-rewritability.
    """
    config = config or RewriteConfig()
    quiet = config.with_overrides(on_budget=OnBudget.RETURN)
    result = rewrite(query, theory, quiet)
    return True if result.saturated else None


def bdd_profile(
    theory: Theory,
    config: "Optional[RewriteConfig]" = None,
) -> BDDProfile:
    """Rewrite every rule body of *theory* (frontier variables free).

    Raises
    ------
    RewritingBudgetExceeded
        If some rule body's rewriting exhausts its budget and the
        config says :attr:`~repro.config.OnBudget.RAISE` (the default):
        the theory's
        BDD status is then unknown and κ cannot be certified.
    """
    profile = BDDProfile()
    for rule in theory.rules:
        result = rewrite(rule.body_query(), theory, config)
        profile.entries.append(RuleRewriting(rule, result))
    return profile


def kappa(theory: Theory, config: "Optional[RewriteConfig]" = None) -> int:
    """The constant κ of Section 3.3 (requires all rewritings to
    saturate; see :func:`bdd_profile`)."""
    return bdd_profile(theory, config).kappa


def answer_by_rewriting(
    database: Structure,
    theory: Theory,
    query: ConjunctiveQuery,
    config: "Optional[RewriteConfig]" = None,
) -> bool:
    """Certain Boolean answer via Definition 2: ``D ⊨ Φ′``.

    Unlike the chase route this is always terminating — but it requires
    the rewriting to saturate (raises otherwise).
    """
    result = rewrite(query, theory, config)
    if not result.saturated:
        raise RewritingBudgetExceeded(
            "rewriting did not saturate; answer unknown", steps=result.steps
        )
    return satisfies(database, result.ucq)


def answers_by_rewriting(
    database: Structure,
    theory: Theory,
    query: ConjunctiveQuery,
    config: "Optional[RewriteConfig]" = None,
) -> "set[Tuple[Element, ...]]":
    """Certain answers (free variables) via the rewriting.

    Only constant tuples are returned, mirroring
    :func:`repro.chase.certain.certain_answers`.
    """
    result = rewrite(query, theory, config)
    if not result.saturated:
        raise RewritingBudgetExceeded(
            "rewriting did not saturate; answers unknown", steps=result.steps
        )
    raw = all_answers(database, result.ucq)
    return {row for row in raw if all(isinstance(v, Constant) for v in row)}
