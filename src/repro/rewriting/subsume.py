"""Query subsumption (containment) via canonical databases.

For CQs, ``general ⊇ specific`` (every database satisfying *specific*
satisfies *general*) iff there is a homomorphism from *general* into the
*frozen* canonical database of *specific* that maps free variables to
the corresponding frozen free variables — the classical
Chandra–Merlin criterion, which is what the rewriting engine uses to
minimise its UCQs.

Equality atoms
--------------
Rewriting steps may force a free variable to coincide with a constant
or with another free variable.  To keep every disjunct of a UCQ on the
same free-variable schema, such constraints are represented as equality
atoms ``f = t`` rather than substituted away.  :func:`normalize_equalities`
eliminates all equalities *except* those protecting free variables;
:func:`freeze` resolves the remaining ones into the canonical database.

Caching
-------
``minimize_ucq`` performs O(n²) containment checks over the same n
disjuncts, and the rewriting engine's eager-subsumption pruning calls
:func:`cq_subsumes` against every kept disjunct — without memoisation
each pair re-normalises and re-freezes both queries from scratch.
:func:`cq_subsumes` therefore routes through process-wide caches keyed
on the (immutable, hashable) query itself; since CQ atoms are kept in
a deterministic order, this key identifies the query's canonical shape
for all the repeat calls that matter.  The cached canonical database
is shared read-only across containment checks (the homomorphism
engine never mutates its target).  :func:`subsume_cache_disabled` and
:func:`clear_subsume_cache` exist for the ``BENCH_hom`` ablation and
for tests.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..lf.atoms import Atom
from ..lf.homomorphism import find_homomorphism
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.structures import Structure
from ..lf.terms import Constant, Null, Variable

#: Bounded memo tables for the containment hot path; cleared wholesale
#: when full (entries are cheap to rebuild).  Shared across the server's
#: worker threads: hits are lock-free dict probes; the size-check +
#: insert on a miss runs under ``_CACHE_LOCK`` so a concurrent clear
#: cannot interleave with an insert (a duplicate *compute* outside the
#: lock is harmless — both threads produce the same value).
_CACHE_MAXSIZE = 8192
_NORMALIZE_CACHE: "Dict[ConjunctiveQuery, Optional[ConjunctiveQuery]]" = {}
_FREEZE_CACHE: "Dict[ConjunctiveQuery, Tuple[Structure, Dict[Variable, object]]]" = {}
_CACHE_ENABLED = True
_CACHE_LOCK = threading.Lock()


def clear_subsume_cache() -> None:
    """Empty the normalise/freeze memo tables (benchmarks and tests)."""
    with _CACHE_LOCK:
        _NORMALIZE_CACHE.clear()
        _FREEZE_CACHE.clear()


@contextmanager
def subsume_cache_disabled():
    """Run the block with containment memoisation switched off."""
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = False
    try:
        yield
    finally:
        _CACHE_ENABLED = previous


def _normalized(query: ConjunctiveQuery) -> "Optional[ConjunctiveQuery]":
    """Memoised :func:`normalize_equalities`."""
    if not _CACHE_ENABLED:
        return normalize_equalities(query)
    try:
        return _NORMALIZE_CACHE[query]
    except KeyError:
        pass
    result = normalize_equalities(query)
    with _CACHE_LOCK:
        if len(_NORMALIZE_CACHE) >= _CACHE_MAXSIZE:
            _NORMALIZE_CACHE.clear()
        _NORMALIZE_CACHE[query] = result
    return result


def _frozen(query: ConjunctiveQuery) -> "Tuple[Structure, Dict[Variable, object]]":
    """Memoised :func:`freeze`: the shared, read-only canonical database."""
    if not _CACHE_ENABLED:
        return freeze(query)
    try:
        return _FREEZE_CACHE[query]
    except KeyError:
        pass
    result = freeze(query)
    with _CACHE_LOCK:
        if len(_FREEZE_CACHE) >= _CACHE_MAXSIZE:
            _FREEZE_CACHE.clear()
        _FREEZE_CACHE[query] = result
    return result


def normalize_equalities(query: ConjunctiveQuery) -> "Optional[ConjunctiveQuery]":
    """Eliminate equality atoms, except those anchoring free variables.

    * ``x = t`` with ``x`` existential: substitute ``t`` for ``x``.
    * ``f = t`` with ``f`` free and ``t`` a constant or another free
      variable: substitute in the relational atoms but *keep* the
      equality atom, so the free tuple is unchanged.
    * Ground equalities are checked; an inconsistency yields ``None``
      (the query is unsatisfiable).
    """
    free = set(query.free)
    mapping: Dict[Variable, object] = {}

    def resolve(term):
        seen = set()
        while isinstance(term, Variable) and term in mapping:
            if term in seen:  # pragma: no cover - defensive
                break
            seen.add(term)
            term = mapping[term]
        return term

    kept_equalities: List[Tuple[Variable, object]] = []
    relational = [a for a in query.atoms if not a.is_equality]
    for eq in (a for a in query.atoms if a.is_equality):
        left, right = (resolve(t) for t in eq.args)
        if left == right:
            continue
        left_var = isinstance(left, Variable)
        right_var = isinstance(right, Variable)
        if left_var and left not in free:
            mapping[left] = right
        elif right_var and right not in free:
            mapping[right] = left
        elif left_var and right_var:
            # two free variables: identify in atoms, keep the constraint
            mapping[right] = left
            kept_equalities.append((right, left))
        elif left_var:
            mapping[left] = right
            kept_equalities.append((left, right))
        elif right_var:
            mapping[right] = left
            kept_equalities.append((right, left))
        else:
            return None  # two distinct constants

    resolved = {var: resolve(var) for var in mapping}
    new_atoms = [a.substitute(resolved) for a in relational]
    for variable, target in kept_equalities:
        new_atoms.append(Atom("=", (variable, resolve(target))))
    # free variables whose only occurrence was a *trivial* equality that
    # we dropped must be kept alive:
    occurring = set()
    for item in new_atoms:
        occurring.update(item.variable_set())
    for variable in query.free:
        if variable not in occurring:
            new_atoms.append(Atom("=", (variable, variable)))
    return ConjunctiveQuery(new_atoms, query.free)


def freeze(query: ConjunctiveQuery) -> Tuple[Structure, Dict[Variable, object]]:
    """The canonical database of a CQ: variables become fresh nulls.

    Equality atoms are resolved: ``f = c`` pins the variable to the
    constant; ``f = f'`` shares one null.  Returns the structure and the
    variable→element table.
    """
    pinned: Dict[Variable, object] = {}
    merged: Dict[Variable, Variable] = {}

    def root(var: Variable) -> Variable:
        while var in merged:
            var = merged[var]
        return var

    for item in query.atoms:
        if not item.is_equality:
            continue
        left, right = item.args
        if isinstance(left, Variable) and isinstance(right, Variable):
            if root(left) != root(right):
                merged[root(left)] = root(right)
        elif isinstance(left, Variable):
            pinned[root(left)] = right
        elif isinstance(right, Variable):
            pinned[root(right)] = left

    table: Dict[Variable, object] = {}
    counter = [0]

    def element_of(var: Variable) -> object:
        representative = root(var)
        found = table.get(representative)
        if found is None:
            found = pinned.get(representative)
            if found is None:
                counter[0] += 1
                found = Null(-counter[0])
            table[representative] = found
        table[var] = found
        return found

    facts: List[Atom] = []
    for item in query.atoms:
        if item.is_equality:
            for arg in item.args:
                if isinstance(arg, Variable):
                    element_of(arg)
            continue
        args = []
        for arg in item.args:
            if isinstance(arg, Variable):
                args.append(element_of(arg))
            else:
                args.append(arg)
        facts.append(Atom(item.pred, tuple(args)))
    return Structure(facts), table


def cq_subsumes(general: ConjunctiveQuery, specific: ConjunctiveQuery) -> bool:
    """Whether *general* contains *specific* (as queries).

    ``True`` iff every database satisfying *specific* satisfies
    *general* — decided by homomorphism into the frozen canonical
    database of *specific*, with free variables pinned pairwise.
    Queries must have the same number of free variables.
    """
    if len(general.free) != len(specific.free):
        return False
    general_n = _normalized(general)
    specific_n = _normalized(specific)
    if specific_n is None:
        return True  # an unsatisfiable query is contained in anything
    if general_n is None:
        return False
    canonical, table = _frozen(specific_n)
    binding: Dict[Variable, object] = {}
    for mine, theirs in zip(general_n.free, specific_n.free):
        target = table.get(theirs)
        if target is None:
            return False  # free variable of specific never materialised
        existing = binding.get(mine)
        if existing is not None and existing != target:
            return False
        binding[mine] = target
    return find_homomorphism(general_n.atoms, canonical, binding) is not None  # type: ignore[arg-type]


def cq_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Logical equivalence of two CQs (containment both ways)."""
    return cq_subsumes(left, right) and cq_subsumes(right, left)


def minimize_ucq(disjuncts: List[ConjunctiveQuery]) -> List[ConjunctiveQuery]:
    """Drop disjuncts subsumed by another disjunct.

    Keeps the first representative of each equivalence class, and every
    query not contained in a kept one.  The result denotes the same UCQ.
    """
    kept: List[ConjunctiveQuery] = []
    for candidate in sorted(disjuncts, key=lambda q: (len(q.atoms), q.width, str(q))):
        if any(cq_subsumes(existing, candidate) for existing in kept):
            continue
        kept = [existing for existing in kept if not cq_subsumes(candidate, existing)]
        kept.append(candidate)
    return kept


def ucq_subsumes(general: UnionOfConjunctiveQueries, specific: UnionOfConjunctiveQueries) -> bool:
    """Whether every disjunct of *specific* is contained in some
    disjunct of *general* (this is exactly UCQ containment, by the
    canonical-database argument)."""
    return all(
        any(cq_subsumes(g, s) for g in general.disjuncts)
        for s in specific.disjuncts
    )


def ucq_equivalent(left: UnionOfConjunctiveQueries, right: UnionOfConjunctiveQueries) -> bool:
    """UCQ equivalence (containment both ways)."""
    return ucq_subsumes(left, right) and ucq_subsumes(right, left)
