"""Piece-wise UCQ rewriting: the executable face of BDD.

Definition 2 of the paper: ``T`` is BDD iff every query Φ has a UCQ
rewriting Φ′ with ``T, D ⊨ Φ ⟺ D ⊨ Φ′`` for all D.  This module
computes Φ′ by the classical resolution-style procedure (PerfectRef /
XRewrite family) for single-head rules:

* **rewriting step** — an atom α of a disjunct is resolved against a
  rule head, replacing α by the (renamed) rule body, subject to the
  applicability condition on existential variables: the term unified
  with an existential variable must be a variable occurring nowhere
  else in the query and not free;

* **factorisation step** — two atoms with the same predicate are
  unified into one, which can enable a rewriting step that the
  applicability condition would otherwise block (needed e.g. for the
  paper's Example 7 theory, where ``E(x,y) ∧ E(x',y)`` must be
  factorised before the TGD ``E(x,y) ⇒ ∃z E(y,z)`` can resolve).

Saturation of this procedure is a *certificate* that the input query is
FO-rewritable under T; exhaustion of the step budget leaves the status
unknown (BDD is undecidable, so a budget is unavoidable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import BudgetedConfig, OnBudget
from ..errors import RewritingBudgetExceeded, RuleError
from ..lf.atoms import Atom
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Rule, Theory
from ..lf.terms import Constant, Term, Variable
from .subsume import cq_subsumes, minimize_ucq, normalize_equalities
from .unify import Unifier


@dataclass
class RewriteConfig(BudgetedConfig):
    """Budgets and switches for the rewriting engine.

    Shares the library-wide budget contract
    (:class:`~repro.config.BudgetedConfig`): ``should_raise``,
    ``with_overrides``, and the :class:`~repro.config.OnBudget` enum
    (legacy strings accepted with a deprecation warning).

    Attributes
    ----------
    max_steps:
        Maximum number of (rewriting + factorisation) step applications.
    max_queries:
        Maximum number of distinct disjuncts generated.
    factorize:
        Enable the factorisation step (needed for completeness; can be
        switched off for ablation experiments).
    eager_subsumption:
        Prune a freshly generated disjunct that is contained in an
        already-kept one.  Keeps the closure small; the final result is
        minimised regardless.
    on_budget:
        :attr:`~repro.config.OnBudget.RAISE` (default) raises
        :class:`~repro.errors.RewritingBudgetExceeded`;
        :attr:`~repro.config.OnBudget.RETURN` stops quietly with
        ``saturated=False``.
    """

    max_steps: int = 20_000
    max_queries: int = 2_000
    factorize: bool = True
    eager_subsumption: bool = True
    on_budget: OnBudget = OnBudget.RAISE


@dataclass
class RewritingResult:
    """Outcome of a rewriting run.

    Attributes
    ----------
    ucq:
        The rewriting computed so far (complete iff ``saturated``).
    saturated:
        ``True`` iff the closure was reached: the UCQ is a certified
        positive first-order rewriting of the input query under the
        theory (witnessing Definition 2 for this query).
    steps:
        Number of step applications performed.
    generated:
        Number of distinct disjuncts ever generated (pre-minimisation).
    depth_bound:
        The paper's constant ``k_Ψ``, certified: each disjunct records
        how many resolution steps produced it, and a database match of
        a disjunct at resolution depth d yields the original query
        within d chase rounds.  Hence ``Chase(D,T) ⊨ Ψ`` implies
        ``Chase^{depth_bound}(D,T) ⊨ Ψ`` — the standard definition of
        BDD from Section 1.1, made effective.  (Factorisation steps do
        not count: a factored match *is* a match of its parent.)
    """

    ucq: UnionOfConjunctiveQueries
    saturated: bool
    steps: int
    generated: int
    depth_bound: int = 0

    @property
    def max_width(self) -> int:
        """Largest variable count among disjuncts (κ's ingredient)."""
        return self.ucq.max_width

    def __str__(self) -> str:
        status = "saturated" if self.saturated else "budget-exhausted"
        return (
            f"RewritingResult({status}, {len(self.ucq)} disjuncts, "
            f"{self.steps} steps, max width {self.max_width})"
        )


def _rename_rule_apart(rule: Rule, query: ConjunctiveQuery, counter: int) -> Rule:
    """Rename *rule* so its variables are disjoint from the query's."""
    taken = query.variables() | {Variable(f"w{counter}")}
    return rule.rename_apart(taken, stem=f"w{counter}_")


def _applicable(
    unifier: Unifier,
    rule: Rule,
    target: Atom,
    query: ConjunctiveQuery,
) -> bool:
    """The applicability condition for existential variables.

    For each existential variable ``z`` of the (renamed) rule, the
    unification class of ``z`` may contain, besides ``z`` itself, only
    query variables that occur in the query *exclusively inside the
    resolved atom* and are not free.  Constants, free variables,
    rule-frontier variables, shared query variables, and other
    existential variables in the class all block the step — the witness
    produced by the chase is a fresh null that cannot coincide with any
    of those.
    """
    occurrences: Dict[Variable, int] = {}
    inside_target: Dict[Variable, int] = {}
    for item in query.atoms:
        for arg in item.args:
            if isinstance(arg, Variable):
                occurrences[arg] = occurrences.get(arg, 0) + 1
                if item == target:
                    inside_target[arg] = inside_target.get(arg, 0) + 1
    free = set(query.free)
    existentials = rule.existential_variables()
    query_vars = query.variables()

    for z in existentials:
        for member in unifier.class_of(z):
            if member == z:
                continue
            if isinstance(member, Constant):
                return False
            if member in existentials:
                return False  # two distinct witnesses forced equal
            if member in query_vars:
                if member in free:
                    return False
                if occurrences.get(member, 0) != inside_target.get(member, 0):
                    return False  # occurs elsewhere in the query
            else:
                return False  # a universal variable of the rule
    return True


def _rewriting_step(
    query: ConjunctiveQuery,
    target: Atom,
    rule: Rule,
) -> "Optional[ConjunctiveQuery]":
    """Resolve *target* (an atom of *query*) against *rule*'s head.

    Returns the rewritten query, or ``None`` when unification fails or
    the applicability condition blocks the step.
    """
    head = rule.head_atom
    unifier = Unifier()
    if not unifier.unify_atoms(target, head):
        return None
    if rule.is_existential and not _applicable(unifier, rule, target, query):
        return None
    # Prefer free variables as class representatives, then other query
    # variables, so substitution keeps the query's schema readable.
    substitution = unifier.substitution(
        prefer=tuple(query.free) + tuple(sorted(query.variables() - set(query.free)))
    )
    new_atoms = [
        atom.substitute(substitution)  # type: ignore[arg-type]
        for atom in query.atoms
        if atom != target
    ]
    new_atoms.extend(
        atom.substitute(substitution) for atom in rule.body  # type: ignore[arg-type]
    )
    _protect_free_variables(query, substitution, new_atoms)
    return ConjunctiveQuery(new_atoms, query.free)


def _protect_free_variables(
    query: ConjunctiveQuery,
    substitution: Dict[Variable, Term],
    new_atoms: List[Atom],
) -> None:
    """Keep the free-variable schema stable across a substitution.

    When a free variable's image under *substitution* differs from
    itself (it was merged with a constant or another variable), append
    the equality atom ``f = image`` so that ``f`` still occurs in the
    query and the free tuple can stay unchanged.
    """
    for var in query.free:
        image = substitution.get(var, var)
        if image != var:
            new_atoms.append(Atom("=", (var, image)))


def _factorizations(query: ConjunctiveQuery) -> "Iterable[ConjunctiveQuery]":
    """All one-step factorisations: unify two same-predicate atoms.

    Sound (the result is contained in the original query) and needed to
    unblock rewriting steps whose existential witness occurs in several
    atoms.
    """
    atoms = [a for a in query.atoms if not a.is_equality]
    prefer = tuple(query.free) + tuple(sorted(query.variables() - set(query.free)))
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            left, right = atoms[i], atoms[j]
            if left.pred != right.pred or left.arity != right.arity:
                continue
            unifier = Unifier()
            if not unifier.unify_atoms(left, right):
                continue
            substitution = unifier.substitution(prefer=prefer)
            merged = [a.substitute(substitution) for a in query.atoms]  # type: ignore[arg-type]
            _protect_free_variables(query, substitution, merged)
            yield ConjunctiveQuery(merged, query.free)


def rewrite(
    query: ConjunctiveQuery,
    theory: Theory,
    config: "Optional[RewriteConfig]" = None,
) -> RewritingResult:
    """Compute the UCQ rewriting of *query* under *theory*.

    Requires single-head rules (convert multi-head theories with
    :mod:`repro.transforms.multihead` first).

    Raises
    ------
    RewritingBudgetExceeded
        When the budget is hit and ``config.should_raise``.
    RuleError
        If the theory contains a multi-head rule.
    """
    config = config or RewriteConfig()
    for rule in theory.rules:
        if not rule.is_single_head:
            raise RuleError(f"rewriting requires single-head rules, got: {rule}")

    start = normalize_equalities(query)
    if start is None:
        return RewritingResult(UnionOfConjunctiveQueries([]), True, 0, 0)

    seen: Set[ConjunctiveQuery] = {start.canonical()}
    kept: List[ConjunctiveQuery] = [start]
    depth_of: Dict[ConjunctiveQuery, int] = {start.canonical(): 0}
    worklist: List[Tuple[ConjunctiveQuery, int]] = [(start, 0)]
    steps = 0
    generated = 1
    counter = 0
    saturated = True

    def consider(
        candidate: "Optional[ConjunctiveQuery]",
        depth: int,
        prunable: bool = True,
    ) -> None:
        """Queue *candidate* unless it is a duplicate.

        Eager subsumption pruning is applied only when *prunable*:
        factorisation results are *always* contained in their parent, so
        pruning them would (incorrectly) prevent the very rewriting
        steps factorisation exists to enable.
        """
        nonlocal generated
        if candidate is None:
            return
        normal = normalize_equalities(candidate)
        if normal is None:
            return
        marker = normal.canonical()
        if marker in seen:
            if depth < depth_of.get(marker, depth):
                depth_of[marker] = depth
            return
        seen.add(marker)
        depth_of[marker] = depth
        generated += 1
        if prunable and config.eager_subsumption and any(
            cq_subsumes(existing, normal) for existing in kept
        ):
            return
        kept.append(normal)
        worklist.append((normal, depth))

    while worklist:
        if steps >= config.max_steps or len(seen) >= config.max_queries:
            saturated = False
            if config.should_raise:
                raise RewritingBudgetExceeded(
                    f"rewriting budget exhausted ({steps} steps, "
                    f"{len(seen)} queries)",
                    steps=steps,
                    queries=len(seen),
                )
            break
        current, current_depth = worklist.pop()
        for target in current.atoms:
            if target.is_equality:
                continue
            for rule in theory.rules:
                if rule.head_atom.pred != target.pred:
                    continue
                counter += 1
                renamed = _rename_rule_apart(rule, current, counter)
                steps += 1
                consider(_rewriting_step(current, target, renamed), current_depth + 1)
        if config.factorize:
            for factored in _factorizations(current):
                steps += 1
                # a match of the factored query is a match of current:
                # no chase step involved, so the depth does not grow
                consider(factored, current_depth, prunable=False)

    final = minimize_ucq(kept)
    depth_bound = max(
        (depth_of.get(disjunct.canonical(), 0) for disjunct in final),
        default=0,
    )
    return RewritingResult(
        ucq=UnionOfConjunctiveQueries(final),
        saturated=saturated,
        steps=steps,
        generated=generated,
        depth_bound=depth_bound,
    )
