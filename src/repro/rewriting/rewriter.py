"""Piece-wise UCQ rewriting: the executable face of BDD.

Definition 2 of the paper: ``T`` is BDD iff every query Φ has a UCQ
rewriting Φ′ with ``T, D ⊨ Φ ⟺ D ⊨ Φ′`` for all D.  This module
computes Φ′ by the classical resolution-style procedure (PerfectRef /
XRewrite family) for single-head rules:

* **rewriting step** — an atom α of a disjunct is resolved against a
  rule head, replacing α by the (renamed) rule body, subject to the
  applicability condition on existential variables: the term unified
  with an existential variable must be a variable occurring nowhere
  else in the query and not free;

* **factorisation step** — two atoms with the same predicate are
  unified into one, which can enable a rewriting step that the
  applicability condition would otherwise block (needed e.g. for the
  paper's Example 7 theory, where ``E(x,y) ∧ E(x',y)`` must be
  factorised before the TGD ``E(x,y) ⇒ ∃z E(y,z)`` can resolve).

Saturation of this procedure is a *certificate* that the input query is
FO-rewritable under T; exhaustion of the step budget leaves the status
unknown (BDD is undecidable, so a budget is unavoidable).

Engine architecture
-------------------
:func:`rewrite` is a worklist engine built for throughput on the
rewriting-set explosion both follow-up papers identify as the central
computational obstacle:

* the worklist holds *canonical forms* (variables ``f0…/v0…``), so one
  reserved-namespace rule instance per rule (``_w{i}_{j}`` variables)
  is provably disjoint from every query it resolves against — the
  per-step :meth:`~repro.lf.rules.Rule.rename_apart` of the legacy
  engine disappears entirely;
* rules are dispatched from a per-(predicate, arity) table, and cheap
  *applicability prefilters* (head constants clashing with the target,
  existential head positions unified with a constant or a free
  variable) reject hopeless resolution attempts before any unifier is
  built;
* the eager-subsumption frontier is a
  :class:`~repro.rewriting.index.SubsumptionIndex`: a fresh disjunct is
  homomorphism-checked only against structurally comparable kept
  disjuncts instead of the whole UCQ;
* every run records a :class:`~repro.rewriting.stats.RewriteStats`
  (step/candidate funnel, index effectiveness, phase wall times) on
  :attr:`RewritingResult.stats`.

:func:`legacy_rewrite` keeps the original quadratic loop callable as
the ablation baseline; the property suite
(``tests/property/test_rewrite_parity.py``) holds the two engines to
UCQ-equivalent saturated outputs.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import BudgetedConfig, OnBudget
from ..errors import RewritingBudgetExceeded, RuleError
from ..runtime.guard import RuntimeGuard, StopReason
from ..lf.atoms import Atom
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Rule, Theory
from ..lf.terms import Constant, Term, Variable
from .index import SubsumptionIndex, minimize_indexed
from .stats import RewriteStats
from .subsume import cq_subsumes, minimize_ucq, normalize_equalities
from .unify import Unifier


@dataclass
class RewriteConfig(BudgetedConfig):
    """Budgets and switches for the rewriting engine.

    Shares the library-wide budget contract
    (:class:`~repro.config.BudgetedConfig`): ``should_raise``,
    ``with_overrides``, and the :class:`~repro.config.OnBudget` enum
    (legacy strings accepted with a deprecation warning).

    Attributes
    ----------
    max_steps:
        Maximum number of (rewriting + factorisation) step applications.
    max_queries:
        Maximum number of distinct disjuncts generated.
    factorize:
        Enable the factorisation step (needed for completeness; can be
        switched off for ablation experiments).
    eager_subsumption:
        Prune a freshly generated disjunct that is contained in an
        already-kept one.  Keeps the closure small; the final result is
        minimised regardless.
    on_budget:
        :attr:`~repro.config.OnBudget.RAISE` (default) raises
        :class:`~repro.errors.RewritingBudgetExceeded`;
        :attr:`~repro.config.OnBudget.RETURN` stops quietly with
        ``saturated=False``.
    """

    max_steps: int = 20_000
    max_queries: int = 2_000
    factorize: bool = True
    eager_subsumption: bool = True
    on_budget: OnBudget = OnBudget.RAISE


@dataclass
class RewritingResult:
    """Outcome of a rewriting run.

    Attributes
    ----------
    ucq:
        The rewriting computed so far (complete iff ``saturated``).
    saturated:
        ``True`` iff the closure was reached: the UCQ is a certified
        positive first-order rewriting of the input query under the
        theory (witnessing Definition 2 for this query).
    steps:
        Number of step applications performed.
    generated:
        Number of distinct disjuncts ever generated (pre-minimisation).
    depth_bound:
        The paper's constant ``k_Ψ``, certified: each disjunct records
        how many resolution steps produced it, and a database match of
        a disjunct at resolution depth d yields the original query
        within d chase rounds.  Hence ``Chase(D,T) ⊨ Ψ`` implies
        ``Chase^{depth_bound}(D,T) ⊨ Ψ`` — the standard definition of
        BDD from Section 1.1, made effective.  (Factorisation steps do
        not count: a factored match *is* a match of its parent.)
    stats:
        Per-run instrumentation (:class:`~repro.rewriting.stats.RewriteStats`).
        ``None`` only on hand-built results.
    stopped_reason:
        Why the run ended (:class:`~repro.runtime.StopReason`):
        ``fixpoint`` iff :attr:`saturated`, ``budget`` on an exhausted
        step/query budget, and ``deadline``/``cancelled``/``memory``
        when a runtime guard tripped.
    """

    ucq: UnionOfConjunctiveQueries
    saturated: bool
    steps: int
    generated: int
    depth_bound: int = 0
    stats: "Optional[RewriteStats]" = None
    stopped_reason: StopReason = StopReason.FIXPOINT

    @property
    def max_width(self) -> int:
        """Largest variable count among disjuncts (κ's ingredient).

        ``0`` for the empty rewriting — an unsatisfiable query rewrites
        to the empty UCQ (``false``), and hand-built results may carry
        ``ucq=None``; neither case may raise (regression: the κ
        aggregation and ``__str__`` both touch this on every result).
        """
        if self.ucq is None or len(self.ucq) == 0:
            return 0
        return self.ucq.max_width

    def __str__(self) -> str:
        status = "saturated" if self.saturated else "budget-exhausted"
        disjuncts = 0 if self.ucq is None else len(self.ucq)
        return (
            f"RewritingResult({status}, {disjuncts} disjuncts, "
            f"{self.steps} steps, max width {self.max_width})"
        )


# ----------------------------------------------------------------------
# Shared step primitives (used by both engines and tested directly)
# ----------------------------------------------------------------------

def _rename_rule_apart(rule: Rule, query: ConjunctiveQuery, counter: int) -> Rule:
    """Rename *rule* so its variables are disjoint from the query's."""
    taken = query.variables() | {Variable(f"w{counter}")}
    return rule.rename_apart(taken, stem=f"w{counter}_")


def _applicable(
    unifier: Unifier,
    rule: Rule,
    target: Atom,
    query: ConjunctiveQuery,
) -> bool:
    """The applicability condition for existential variables.

    For each existential variable ``z`` of the (renamed) rule, the
    unification class of ``z`` may contain, besides ``z`` itself, only
    query variables that occur in the query *exclusively inside the
    resolved atom* and are not free.  Constants, free variables,
    rule-frontier variables, shared query variables, and other
    existential variables in the class all block the step — the witness
    produced by the chase is a fresh null that cannot coincide with any
    of those.
    """
    occurrences: Dict[Variable, int] = {}
    inside_target: Dict[Variable, int] = {}
    for item in query.atoms:
        for arg in item.args:
            if isinstance(arg, Variable):
                occurrences[arg] = occurrences.get(arg, 0) + 1
                if item == target:
                    inside_target[arg] = inside_target.get(arg, 0) + 1
    return _applicable_classes(
        unifier,
        rule.existential_variables(),
        occurrences,
        inside_target,
        set(query.free),
        query.variables(),
    )


def _applicable_classes(
    unifier: Unifier,
    existentials,
    occurrences: Dict[Variable, int],
    inside_target: Dict[Variable, int],
    free: Set[Variable],
    query_vars,
) -> bool:
    """The class-membership core of the applicability condition.

    Factored out so the worklist engine can feed it per-query memoised
    occurrence maps instead of recomputing them per (rule, atom) pair.
    """
    for z in existentials:
        for member in unifier.class_of(z):
            if member == z:
                continue
            if isinstance(member, Constant):
                return False
            if member in existentials:
                return False  # two distinct witnesses forced equal
            if member in query_vars:
                if member in free:
                    return False
                if occurrences.get(member, 0) != inside_target.get(member, 0):
                    return False  # occurs elsewhere in the query
            else:
                return False  # a universal variable of the rule
    return True


def _rewriting_step(
    query: ConjunctiveQuery,
    target: Atom,
    rule: Rule,
) -> "Optional[ConjunctiveQuery]":
    """Resolve *target* (an atom of *query*) against *rule*'s head.

    Returns the rewritten query, or ``None`` when unification fails or
    the applicability condition blocks the step.
    """
    head = rule.head_atom
    unifier = Unifier()
    if not unifier.unify_atoms(target, head):
        return None
    if rule.is_existential and not _applicable(unifier, rule, target, query):
        return None
    # Prefer free variables as class representatives, then other query
    # variables, so substitution keeps the query's schema readable.
    substitution = unifier.substitution(
        prefer=tuple(query.free) + tuple(sorted(query.variables() - set(query.free)))
    )
    new_atoms = [
        atom.substitute(substitution)  # type: ignore[arg-type]
        for atom in query.atoms
        if atom != target
    ]
    new_atoms.extend(
        atom.substitute(substitution) for atom in rule.body  # type: ignore[arg-type]
    )
    _protect_free_variables(query, substitution, new_atoms)
    return ConjunctiveQuery(new_atoms, query.free)


def _protect_free_variables(
    query: ConjunctiveQuery,
    substitution: Dict[Variable, Term],
    new_atoms: List[Atom],
) -> None:
    """Keep the free-variable schema stable across a substitution.

    When a free variable's image under *substitution* differs from
    itself (it was merged with a constant or another variable), append
    the equality atom ``f = image`` so that ``f`` still occurs in the
    query and the free tuple can stay unchanged.
    """
    for var in query.free:
        image = substitution.get(var, var)
        if image != var:
            new_atoms.append(Atom("=", (var, image)))


def _factorizations(
    query: ConjunctiveQuery,
    prefer: "Optional[Tuple[Variable, ...]]" = None,
) -> "Iterable[ConjunctiveQuery]":
    """All one-step factorisations: unify two same-predicate atoms.

    Sound (the result is contained in the original query) and needed to
    unblock rewriting steps whose existential witness occurs in several
    atoms.  Atoms are bucketed by (predicate, arity) so only genuinely
    unifiable pairs are enumerated; *prefer* lets the worklist engine
    pass its per-query representative order instead of recomputing it.
    """
    if prefer is None:
        prefer = tuple(query.free) + tuple(
            sorted(query.variables() - set(query.free))
        )
    buckets: Dict[Tuple[str, int], List[Atom]] = {}
    for item in query.atoms:
        if not item.is_equality:
            buckets.setdefault((item.pred, item.arity), []).append(item)
    for bucket in buckets.values():
        for i in range(len(bucket)):
            for j in range(i + 1, len(bucket)):
                unifier = Unifier()
                if not unifier.unify_atoms(bucket[i], bucket[j]):
                    continue
                substitution = unifier.substitution(prefer=prefer)
                merged = [a.substitute(substitution) for a in query.atoms]  # type: ignore[arg-type]
                _protect_free_variables(query, substitution, merged)
                yield ConjunctiveQuery(merged, query.free)


# ----------------------------------------------------------------------
# Prepared rules: memoised rename-apart instances with prefilters
# ----------------------------------------------------------------------

class _PreparedRule:
    """One rule, renamed once into the reserved ``_w`` namespace.

    The worklist engine only ever resolves against *canonical* queries
    (variables named ``f0…``/``v0…``), so a single instance whose
    variables are ``_w{rule}_{j}`` is disjoint from every query for the
    whole run — the legacy engine's per-step rename is memoised away.
    The precomputed head shape powers the applicability prefilter.
    """

    __slots__ = (
        "rule",
        "head",
        "body",
        "existentials",
        "is_existential",
        "const_positions",
        "exist_positions",
    )

    def __init__(self, rule: Rule, index: int):
        mapping = {
            var: Variable(f"_w{index}_{j}")
            for j, var in enumerate(sorted(rule.variables()))
        }
        instance = rule.substitute(mapping)
        self.rule = instance
        self.head = instance.head_atom
        self.body = instance.body
        self.existentials = instance.existential_variables()
        self.is_existential = bool(self.existentials)
        self.const_positions: Tuple[Tuple[int, Constant], ...] = tuple(
            (i, arg)
            for i, arg in enumerate(self.head.args)
            if isinstance(arg, Constant)
        )
        self.exist_positions: Tuple[int, ...] = tuple(
            i for i, arg in enumerate(self.head.args) if arg in self.existentials
        )

    def prefiltered(self, target: Atom, free: Set[Variable]) -> bool:
        """``True`` iff the resolution is *provably* hopeless, cheaply.

        Sound rejections only: a head constant clashing with a target
        constant fails unification; a target constant or free variable
        at an existential head position lands in the existential's
        unification class and fails the applicability condition.
        """
        args = target.args
        for i, const in self.const_positions:
            arg = args[i]
            if isinstance(arg, Constant) and arg != const:
                return True
        for i in self.exist_positions:
            arg = args[i]
            if isinstance(arg, Constant) or arg in free:
                return True
        return False


def _prepare_rules(theory: Theory) -> Dict[Tuple[str, int], List[_PreparedRule]]:
    """The per-(head predicate, arity) dispatch table of prepared rules."""
    table: Dict[Tuple[str, int], List[_PreparedRule]] = {}
    for index, rule in enumerate(theory.rules):
        prepared = _PreparedRule(rule, index)
        key = (prepared.head.pred, prepared.head.arity)
        table.setdefault(key, []).append(prepared)
    return table


def _require_single_head(theory: Theory) -> None:
    for rule in theory.rules:
        if not rule.is_single_head:
            raise RuleError(f"rewriting requires single-head rules, got: {rule}")


# ----------------------------------------------------------------------
# The worklist engine
# ----------------------------------------------------------------------

def rewrite(
    query: ConjunctiveQuery,
    theory: Theory,
    config: "Optional[RewriteConfig]" = None,
    **overrides,
) -> RewritingResult:
    """Compute the UCQ rewriting of *query* under *theory*.

    The indexed worklist engine (see the module docstring); the
    saturated output is UCQ-equivalent to :func:`legacy_rewrite`'s,
    which the differential property suite enforces.  Requires
    single-head rules (convert multi-head theories with
    :mod:`repro.transforms.multihead` first).  Keyword overrides
    (``max_steps=...``, ``wall_ms=...``) are applied on top of *config*
    via :meth:`~repro.config.BudgetedConfig.with_overrides`.

    Raises
    ------
    RewritingBudgetExceeded
        When the budget is hit and ``config.should_raise``.
    DeadlineExceeded / Cancelled / MemoryBudgetExceeded
        When a runtime guard trips and ``config.should_raise``.
    RuleError
        If the theory contains a multi-head rule.
    """
    config = (config or RewriteConfig()).with_overrides(**overrides)
    _require_single_head(theory)
    stats = RewriteStats(engine="indexed")
    run_start = time.perf_counter()
    guard = RuntimeGuard.from_config(config, "rewrite")

    start = normalize_equalities(query)
    if start is None:
        stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
        return RewritingResult(
            UnionOfConjunctiveQueries([]), True, 0, 0, stats=stats
        )

    dispatch = _prepare_rules(theory)
    stats.rule_instances = len(theory.rules)

    index = SubsumptionIndex()
    start_marker = start.canonical()
    seen: Set[ConjunctiveQuery] = {start_marker}
    pruned: Set[ConjunctiveQuery] = set()
    kept: List[ConjunctiveQuery] = [start]
    index.add(start)
    depth_of: Dict[ConjunctiveQuery, int] = {start_marker: 0}
    #: The worklist holds canonical forms: their variables are drawn
    #: from the reserved ``f*``/``v*`` pools, disjoint from every
    #: prepared rule instance by construction.  It is a best-first
    #: min-heap on (atom count, width): the most general disjuncts are
    #: expanded first, so strong subsumers reach the frontier early and
    #: the eager pruning bites sooner.
    tick = 0
    worklist: List[Tuple[int, int, int, ConjunctiveQuery, int]] = [
        (len(start_marker.atoms), start_marker.width, tick, start_marker, 0)
    ]
    steps = 0
    generated = 1
    saturated = True
    stopped_reason = StopReason.FIXPOINT
    stats.kept = 1

    def consider(
        candidate: "Optional[ConjunctiveQuery]",
        depth: int,
        prunable: bool = True,
    ) -> None:
        """Queue *candidate* unless it is a duplicate.

        Eager subsumption pruning is applied only when *prunable*:
        factorisation results are *always* contained in their parent, so
        pruning them would (incorrectly) prevent the very rewriting
        steps factorisation exists to enable.
        """
        nonlocal generated
        if candidate is None:
            return
        stats.candidates += 1
        normal = normalize_equalities(candidate)
        if normal is None:
            stats.unsatisfiable += 1
            return
        marker = normal.canonical()
        if marker in seen:
            if depth < depth_of.get(marker, depth):
                depth_of[marker] = depth
            # A query pruned on an earlier (prunable) arrival must be
            # resurrected when it re-arrives as a kept query's
            # factorisation: those are kept unconditionally for
            # completeness, and the first arrival's seen-marker must
            # not veto that (the pruned copy never ran its own rewrite
            # steps, so dropping this one would cut a derivation chain).
            if prunable or marker not in pruned:
                stats.duplicates += 1
                return
            pruned.discard(marker)
        else:
            seen.add(marker)
            depth_of[marker] = depth
            generated += 1
        if prunable and config.eager_subsumption:
            probe_start = time.perf_counter()
            stats.index_probes += 1
            candidates = index.subsumer_candidates(normal)
            stats.pairwise_checks_avoided += len(index) - len(candidates)
            contained = False
            for existing in candidates:
                stats.subsumption_checks += 1
                if cq_subsumes(existing, normal):
                    contained = True
                    break
            stats.subsume_ms += (time.perf_counter() - probe_start) * 1000.0
            if contained:
                stats.subsumed += 1
                pruned.add(marker)
                # The subsumer covers this query's answers but not
                # necessarily its *descendants*: factorisation can
                # merge atoms and unlock an existential rule that is
                # blocked on the (more general) subsumer.  Keep the
                # factorisation closure alive so pruning never cuts a
                # derivation chain — only the pruned query's own
                # rewrite steps, which the subsumer's do cover.
                if config.factorize:
                    for factored in _factorizations(normal):
                        stats.factor_steps += 1
                        consider(factored, depth, prunable=True)
                return
        kept.append(normal)
        index.add(normal)
        stats.kept += 1
        nonlocal tick
        tick += 1
        heapq.heappush(
            worklist, (len(marker.atoms), marker.width, tick, marker, depth)
        )

    while worklist:
        reason = guard.check()
        if reason is not None:
            saturated = False
            stopped_reason = reason
            if config.should_raise:
                stats.steps = steps
                stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
                raise guard.exception(reason, stats=stats)
            break
        if steps >= config.max_steps or len(seen) >= config.max_queries:
            saturated = False
            stopped_reason = StopReason.BUDGET
            if config.should_raise:
                stats.steps = steps
                stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
                raise RewritingBudgetExceeded(
                    f"rewriting budget exhausted ({steps} steps, "
                    f"{len(seen)} queries)",
                    steps=steps,
                    queries=len(seen),
                    stats=stats,
                )
            break
        _, _, _, current, current_depth = heapq.heappop(worklist)

        phase_start = time.perf_counter()
        free_set = set(current.free)
        query_vars = current.variables()
        prefer = tuple(current.free) + tuple(sorted(query_vars - free_set))
        occurrences: Dict[Variable, int] = {}
        for item in current.atoms:
            for arg in item.args:
                if isinstance(arg, Variable):
                    occurrences[arg] = occurrences.get(arg, 0) + 1

        for target in current.atoms:
            if target.is_equality:
                continue
            bucket = dispatch.get((target.pred, target.arity))
            if not bucket:
                continue
            inside_target: Dict[Variable, int] = {}
            for arg in target.args:
                if isinstance(arg, Variable):
                    inside_target[arg] = inside_target.get(arg, 0) + 1
            for prepared in bucket:
                if prepared.prefiltered(target, free_set):
                    stats.prefilter_skips += 1
                    continue
                steps += 1
                stats.rewrite_steps += 1
                unifier = Unifier()
                if not unifier.unify_atoms(target, prepared.head):
                    continue
                if prepared.is_existential and not _applicable_classes(
                    unifier,
                    prepared.existentials,
                    occurrences,
                    inside_target,
                    free_set,
                    query_vars,
                ):
                    continue
                substitution = unifier.substitution(prefer=prefer)
                new_atoms = [
                    item.substitute(substitution)  # type: ignore[arg-type]
                    for item in current.atoms
                    if item != target
                ]
                new_atoms.extend(
                    item.substitute(substitution)  # type: ignore[arg-type]
                    for item in prepared.body
                )
                _protect_free_variables(current, substitution, new_atoms)
                consider(
                    ConjunctiveQuery(new_atoms, current.free), current_depth + 1
                )
        stats.rewrite_ms += (time.perf_counter() - phase_start) * 1000.0

        if config.factorize:
            phase_start = time.perf_counter()
            for factored in _factorizations(current, prefer=prefer):
                steps += 1
                stats.factor_steps += 1
                # a match of the factored query is a match of current:
                # no chase step involved, so the depth does not grow
                consider(factored, current_depth, prunable=False)
            stats.factor_ms += (time.perf_counter() - phase_start) * 1000.0

    phase_start = time.perf_counter()
    final = minimize_indexed(kept, stats)
    stats.minimize_ms = (time.perf_counter() - phase_start) * 1000.0
    depth_bound = max(
        (depth_of.get(disjunct.canonical(), 0) for disjunct in final),
        default=0,
    )
    stats.steps = steps
    stats.minimized = len(final)
    stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
    return RewritingResult(
        ucq=UnionOfConjunctiveQueries(final),
        saturated=saturated,
        steps=steps,
        generated=generated,
        depth_bound=depth_bound,
        stats=stats,
        stopped_reason=stopped_reason,
    )


# ----------------------------------------------------------------------
# The legacy engine (ablation baseline)
# ----------------------------------------------------------------------

def legacy_rewrite(
    query: ConjunctiveQuery,
    theory: Theory,
    config: "Optional[RewriteConfig]" = None,
    **overrides,
) -> RewritingResult:
    """The pre-index quadratic loop, kept callable for ablation.

    Rule instances are renamed apart per step and every fresh disjunct
    is pairwise ``cq_subsumes``-checked against the whole frontier —
    exactly the baseline ``BENCH_rewrite.json`` and the differential
    property suite compare the worklist engine against.  Semantics
    (budgets, guards, exceptions, saturation) match :func:`rewrite`.
    """
    config = (config or RewriteConfig()).with_overrides(**overrides)
    _require_single_head(theory)
    stats = RewriteStats(engine="legacy")
    run_start = time.perf_counter()
    guard = RuntimeGuard.from_config(config, "rewrite")

    start = normalize_equalities(query)
    if start is None:
        stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
        return RewritingResult(
            UnionOfConjunctiveQueries([]), True, 0, 0, stats=stats
        )

    seen: Set[ConjunctiveQuery] = {start.canonical()}
    pruned: Set[ConjunctiveQuery] = set()
    kept: List[ConjunctiveQuery] = [start]
    depth_of: Dict[ConjunctiveQuery, int] = {start.canonical(): 0}
    worklist: List[Tuple[ConjunctiveQuery, int]] = [(start, 0)]
    steps = 0
    generated = 1
    counter = 0
    saturated = True
    stopped_reason = StopReason.FIXPOINT
    stats.kept = 1

    def consider(
        candidate: "Optional[ConjunctiveQuery]",
        depth: int,
        prunable: bool = True,
    ) -> None:
        nonlocal generated
        if candidate is None:
            return
        stats.candidates += 1
        normal = normalize_equalities(candidate)
        if normal is None:
            stats.unsatisfiable += 1
            return
        marker = normal.canonical()
        if marker in seen:
            if depth < depth_of.get(marker, depth):
                depth_of[marker] = depth
            # see rewrite(): a pruned query re-arriving through a kept
            # query's factorisation is resurrected — the non-prunable
            # arrival must be kept or its rewrite steps never run
            if prunable or marker not in pruned:
                stats.duplicates += 1
                return
            pruned.discard(marker)
        else:
            seen.add(marker)
            depth_of[marker] = depth
            generated += 1
        if prunable and config.eager_subsumption:
            stats.subsumption_checks += len(kept)
            if any(cq_subsumes(existing, normal) for existing in kept):
                stats.subsumed += 1
                pruned.add(marker)
                # see rewrite(): a pruned query's factorisations may
                # unlock rules its subsumer never reaches — keep the
                # factorisation closure alive.
                if config.factorize:
                    for factored in _factorizations(normal):
                        stats.factor_steps += 1
                        consider(factored, depth, prunable=True)
                return
        kept.append(normal)
        stats.kept += 1
        worklist.append((normal, depth))

    while worklist:
        reason = guard.check()
        if reason is not None:
            saturated = False
            stopped_reason = reason
            if config.should_raise:
                stats.steps = steps
                stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
                raise guard.exception(reason, stats=stats)
            break
        if steps >= config.max_steps or len(seen) >= config.max_queries:
            saturated = False
            stopped_reason = StopReason.BUDGET
            if config.should_raise:
                stats.steps = steps
                stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
                raise RewritingBudgetExceeded(
                    f"rewriting budget exhausted ({steps} steps, "
                    f"{len(seen)} queries)",
                    steps=steps,
                    queries=len(seen),
                    stats=stats,
                )
            break
        current, current_depth = worklist.pop()
        for target in current.atoms:
            if target.is_equality:
                continue
            for rule in theory.rules:
                if rule.head_atom.pred != target.pred:
                    continue
                counter += 1
                renamed = _rename_rule_apart(rule, current, counter)
                steps += 1
                stats.rewrite_steps += 1
                stats.rule_instances += 1
                consider(_rewriting_step(current, target, renamed), current_depth + 1)
        if config.factorize:
            for factored in _factorizations(current):
                steps += 1
                stats.factor_steps += 1
                # a match of the factored query is a match of current:
                # no chase step involved, so the depth does not grow
                consider(factored, current_depth, prunable=False)

    phase_start = time.perf_counter()
    final = minimize_ucq(kept)
    stats.minimize_ms = (time.perf_counter() - phase_start) * 1000.0
    depth_bound = max(
        (depth_of.get(disjunct.canonical(), 0) for disjunct in final),
        default=0,
    )
    stats.steps = steps
    stats.minimized = len(final)
    stats.wall_ms = (time.perf_counter() - run_start) * 1000.0
    return RewritingResult(
        ucq=UnionOfConjunctiveQueries(final),
        saturated=saturated,
        steps=steps,
        generated=generated,
        depth_bound=depth_bound,
        stats=stats,
        stopped_reason=stopped_reason,
    )
