"""Run-level instrumentation for the rewriting engine.

Every run of the indexed worklist engine (:func:`repro.rewriting.rewrite`)
records a :class:`RewriteStats`, exposed on
:attr:`repro.rewriting.RewritingResult.stats` and surfaced by the CLI's
``rewrite --stats`` / ``--json`` modes — the same contract the chase
(:class:`~repro.chase.stats.ChaseStats`) and the finite-model search
(:class:`~repro.fc.SearchStats`) speak.

The counters tell the story of the worklist run:

* *steps* — rule applications and factorisations actually attempted
  (the budgeted quantity);
* *candidates / duplicates / unsatisfiable / subsumed / kept* — the
  funnel every generated disjunct passes through: raw candidates, minus
  canonical-dedup hits, minus equality-contradiction drops, minus
  eager-subsumption prunes, equals the disjuncts kept on the frontier;
* *prefilter_skips* — (rule, atom) resolution attempts rejected by the
  per-(predicate, arity) applicability prefilter *before* any
  unification work;
* *index_probes / subsumption_checks / pairwise_checks_avoided* — how
  the :class:`~repro.rewriting.index.SubsumptionIndex` replaced the
  legacy quadratic frontier scan: each probe compares the candidate
  against only its structurally comparable group, and
  ``pairwise_checks_avoided`` counts the frontier entries the index
  filtered out without a homomorphism check;
* *rule_instances* — memoised rename-apart rule instances built (the
  legacy engine re-renamed one per step).

Wall times (``*_ms``) are the only nondeterministic fields; everything
else is a pure function of (query, theory, config), which the CLI
determinism tests rely on.  :data:`REWRITE_TIMING_FIELDS` lists them so
consumers comparing runs can strip them, mirroring
:data:`repro.chase.stats.TIMING_FIELDS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Keys of :meth:`RewriteStats.as_dict` that are *not* a pure function
#: of the run's inputs (wall-clock phase times) — excluded by
#: ``as_dict(timings=False)``; consumers comparing runs should strip
#: these.
REWRITE_TIMING_FIELDS = (
    "wall_ms",
    "rewrite_ms",
    "factor_ms",
    "subsume_ms",
    "minimize_ms",
)


@dataclass
class RewriteStats:
    """Aggregated instrumentation for one rewriting run.

    Attributes
    ----------
    engine:
        ``"indexed"`` (the worklist engine) or ``"legacy"``.
    steps:
        Step applications performed (rewriting + factorisation) — the
        quantity ``RewriteConfig.max_steps`` budgets.
    rewrite_steps / factor_steps:
        The split of ``steps`` by kind.
    candidates:
        Candidate disjuncts handed to the dedup/prune funnel.
    duplicates:
        Candidates dropped as canonical-form duplicates of a seen
        disjunct.
    unsatisfiable:
        Candidates dropped because equality normalisation proved them
        unsatisfiable.
    subsumed:
        Candidates pruned eagerly because a kept disjunct contains them.
    kept:
        Disjuncts kept on the frontier (pre-minimisation).
    prefilter_skips:
        (rule, atom) pairs rejected by the applicability prefilter
        before building a unifier.
    rule_instances:
        Memoised rename-apart rule instances prepared for the run.
    index_probes:
        Queries against the subsumption index.
    subsumption_checks:
        Homomorphism-backed ``cq_subsumes`` calls actually performed.
    pairwise_checks_avoided:
        Frontier entries the index filtered out as structurally
        incomparable (the legacy engine would have checked each).
    minimized:
        Disjuncts in the final minimised UCQ.
    wall_ms / rewrite_ms / factor_ms / subsume_ms / minimize_ms:
        Phase wall times (the only nondeterministic fields; see
        :data:`REWRITE_TIMING_FIELDS`).
    """

    engine: str = "indexed"
    steps: int = 0
    rewrite_steps: int = 0
    factor_steps: int = 0
    candidates: int = 0
    duplicates: int = 0
    unsatisfiable: int = 0
    subsumed: int = 0
    kept: int = 0
    prefilter_skips: int = 0
    rule_instances: int = 0
    index_probes: int = 0
    subsumption_checks: int = 0
    pairwise_checks_avoided: int = 0
    minimized: int = 0
    wall_ms: float = 0.0
    rewrite_ms: float = 0.0
    factor_ms: float = 0.0
    subsume_ms: float = 0.0
    minimize_ms: float = 0.0

    def as_dict(self, timings: bool = True) -> Dict[str, Any]:
        """A JSON-ready dict; ``timings=False`` strips every wall time."""
        payload: Dict[str, Any] = {
            "engine": self.engine,
            "steps": self.steps,
            "rewrite_steps": self.rewrite_steps,
            "factor_steps": self.factor_steps,
            "candidates": self.candidates,
            "duplicates": self.duplicates,
            "unsatisfiable": self.unsatisfiable,
            "subsumed": self.subsumed,
            "kept": self.kept,
            "prefilter_skips": self.prefilter_skips,
            "rule_instances": self.rule_instances,
            "index_probes": self.index_probes,
            "subsumption_checks": self.subsumption_checks,
            "pairwise_checks_avoided": self.pairwise_checks_avoided,
            "minimized": self.minimized,
        }
        if timings:
            payload["wall_ms"] = round(self.wall_ms, 3)
            payload["rewrite_ms"] = round(self.rewrite_ms, 3)
            payload["factor_ms"] = round(self.factor_ms, 3)
            payload["subsume_ms"] = round(self.subsume_ms, 3)
            payload["minimize_ms"] = round(self.minimize_ms, 3)
        return payload

    def render(self) -> str:
        """Deterministically ordered text lines for the CLI's ``--stats``."""
        lines = [
            f"# stats: engine={self.engine} steps={self.steps} "
            f"(rewrite={self.rewrite_steps} factor={self.factor_steps}) "
            f"prefilter_skips={self.prefilter_skips}",
            f"# candidates: generated={self.candidates} "
            f"duplicates={self.duplicates} unsat={self.unsatisfiable} "
            f"subsumed={self.subsumed} kept={self.kept} "
            f"minimized={self.minimized}",
            f"# index: probes={self.index_probes} "
            f"checks={self.subsumption_checks} "
            f"avoided={self.pairwise_checks_avoided} "
            f"rule_instances={self.rule_instances}",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"RewriteStats({self.engine}, {self.steps} steps, "
            f"{self.candidates} candidates, {self.kept} kept, "
            f"{self.pairwise_checks_avoided} checks avoided)"
        )
