"""The machine-readable result surface shared by the CLI and the server.

``repro --json`` and ``repro serve`` must describe the same run with
byte-identical payloads — the server-equivalence battery
(``tests/property/test_serve_parity.py``) holds them to it.  To make
that true by construction rather than by duplication, the exit-code
table, the guard-stop mapping, and the per-command payload builders
live here; :mod:`repro.cli` renders them to stdout and
:mod:`repro.serve` renders them to sockets.

Every builder takes an engine result and returns ``(payload, code)``:
the JSON-able dict (without ``exit_code`` — the emitter stamps that)
and the exit code from the shared table.  The payload keys are pinned
by ``tests/test_cli_json.py``; change them only with a migration story
for both front-ends.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .runtime import StopReason

#: Exit codes (see the :mod:`repro.cli` docstring table).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_INCOMPLETE = 2
EXIT_NO_COUNTERMODEL = 3
#: The conventional 128+SIGINT code: the run was cooperatively cancelled.
EXIT_INTERRUPTED = 130

Payload = Dict[str, Any]


def stop_code(stopped_reason, default: int) -> int:
    """Map a guard stop onto the exit-code table (guards win over *default*)."""
    if stopped_reason == StopReason.CANCELLED:
        return EXIT_INTERRUPTED
    if stopped_reason in (StopReason.DEADLINE, StopReason.MEMORY):
        return EXIT_INCOMPLETE
    return default


def stats_dict(stats) -> "Optional[Dict[str, Any]]":
    return stats.as_dict() if stats is not None else None


def chase_payload(result) -> Tuple[Payload, int]:
    """``chase``: one-shot fixpoint (``ChaseResult``)."""
    status = "saturated" if result.saturated else "truncated"
    code = stop_code(result.stopped_reason, EXIT_OK)
    payload = {
        "command": "chase",
        "status": status,
        "stopped_reason": result.stopped_reason,
        "counts": {
            "depth": result.depth,
            "facts": len(result.structure),
            "elements": result.structure.domain_size,
            "invented": len(result.new_elements),
        },
        "facts": [str(f) for f in result.structure.sorted_facts()],
        "stats": stats_dict(result.stats),
    }
    return payload, code


def incremental_chase_payload(view, results) -> Tuple[Payload, int]:
    """``chase --incremental``: a maintained view after *results* updates."""
    status = "saturated" if view.saturated else "truncated"
    code = stop_code(view.stopped_reason, EXIT_OK)
    payload = {
        "command": "chase",
        "mode": "incremental",
        "status": status,
        "stopped_reason": view.stopped_reason,
        "counts": {
            "depth": view.depth,
            "facts": len(view),
            "elements": view.structure.domain_size,
            "base_facts": len(view.base_facts()),
            "updates": len(results),
        },
        "updates": [r.stats.as_dict() for r in results],
        "facts": [str(f) for f in view.structure.sorted_facts()],
        "stats": stats_dict(view.initial_result.stats),
    }
    return payload, code


def certain_payload(report) -> Tuple[Payload, int]:
    """``certain``: a :class:`~repro.chase.certain.CertainReport`."""
    verdict = {True: "certain", False: "not-certain", None: "unknown"}[report.verdict]
    code = EXIT_OK if report.verdict is not None else EXIT_INCOMPLETE
    code = stop_code(report.result.stopped_reason, code)
    rows = sorted(report.answers, key=str)
    payload = {
        "command": "certain",
        "status": verdict,
        "stopped_reason": report.result.stopped_reason,
        "complete": report.complete,
        "counts": {
            "answers": len(report.answers),
            "depth": report.result.depth,
            "facts": len(report.result.structure),
        },
        "answers": [[str(value) for value in row] for row in rows],
        "stats": stats_dict(report.stats),
    }
    return payload, code


def rewrite_payload(result) -> Tuple[Payload, int]:
    """``rewrite``: a :class:`~repro.rewriting.RewritingResult`."""
    code = EXIT_OK if result.saturated else EXIT_INCOMPLETE
    code = stop_code(result.stopped_reason, code)
    payload = {
        "command": "rewrite",
        "status": "saturated" if result.saturated else "budget-exhausted",
        "stopped_reason": result.stopped_reason,
        "counts": {
            "disjuncts": len(result.ucq),
            "steps": result.steps,
            "generated": result.generated,
            "max_width": result.max_width,
            "depth_bound": result.depth_bound,
        },
        "disjuncts": [str(d) for d in result.ucq],
        "stats": stats_dict(result.stats),
    }
    return payload, code


def classify_payload(profile) -> Tuple[Payload, int]:
    """``classify``: the syntactic-class profile dict."""
    payload = {
        "command": "classify",
        "status": "ok",
        "counts": {"classes": len(profile)},
        "profile": {name: bool(verdict) for name, verdict in profile.items()},
    }
    return payload, EXIT_OK


def countermodel_payload(result) -> Tuple[Payload, int]:
    """``countermodel``: a pipeline :class:`~repro.core.FiniteModelResult`."""
    payload = {
        "command": "countermodel",
        "status": "query-certain" if result.query_certain else "model-found",
        "stopped_reason": result.stopped_reason,
        "counts": {
            "model_size": result.model_size,
            "kappa": result.kappa,
            "eta": result.eta,
            "depth": result.depth,
            "skeleton_size": result.skeleton_size,
            "interior_size": result.interior_size,
            "attempts": len(result.attempts),
        },
        "facts": (
            [str(f) for f in result.model.sorted_facts()]
            if result.model is not None
            else []
        ),
        "stats": [s.as_dict() for s in result.chase_stats],
    }
    code = EXIT_NO_COUNTERMODEL if result.query_certain else EXIT_OK
    return payload, code


def fc_search_payload(outcome) -> Tuple[Payload, int]:
    """``fc-search``: a :class:`~repro.fc.SearchOutcome`."""
    stats = outcome.stats
    if outcome.found:
        status, code = "model-found", EXIT_OK
    elif stats.exhausted:
        status, code = "exhausted-no-model", EXIT_NO_COUNTERMODEL
    else:
        status, code = "budget-exhausted", EXIT_INCOMPLETE
    code = stop_code(outcome.stopped_reason, code)
    payload = {
        "command": "fc-search",
        "status": status,
        "stopped_reason": outcome.stopped_reason,
        "counts": {
            "nodes": stats.nodes,
            "duplicates": stats.duplicates,
            "pruned_by_query": stats.pruned_by_query,
            "model_size": (
                outcome.model.domain_size if outcome.model is not None else 0
            ),
        },
        "facts": (
            [str(f) for f in outcome.model.sorted_facts()]
            if outcome.model is not None
            else []
        ),
        "stats": stats_dict(stats),
    }
    return payload, code


def skeleton_payload(result, report) -> Tuple[Payload, int]:
    """``skeleton``: the S(D,T) extraction plus its Lemma-3 report."""
    code = EXIT_OK if report.all_hold else EXIT_INCOMPLETE
    payload = {
        "command": "skeleton",
        "status": "lemma3-holds" if report.all_hold else "lemma3-violated",
        "counts": {
            "skeleton_atoms": len(result.structure),
            "elements": result.structure.domain_size,
            "flesh_atoms": len(result.flesh),
            "degree_observed": report.degree_observed,
            "degree_bound": report.degree_bound,
        },
        "lemma3": {
            "forest": report.forest,
            "acyclic": report.acyclic,
            "in_degree_at_most_one": report.in_degree_at_most_one,
            "vtdag": report.vtdag,
        },
        "facts": [str(f) for f in result.structure.sorted_facts()],
    }
    return payload, code
