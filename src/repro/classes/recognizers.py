"""Syntactic class recognisers for Datalog∃ theories.

The classes the paper situates itself among:

* **linear** — every TGD has a single body atom ([8], Rosati);
* **guarded** — some body atom contains all body variables ([1],
  Barany–Gottlob–Otto; Section 5.6 of the paper);
* **sticky** — the Calì–Gottlob–Pieris marking condition ([4], [5]);
* **frontier-1 / single-frontier-variable heads** — the shape of
  Theorem 3: every existential head is ``Ψ(x̄, y) ⇒ ∃z̄ Φ(y, z̄)``;
* **binary** — arity ≤ 2 everywhere (Theorem 1's scope);
* **full datalog** — no existential variables at all;
* **weakly acyclic** — re-exported from the chase package.

These are decidable syntactic conditions, unlike BDD and FC.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..chase.termination import is_weakly_acyclic
from ..lf.atoms import Atom
from ..lf.rules import Rule, Theory
from ..lf.terms import Variable


def is_linear(theory: Theory) -> bool:
    """Every rule has exactly one (relational) body atom."""
    for rule in theory.rules:
        relational = [a for a in rule.body if not a.is_equality]
        if len(relational) != 1:
            return False
    return True


def guard_of(rule: Rule) -> "Atom | None":
    """The guard: a body atom containing every body variable, if any."""
    body_vars = rule.body_variables()
    for candidate in rule.body:
        if candidate.is_equality:
            continue
        if body_vars <= candidate.variable_set():
            return candidate
    return None


def is_guarded(theory: Theory) -> bool:
    """Every rule has a guard (linear ⟹ guarded)."""
    return all(guard_of(rule) is not None for rule in theory.rules)


def is_full_datalog(theory: Theory) -> bool:
    """No existential variables anywhere."""
    return all(rule.is_datalog for rule in theory.rules)


def is_binary(theory: Theory) -> bool:
    """Arity at most 2 for every predicate (Theorem 1's scope)."""
    return theory.is_binary


def is_frontier_one_heads(theory: Theory) -> bool:
    """Theorem 3's shape: each existential TGD is
    ``Ψ(x̄, y) ⇒ ∃z̄ Φ(y, z̄)`` — at most one frontier variable."""
    for rule in theory.rules:
        if rule.is_existential and len(rule.frontier()) > 1:
            return False
    return True


# ----------------------------------------------------------------------
# Stickiness (Calì–Gottlob–Pieris marking procedure)
# ----------------------------------------------------------------------

#: A body position: (rule index, body-atom index, argument index).
BodyPosition = Tuple[int, int, int]


def _sticky_marking(theory: Theory) -> Set[BodyPosition]:
    """The marked body positions.

    Initial step: mark every body occurrence of a variable that does
    not appear in the rule's head.  Propagation: if a variable occurs
    in a *marked* position of predicate R at argument i (in any body),
    then for every rule whose head is R, every body occurrence of the
    variable at head-position i gets marked.  Iterate to fixpoint.
    """
    marked: Set[BodyPosition] = set()
    # initial marking
    for r_index, rule in enumerate(theory.rules):
        head_vars = rule.head_variables()
        for a_index, body_atom in enumerate(rule.body):
            if body_atom.is_equality:
                continue
            for p_index, arg in enumerate(body_atom.args):
                if isinstance(arg, Variable) and arg not in head_vars:
                    marked.add((r_index, a_index, p_index))

    # propagation via marked predicate positions
    changed = True
    while changed:
        changed = False
        marked_pred_positions: Set[Tuple[str, int]] = set()
        for r_index, a_index, p_index in marked:
            body_atom = theory.rules[r_index].body[a_index]
            marked_pred_positions.add((body_atom.pred, p_index))
        for r_index, rule in enumerate(theory.rules):
            for head_atom in rule.head:
                for h_index, head_arg in enumerate(head_atom.args):
                    if not isinstance(head_arg, Variable):
                        continue
                    if (head_atom.pred, h_index) not in marked_pred_positions:
                        continue
                    # the variable flowing into a marked position: mark
                    # all its body occurrences in this rule
                    for a_index, body_atom in enumerate(rule.body):
                        if body_atom.is_equality:
                            continue
                        for p_index, arg in enumerate(body_atom.args):
                            if arg == head_arg:
                                position = (r_index, a_index, p_index)
                                if position not in marked:
                                    marked.add(position)
                                    changed = True
    return marked


def is_sticky(theory: Theory) -> bool:
    """The sticky condition: no variable occurs in two (or more) body
    atoms while having some *marked* occurrence."""
    marked = _sticky_marking(theory)
    for r_index, rule in enumerate(theory.rules):
        occurrences: Dict[Variable, List[BodyPosition]] = {}
        atom_sets: Dict[Variable, Set[int]] = {}
        for a_index, body_atom in enumerate(rule.body):
            if body_atom.is_equality:
                continue
            for p_index, arg in enumerate(body_atom.args):
                if isinstance(arg, Variable):
                    occurrences.setdefault(arg, []).append((r_index, a_index, p_index))
                    atom_sets.setdefault(arg, set()).add(a_index)
        for variable, positions in occurrences.items():
            appears_in_joins = len(atom_sets[variable]) > 1
            has_marked = any(position in marked for position in positions)
            if appears_in_joins and has_marked:
                return False
    return True


def classify(theory: Theory) -> Dict[str, bool]:
    """All recognisers at once — the profile printed by experiments."""
    return {
        "binary": is_binary(theory),
        "linear": is_linear(theory),
        "guarded": is_guarded(theory),
        "sticky": is_sticky(theory),
        "frontier_one_heads": is_frontier_one_heads(theory),
        "full_datalog": is_full_datalog(theory),
        "weakly_acyclic": is_weakly_acyclic(theory),
        "single_head": theory.is_single_head,
        "spade5": theory.satisfies_spade5,
    }
