"""Syntactic class recognisers (linear, guarded, sticky, …)."""

from .recognizers import (
    classify,
    guard_of,
    is_binary,
    is_frontier_one_heads,
    is_full_datalog,
    is_guarded,
    is_linear,
    is_sticky,
)

__all__ = [
    "classify",
    "guard_of",
    "is_binary",
    "is_frontier_one_heads",
    "is_full_datalog",
    "is_guarded",
    "is_linear",
    "is_sticky",
]
