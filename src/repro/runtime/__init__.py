"""Runtime guards: wall-clock deadlines, cooperative cancellation,
memory ceilings — the shared safety net of every long-running engine.

>>> from repro.runtime import RuntimeGuard, StopReason
>>> from repro.chase import ChaseConfig
>>> guard = RuntimeGuard.from_config(ChaseConfig(wall_ms=50), "chase")
>>> guard.check() is None
True

See :mod:`repro.runtime.guard` for the full story, and
:mod:`repro.testing.faults` for the deterministic fault injector the
test battery drives the layer with.
"""

from .guard import (
    GUARD_REASONS,
    NULL_GUARD,
    RSS_POLL_INTERVAL,
    CancelToken,
    Deadline,
    GuardTripped,
    RuntimeGuard,
    StopReason,
    ambient_cancel_token,
    cancellation_scope,
    current_rss_mb,
    fault_hook_installed,
    guard_exception,
    set_fault_hook,
)

__all__ = [
    "GUARD_REASONS",
    "NULL_GUARD",
    "RSS_POLL_INTERVAL",
    "CancelToken",
    "Deadline",
    "GuardTripped",
    "RuntimeGuard",
    "StopReason",
    "ambient_cancel_token",
    "cancellation_scope",
    "current_rss_mb",
    "fault_hook_installed",
    "guard_exception",
    "set_fault_hook",
]
