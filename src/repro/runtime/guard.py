"""The unified runtime-guard layer.

Every engine in this library runs on undecidable problems (chase
termination, BDD rewriting, finite-model search), so count-based
budgets (``max_depth``, ``max_steps``, ``max_nodes``) were never
enough: an adversarial theory can hang for hours inside one round,
exhaust the machine's memory, or die to Ctrl-C with a raw traceback
and no partial result.  This module is the one place the three
*environmental* stop causes live:

* :class:`Deadline` — a monotonic wall-clock budget
  (``BudgetedConfig.wall_ms``), checked at every engine checkpoint:
  per chase round *and* per trigger batch, per rewrite worklist pop,
  per search node expansion, per pipeline attempt.
* :class:`CancelToken` — cooperative cancellation on a
  :class:`threading.Event`.  The CLI installs SIGINT/SIGTERM handlers
  (:func:`cancellation_scope`) that trip an ambient token, so an
  interrupted run returns its partial result and stats instead of a
  traceback.
* a soft memory ceiling (``BudgetedConfig.max_rss_mb``) — peak RSS
  polled cheaply every :data:`RSS_POLL_INTERVAL` checkpoints via
  ``resource.getrusage``, degrading gracefully to a partial result.

All three obey the engine's existing
:class:`~repro.config.OnBudget` policy: ``RETURN`` yields a partial
result whose ``stopped_reason`` names the cause, ``RAISE`` raises the
matching :class:`~repro.errors.ReproError` subclass
(:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.Cancelled`,
:class:`~repro.errors.MemoryBudgetExceeded`) carrying the partial
stats snapshot.

The engines interact with the layer through one object:
:class:`RuntimeGuard`.  A guard is built once per run
(:meth:`RuntimeGuard.from_config`) and its :meth:`~RuntimeGuard.check`
is called at every checkpoint.  When the config carries no deadline,
ceiling, or token — and no fault injector is installed — the factory
returns the shared :data:`NULL_GUARD`, whose ``check`` is a constant
no-op, so unguarded runs pay one attribute load per checkpoint (the
``BENCH_guard.json`` stage of ``benchmarks/run_smoke.py`` holds the
guarded/unguarded gap under 2%).

Deterministic fault injection for tests lives in
:mod:`repro.testing.faults`; it installs itself through
:func:`set_fault_hook` so this module never imports test code.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from contextlib import contextmanager
from enum import Enum
from typing import Any, Callable, Iterator, Optional, Tuple

from ..errors import Cancelled, DeadlineExceeded, MemoryBudgetExceeded, ReproError

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

#: How many checkpoints pass between two peak-RSS polls (getrusage is
#: cheap but not free; deadline and cancellation are checked every
#: checkpoint).
RSS_POLL_INTERVAL = 64


class StopReason(str, Enum):
    """Why an engine run ended — the uniform ``stopped_reason`` vocabulary.

    Attributes
    ----------
    FIXPOINT:
        Natural completion: the chase saturated, the rewriting closed,
        the search settled (model found or bounded space exhausted),
        the pipeline produced its verdict.
    BUDGET:
        A count budget ran out (``max_depth``, ``max_facts``,
        ``max_steps``, ``max_queries``, ``max_nodes``, or the
        pipeline's (depth, η) schedule).
    DEADLINE:
        The wall-clock budget (``wall_ms``) expired.
    CANCELLED:
        The run's :class:`CancelToken` was tripped (Ctrl-C / SIGTERM
        under the CLI, or programmatically).
    MEMORY:
        Peak RSS crossed the soft ceiling (``max_rss_mb``).
    """

    FIXPOINT = "fixpoint"
    BUDGET = "budget"
    DEADLINE = "deadline"
    CANCELLED = "cancelled"
    MEMORY = "memory"


#: The three reasons a :class:`RuntimeGuard` can report (FIXPOINT and
#: BUDGET are decided by the engines themselves).
GUARD_REASONS = (StopReason.DEADLINE, StopReason.CANCELLED, StopReason.MEMORY)


class GuardTripped(Exception):
    """Internal control flow: a checkpoint deep inside an engine round
    tripped.  *Not* a :class:`~repro.errors.ReproError` — engines catch
    it at their run boundary and translate it into their configured
    ``on_budget`` behaviour (partial result or typed exception); it
    must never escape a public entry point.
    """

    def __init__(self, reason: StopReason):
        super().__init__(reason.value)
        self.reason = reason


def guard_exception(
    reason: StopReason, message: str, stats: Any = None
) -> ReproError:
    """The typed exception for a guard stop (used under ``OnBudget.RAISE``)."""
    cls = {
        StopReason.DEADLINE: DeadlineExceeded,
        StopReason.CANCELLED: Cancelled,
        StopReason.MEMORY: MemoryBudgetExceeded,
    }[reason]
    return cls(message, stats=stats)


class Deadline:
    """A monotonic wall-clock budget.

    Measured with :func:`time.monotonic`, so system clock adjustments
    cannot extend or shorten a run.  A budget of ``0`` is valid and
    expires at the first check (useful in tests and smoke scripts).
    """

    __slots__ = ("started", "expires_at", "wall_ms")

    def __init__(self, wall_ms: float):
        if wall_ms < 0:
            raise ValueError(f"wall_ms must be >= 0, got {wall_ms}")
        self.wall_ms = wall_ms
        self.started = time.monotonic()
        self.expires_at = self.started + wall_ms / 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def remaining_ms(self) -> float:
        """Milliseconds left (clamped at 0)."""
        return max(0.0, (self.expires_at - time.monotonic()) * 1000.0)

    def __repr__(self) -> str:
        return f"Deadline({self.wall_ms}ms, {self.remaining_ms():.0f}ms left)"


class CancelToken:
    """Cooperative cancellation: a thread-safe latch engines poll.

    Built on :class:`threading.Event`, so any thread (or a signal
    handler) may trip it while an engine runs on another.  Tokens are
    one-shot by design — a cancelled run is over; start the next run
    with a fresh token.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Trip the token (idempotent, safe from signal handlers)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: "Optional[float]" = None) -> bool:
        """Block until cancelled (or *timeout* seconds); returns the state."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


def current_rss_mb() -> "Optional[float]":
    """Peak resident-set size of this process in MiB.

    ``resource.getrusage`` reports the high-water mark (kilobytes on
    Linux, bytes on macOS); returns ``None`` where :mod:`resource` is
    unavailable (the memory guard then degrades to inactive).
    """
    if _resource is None:  # pragma: no cover - non-POSIX only
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


# ----------------------------------------------------------------------
# Fault-injection hook (implemented by repro.testing.faults)
# ----------------------------------------------------------------------

#: When set, called as ``hook(engine_name)`` at every checkpoint of an
#: *active* guard; returning a :class:`StopReason` trips the guard.
_FAULT_HOOK: "Optional[Callable[[str], Optional[StopReason]]]" = None


def set_fault_hook(
    hook: "Optional[Callable[[str], Optional[StopReason]]]",
) -> None:
    """Install (or clear, with ``None``) the process-wide fault hook.

    Test infrastructure only — see :mod:`repro.testing.faults`.  While
    a hook is installed, :meth:`RuntimeGuard.from_config` always builds
    an active guard, so faults reach engines whose configs carry no
    wall/memory budgets at all.
    """
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def fault_hook_installed() -> bool:
    return _FAULT_HOOK is not None


# ----------------------------------------------------------------------
# The guard itself
# ----------------------------------------------------------------------

class RuntimeGuard:
    """Per-run bundle of deadline, cancellation, and memory ceiling.

    Engines call :meth:`check` at every checkpoint; a non-``None``
    return is the :class:`StopReason` that tripped.  Cancellation and
    the deadline are checked on every call (an ``Event.is_set`` and a
    ``time.monotonic`` — nanoseconds); the RSS poll runs every
    :data:`RSS_POLL_INTERVAL` checkpoints.  Once tripped, a guard stays
    tripped and keeps returning the same reason — engines may observe
    the stop at several altitudes without racing the clock.
    """

    __slots__ = ("engine", "deadline", "token", "max_rss_mb", "checkpoints", "tripped")

    def __init__(
        self,
        engine: str = "unnamed",
        deadline: "Optional[Deadline]" = None,
        token: "Optional[CancelToken]" = None,
        max_rss_mb: "Optional[float]" = None,
    ):
        self.engine = engine
        self.deadline = deadline
        self.token = token
        self.max_rss_mb = max_rss_mb
        self.checkpoints = 0
        self.tripped: "Optional[StopReason]" = None

    @property
    def active(self) -> bool:
        return True

    def check(self) -> "Optional[StopReason]":
        """One checkpoint: the tripped :class:`StopReason`, or ``None``."""
        if self.tripped is not None:
            return self.tripped
        self.checkpoints += 1
        hook = _FAULT_HOOK
        if hook is not None:
            injected = hook(self.engine)
            if injected is not None:
                self.tripped = injected
                return injected
        if self.token is not None and self.token.cancelled:
            self.tripped = StopReason.CANCELLED
            return self.tripped
        if self.deadline is not None and self.deadline.expired():
            self.tripped = StopReason.DEADLINE
            return self.tripped
        if self.max_rss_mb is not None and self.checkpoints % RSS_POLL_INTERVAL == 1:
            rss = current_rss_mb()
            if rss is not None and rss > self.max_rss_mb:
                self.tripped = StopReason.MEMORY
                return self.tripped
        return None

    def checkpoint(self) -> None:
        """Like :meth:`check`, but raises :class:`GuardTripped` — for
        call sites deep inside a round where returning is awkward."""
        reason = self.check()
        if reason is not None:
            raise GuardTripped(reason)

    def remaining_ms(self) -> "Optional[float]":
        """Wall budget left, for propagating into sub-engine configs."""
        if self.deadline is None:
            return None
        return self.deadline.remaining_ms()

    def describe(self, reason: StopReason) -> str:
        """A one-line human message for the tripped *reason*."""
        if reason is StopReason.DEADLINE:
            wall = self.deadline.wall_ms if self.deadline is not None else "?"
            return f"{self.engine}: wall-clock budget of {wall}ms expired"
        if reason is StopReason.CANCELLED:
            return f"{self.engine}: run cancelled"
        if reason is StopReason.MEMORY:
            return (
                f"{self.engine}: peak RSS exceeded the soft ceiling of "
                f"{self.max_rss_mb}MB"
            )
        return f"{self.engine}: stopped ({reason.value})"

    def exception(self, reason: StopReason, stats: Any = None) -> ReproError:
        """The typed exception for *reason*, message prebuilt."""
        return guard_exception(reason, self.describe(reason), stats=stats)

    @classmethod
    def from_config(cls, config: Any, engine: str) -> "RuntimeGuard":
        """Build the run's guard from a :class:`~repro.config.BudgetedConfig`.

        Reads the shared guard fields (``wall_ms``, ``max_rss_mb``,
        ``cancel_token``, ``guards_disabled``, ``deadline``) by
        attribute, so any config-like object works.  Returns the shared
        :data:`NULL_GUARD` when nothing could ever trip (or
        ``guards_disabled`` is set — the benchmark ablation switch,
        which also wins over an installed fault hook); otherwise an
        active guard.  A config without an explicit ``cancel_token``
        picks up the ambient token installed by
        :func:`cancellation_scope` (the CLI's Ctrl-C path).

        A config may carry an already-ticking :class:`Deadline` on
        ``deadline`` instead of a fresh ``wall_ms`` budget; it wins
        over ``wall_ms``.  This is the queue-deadline path of ``repro
        serve``: the admission layer starts the deadline when a request
        is admitted, so time spent queued counts against the request's
        wall budget.
        """
        if getattr(config, "guards_disabled", False):
            return NULL_GUARD
        preset = getattr(config, "deadline", None)
        wall_ms = getattr(config, "wall_ms", None)
        max_rss_mb = getattr(config, "max_rss_mb", None)
        token = getattr(config, "cancel_token", None)
        if token is None:
            token = _AMBIENT_TOKEN
        if (
            preset is None
            and wall_ms is None
            and max_rss_mb is None
            and token is None
            and _FAULT_HOOK is None
        ):
            return NULL_GUARD
        if preset is None:
            preset = None if wall_ms is None else Deadline(wall_ms)
        return cls(
            engine=engine,
            deadline=preset,
            token=token,
            max_rss_mb=max_rss_mb,
        )

    def __repr__(self) -> str:
        parts = [self.engine]
        if self.deadline is not None:
            parts.append(repr(self.deadline))
        if self.token is not None:
            parts.append(repr(self.token))
        if self.max_rss_mb is not None:
            parts.append(f"rss<={self.max_rss_mb}MB")
        return f"RuntimeGuard({', '.join(parts)})"


class _NullGuard(RuntimeGuard):
    """The inactive guard: ``check`` always passes, costs one call.

    A singleton (:data:`NULL_GUARD`) shared by every unguarded run, so
    engines thread one code path whether or not budgets are set.
    """

    __slots__ = ()

    @property
    def active(self) -> bool:
        return False

    def check(self) -> "Optional[StopReason]":
        return None

    def checkpoint(self) -> None:
        return None

    def remaining_ms(self) -> "Optional[float]":
        return None

    def __repr__(self) -> str:
        return "RuntimeGuard(inactive)"


#: The shared inactive guard (see :class:`_NullGuard`).
NULL_GUARD = _NullGuard()


# ----------------------------------------------------------------------
# Ambient cancellation (the CLI's SIGINT/SIGTERM path)
# ----------------------------------------------------------------------

_AMBIENT_TOKEN: "Optional[CancelToken]" = None


def ambient_cancel_token() -> "Optional[CancelToken]":
    """The token guards fall back to when a config carries none."""
    return _AMBIENT_TOKEN


@contextmanager
def cancellation_scope(
    install_signals: bool = True,
    signals: "Tuple[int, ...]" = (signal.SIGINT, signal.SIGTERM),
) -> "Iterator[CancelToken]":
    """Make a fresh :class:`CancelToken` ambient for the dynamic extent.

    While the scope is open, every guard built from a config without an
    explicit token polls this one.  With *install_signals* (the
    default), SIGINT/SIGTERM handlers are installed that trip the token
    on the first signal — engines then unwind cooperatively and return
    partial results — and raise :class:`KeyboardInterrupt` on the
    second (the escape hatch when an engine is stuck between
    checkpoints).  Handlers are restored and the ambient token cleared
    on exit; off the main thread (where ``signal.signal`` is illegal)
    the scope degrades to ambient-token-only.
    """
    global _AMBIENT_TOKEN
    token = CancelToken()
    previous_token = _AMBIENT_TOKEN
    previous_handlers = {}

    def _handler(signum, frame):  # pragma: no cover - exercised via CLI
        if token.cancelled:
            raise KeyboardInterrupt
        token.cancel()

    _AMBIENT_TOKEN = token
    if install_signals:
        try:
            for signum in signals:
                previous_handlers[signum] = signal.signal(signum, _handler)
        except ValueError:  # pragma: no cover - not the main thread
            previous_handlers.clear()
    try:
        yield token
    finally:
        _AMBIENT_TOKEN = previous_token
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
