"""The asyncio front-end: sockets in, pool out, JSON lines both ways.

One :class:`ReproServer` owns

* an asyncio listener (TCP or Unix socket) speaking one JSON object
  per line, pipelined — responses carry the request's ``id`` and may
  complete out of order;
* a ``ThreadPoolExecutor`` of ``config.workers`` threads (named
  ``repro-serve-worker-*``, so tests can assert the pool neither grows
  nor leaks) running :func:`repro.serve.jobs.execute_request`;
* the per-tenant :class:`~repro.serve.session.SessionRegistry`.

Guard wiring: the event loop creates one
:class:`~repro.runtime.CancelToken` per request and remembers it per
connection while the job is in flight.  A ``cancel`` op trips the
token of the targeted ``id``; a client disconnect trips every token
the connection still has in flight — either way the engine unwinds
cooperatively at its next checkpoint and the response (if anyone is
still listening) reports ``stopped_reason: "cancelled"``.

Overload path: engine requests do not go straight to the pool — they
pass through the :class:`~repro.serve.admission.AdmissionController`
(bounded global + per-tenant queues, weighted round-robin dispatch;
see that module's docstring).  An over-limit request is *shed*
immediately with ``{"ok": false, "error": "overloaded",
"retry_after_ms": ...}``; an admitted request starts its
:class:`~repro.runtime.Deadline` at admission, so queue time counts
against its ``wall_ms`` SLA, and a request whose deadline expires
before a worker frees up is shed at dispatch with ``stopped_reason:
"deadline"``.  ``ServeConfig.admission_disabled`` restores the old
unbounded executor queue — the ablation baseline for
``BENCH_resil.json``.

Shutdown (the ``shutdown`` op, or SIGTERM/SIGINT via
:func:`run_server`) stops accepting, sheds every queued request with
a well-formed draining error, waits up to ``config.drain_ms`` for
in-flight requests, then cancels the stragglers' tokens and waits
for them to unwind before closing the pool — the CLI contract is
SIGTERM → drain → exit 130, and it holds mid-overload.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from ..payloads import EXIT_ERROR, EXIT_INCOMPLETE, EXIT_INTERRUPTED, EXIT_OK
from ..runtime import CancelToken, Deadline
from .admission import AdmissionController, Pending
from .config import MAX_LINE_BYTES, ServeConfig
from .jobs import execute_request
from .session import SessionRegistry

#: Thread-name prefix of the worker pool (asserted by the fault battery).
WORKER_THREAD_PREFIX = "repro-serve-worker"


def _encode(response: Dict[str, Any]) -> bytes:
    return (json.dumps(response, sort_keys=True, default=str) + "\n").encode()


class _Connection:
    """Per-client write lock plus the in-flight cancel tokens."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight: Dict[Any, list] = {}

    def register(self, rid: Any, token: CancelToken) -> None:
        self.inflight.setdefault(rid, []).append(token)

    def unregister(self, rid: Any, token: CancelToken) -> None:
        tokens = self.inflight.get(rid)
        if tokens is not None:
            try:
                tokens.remove(token)
            except ValueError:
                pass
            if not tokens:
                self.inflight.pop(rid, None)

    def cancel_inflight(self) -> int:
        count = 0
        for tokens in list(self.inflight.values()):
            for token in tokens:
                token.cancel()
                count += 1
        return count

    async def send(self, response: Dict[str, Any]) -> None:
        async with self.write_lock:
            if self.writer.is_closing():
                return
            try:
                self.writer.write(_encode(response))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                pass


class _LineReader:
    """A line reader with an explicit length bound and *recovery*.

    ``asyncio.StreamReader.readline`` raises once a line overruns its
    limit and leaves the stream in an awkward half-consumed state, so
    the old loop had no choice but to drop the connection.  This reader
    buffers lines itself: an oversized line is discarded chunk-by-chunk
    (never held in memory whole) up to its terminating newline and
    reported as ``None``, and the connection keeps working — the server
    answers ``request_too_large`` and reads the next line.
    """

    _CHUNK = 65536

    def __init__(self, reader: asyncio.StreamReader, max_line: int) -> None:
        self._reader = reader
        self._max = max_line
        self._buf = bytearray()
        self._eof = False

    async def readline(self) -> "Optional[bytes]":
        """The next line (with newline), ``b""`` at EOF, ``None`` if the
        line exceeded the bound (the line is consumed and discarded)."""
        while True:
            idx = self._buf.find(b"\n")
            if idx != -1:
                line = bytes(self._buf[: idx + 1])
                del self._buf[: idx + 1]
                return None if len(line) > self._max else line
            if self._eof:
                line = bytes(self._buf)
                self._buf.clear()
                return None if len(line) > self._max else line
            if len(self._buf) > self._max:
                survived = await self._discard_line()
                return None if survived else b""
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)

    async def _discard_line(self) -> bool:
        """Drop input up to the next newline; False if EOF hit first."""
        while True:
            idx = self._buf.find(b"\n")
            if idx != -1:
                del self._buf[: idx + 1]
                return True
            self._buf.clear()
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                self._eof = True
                return False
            self._buf.extend(chunk)


class ReproServer:
    """One serving instance; see the module docstring."""

    def __init__(self, config: "Optional[ServeConfig]" = None, **overrides) -> None:
        self.config = (config or ServeConfig()).with_overrides(**overrides)
        self.registry = SessionRegistry(self.config.max_sessions)
        self.admission: "Optional[AdmissionController]" = None
        if not self.config.admission_disabled:
            self.admission = AdmissionController(
                workers=self.config.workers,
                max_pending=self.config.max_pending,
                tenant_max_pending=self.config.tenant_max_pending,
                tenant_max_inflight=self.config.tenant_max_inflight,
                tenant_weights=self.config.tenant_weights,
            )
        self.exit_code = EXIT_OK
        self.requests = 0
        self.cancelled = 0
        self.rejected = 0
        self.shed = 0
        self.oversized = 0
        self._started = time.monotonic()
        self._server: "Optional[asyncio.AbstractServer]" = None
        self._pool: "Optional[ThreadPoolExecutor]" = None
        self._loop: "Optional[asyncio.AbstractEventLoop]" = None
        self._stop: "Optional[asyncio.Event]" = None
        self._draining = False
        self._connections: "set[_Connection]" = set()
        self._jobs: "set[asyncio.Task]" = set()
        self.host: "Optional[str]" = None
        self.port: "Optional[int]" = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and spin up the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started = time.monotonic()
        # Bind before building the pool: a bind failure (port in use,
        # bad socket path) must not leave worker threads behind.
        if self.config.path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.path,
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host,
                port=self.config.port, limit=MAX_LINE_BYTES,
            )
            sockname = self._server.sockets[0].getsockname()
            self.host, self.port = sockname[0], sockname[1]
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix=WORKER_THREAD_PREFIX,
        )

    async def run(self, ready=None) -> int:
        """start → announce → serve until shutdown → drain.

        Returns the exit code (:data:`EXIT_INTERRUPTED` when a signal
        initiated the shutdown, else 0).
        """
        await self.start()
        if ready is not None:
            ready(self)
        await self._stop.wait()
        await self._drain()
        return self.exit_code

    def request_shutdown(self, exit_code: int = EXIT_OK) -> None:
        """Begin shutdown; safe from any thread (and signal handlers)."""
        def _set() -> None:
            if not self._stop.is_set():
                self.exit_code = exit_code
                self._stop.set()

        if self._loop is None or self._stop is None:
            return
        try:
            self._loop.call_soon_threadsafe(_set)
        except RuntimeError:  # loop already closed
            pass

    async def _drain(self) -> None:
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if self.admission is not None:
            # Queued-but-undispatched requests will never run; answer
            # each with the draining error so no admitted request goes
            # silent (the chaos battery pins this mid-overload).
            for entry in self.admission.drain():
                connection = entry.payload
                connection.unregister(entry.rid, entry.token)
                self.rejected += 1
                await connection.send({
                    "id": entry.rid, "ok": False, "status": "error",
                    "error": "server is draining", "tenant": entry.tenant,
                    "exit_code": EXIT_ERROR,
                })
        if self._jobs:
            _done, pending = await asyncio.wait(
                set(self._jobs), timeout=self.config.drain_ms / 1000.0
            )
            if pending:
                # Out of patience: trip every remaining token and give
                # the engines one checkpoint's grace to unwind.
                for connection in list(self._connections):
                    self.cancelled += connection.cancel_inflight()
                await asyncio.wait(pending, timeout=10.0)
        for connection in list(self._connections):
            connection.writer.close()
        # Every job has unwound (cooperatively-cancelled at worst), so
        # this join is prompt; wait=True proves no worker leaks.
        self._pool.shutdown(wait=True)

    # -- protocol ------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        lines = _LineReader(reader, self.config.max_line_bytes)
        try:
            while True:
                line = await lines.readline()
                if line is None:
                    # Oversized line: discarded by the reader; the
                    # connection stays usable for the next request.
                    self.oversized += 1
                    await connection.send({
                        "id": None, "ok": False, "status": "error",
                        "error": "request_too_large",
                        "max_line_bytes": self.config.max_line_bytes,
                        "exit_code": EXIT_ERROR,
                    })
                    continue
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(connection, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled the reader mid-readline (drain has
            # already run); finish cleanly instead of logging noise.
            pass
        finally:
            self._connections.discard(connection)
            # Client gone: nobody is waiting on these results.
            self.cancelled += connection.cancel_inflight()
            writer.close()

    async def _handle_line(self, connection: _Connection, line: bytes) -> None:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            await connection.send({
                "id": None, "ok": False, "status": "error",
                "error": f"malformed request: {error}",
                "exit_code": EXIT_ERROR,
            })
            return
        op = request.get("op")
        rid = request.get("id")
        if op == "cancel":
            await self._op_cancel(connection, request)
            return
        if op == "stats":
            await connection.send(self._stats_response(rid))
            return
        if op == "health":
            await connection.send(self._health_response(rid))
            return
        if op == "metrics":
            await connection.send(self._metrics_response(rid))
            return
        if op == "shutdown":
            await connection.send({
                "id": rid, "ok": True, "command": "shutdown",
                "status": "shutting-down", "exit_code": EXIT_OK,
            })
            self.request_shutdown(EXIT_OK)
            return
        if self._draining:
            self.rejected += 1
            await connection.send({
                "id": rid, "ok": False, "status": "error",
                "error": "server is draining", "exit_code": EXIT_ERROR,
            })
            return
        self.requests += 1
        token = CancelToken()
        entry = Pending(
            tenant=self._admission_tenant(request),
            rid=rid,
            request=request,
            token=token,
            deadline=(
                None if self.admission is None
                else self._queue_deadline(request)
            ),
            payload=connection,
        )
        if self.admission is None:
            # Ablation path (admission_disabled): the pre-admission
            # behaviour — straight into the executor's unbounded queue,
            # wall budget starting at execution, never at admission.
            connection.register(rid, token)
            self._spawn(entry)
            return
        reason = self.admission.try_admit(entry)
        if reason is not None:
            self.shed += 1
            await connection.send({
                "id": rid, "ok": False, "status": "shed",
                "error": "overloaded", "tenant": entry.tenant,
                "retry_after_ms": self.admission.retry_after_ms(),
                "exit_code": EXIT_ERROR,
            })
            return
        connection.register(rid, token)
        await self._pump()

    def _admission_tenant(self, request: Dict[str, Any]) -> str:
        tenant = request.get("tenant", "default")
        # Invalid tenants still fail in the worker with a clear error;
        # admission just needs a stable queue key for them.
        return tenant if isinstance(tenant, str) and tenant else "default"

    def _queue_deadline(self, request: Dict[str, Any]) -> "Optional[Deadline]":
        """The request's SLA deadline, started now (at admission)."""
        params = request.get("params")
        wall = params.get("wall_ms") if isinstance(params, dict) else None
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            wall = self.config.wall_ms
        return None if wall is None else Deadline(wall)

    def _spawn(self, entry: Pending) -> None:
        job = asyncio.ensure_future(self._run_job(entry))
        self._jobs.add(job)
        job.add_done_callback(self._jobs.discard)

    async def _pump(self) -> None:
        """Dispatch admitted requests while worker slots are free."""
        if self.admission is None:
            return
        run, expired = self.admission.next_dispatch()
        for entry in expired:
            # Sat in the queue past its own deadline: shed instead of
            # burning a worker on a request nobody can answer in time.
            connection = entry.payload
            connection.unregister(entry.rid, entry.token)
            self.shed += 1
            await connection.send({
                "id": entry.rid, "ok": False, "status": "shed",
                "error": "queue_deadline", "tenant": entry.tenant,
                "stopped_reason": "deadline",
                "exit_code": EXIT_INCOMPLETE,
            })
        for entry in run:
            self._spawn(entry)

    async def _run_job(self, entry: Pending) -> None:
        connection = entry.payload
        rid, token = entry.rid, entry.token
        started = time.monotonic()
        try:
            response = await self._loop.run_in_executor(
                self._pool, execute_request,
                self.registry, entry.request, self.config, token,
                entry.deadline,
            )
        except Exception as error:  # defensive: a job must never kill the loop
            response = {
                "id": rid, "ok": False, "status": "error",
                "error": f"internal error: {error}",
                "exit_code": EXIT_ERROR,
            }
        finally:
            connection.unregister(rid, token)
            if self.admission is not None:
                self.admission.complete(
                    entry.tenant, (time.monotonic() - started) * 1000.0
                )
        await connection.send(response)
        await self._pump()

    async def _op_cancel(self, connection: _Connection, request) -> None:
        target = request.get("target")
        tokens = connection.inflight.get(target, [])
        for token in tokens:
            token.cancel()
        self.cancelled += len(tokens)
        await connection.send({
            "id": request.get("id"), "ok": True, "command": "cancel",
            "status": "cancelling" if tokens else "not-found",
            "counts": {"cancelled": len(tokens)},
            "exit_code": EXIT_OK,
        })

    def _stats_response(self, rid) -> Dict[str, Any]:
        return {
            "id": rid, "ok": True, "command": "stats", "status": "ok",
            "counts": {
                "requests": self.requests,
                "inflight": len(self._jobs),
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "shed": self.shed,
                "oversized": self.oversized,
                "workers": self.config.workers,
                "sessions": len(self.registry),
            },
            "registry": self.registry.stats(),
            "exit_code": EXIT_OK,
        }

    def _health_response(self, rid) -> Dict[str, Any]:
        """Cheap liveness probe, answered on the event loop."""
        pending = 0 if self.admission is None else self.admission.pending_total
        inflight = (
            len(self._jobs) if self.admission is None
            else self.admission.inflight_total
        )
        return {
            "id": rid, "ok": True, "command": "health",
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "counts": {
                "pending": pending,
                "inflight": inflight,
                "workers": self.config.workers,
                "sessions": len(self.registry),
            },
            "exit_code": EXIT_OK,
        }

    def _metrics_response(self, rid) -> Dict[str, Any]:
        """Full load-state snapshot: admission queues, sheds, tenants."""
        return {
            "id": rid, "ok": True, "command": "metrics", "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "counts": {
                "requests": self.requests,
                "inflight": len(self._jobs),
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "shed": self.shed,
                "oversized": self.oversized,
                "workers": self.config.workers,
                "sessions": len(self.registry),
            },
            "admission": (
                None if self.admission is None else self.admission.snapshot()
            ),
            "registry": self.registry.stats(),
            "exit_code": EXIT_OK,
        }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def run_server(config: ServeConfig, ready=None) -> int:
    """Run a server on this thread until shutdown; returns the exit code.

    Installs loop-level SIGTERM/SIGINT handlers (when the platform
    allows) implementing the drain-then-exit-130 contract.  A bind
    failure (port in use, bad unix-socket path, missing permission)
    prints one line of JSON to stderr and returns
    :data:`~repro.payloads.EXIT_ERROR` instead of unwinding with an
    asyncio traceback.
    """
    import signal
    import sys

    server = ReproServer(config)

    async def _main() -> int:
        try:
            await server.start()
        except OSError as error:
            print(
                json.dumps({
                    "ok": False,
                    "error": "bind_failed",
                    "detail": str(error),
                    "host": config.host,
                    "port": config.port,
                    "path": config.path,
                    "exit_code": EXIT_ERROR,
                }, sort_keys=True),
                file=sys.stderr,
                flush=True,
            )
            return EXIT_ERROR
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, server.request_shutdown, EXIT_INTERRUPTED
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without support
        if ready is not None:
            ready(server)
        await server._stop.wait()
        await server._drain()
        return server.exit_code

    return asyncio.run(_main())


class ServerThread:
    """A server on a background thread — the test/benchmark harness.

    ``with ServerThread(workers=2) as handle:`` boots a loopback server
    (ephemeral port by default), waits for readiness, and exposes
    ``handle.host`` / ``handle.port`` / ``handle.client()``.  Exiting
    the block shuts the server down and joins the thread.
    """

    def __init__(self, config: "Optional[ServeConfig]" = None, **overrides) -> None:
        self.config = (config or ServeConfig()).with_overrides(**overrides)
        self.server = ReproServer(self.config)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self.exit_code: "Optional[int]" = None

    def _run(self) -> None:
        try:
            self.exit_code = asyncio.run(
                self.server.run(ready=lambda _s: self._ready.set())
            )
        finally:
            self._ready.set()  # unblock __enter__ even on bind failure

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to become ready")
        if self.server._server is None:
            raise RuntimeError("server failed to start (bind error?)")
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 60.0):
        from .client import ServeClient

        if self.config.path is not None:
            return ServeClient(path=self.config.path, timeout=timeout)
        return ServeClient((self.host, self.port), timeout=timeout)

    def shutdown(self, exit_code: int = EXIT_OK, timeout: float = 60.0) -> None:
        self.server.request_shutdown(exit_code)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - debugging aid
            raise RuntimeError("server thread failed to shut down")


def worker_thread_count() -> int:
    """How many live threads belong to serve worker pools (tests)."""
    return sum(
        1 for thread in threading.enumerate()
        if thread.name.startswith(WORKER_THREAD_PREFIX)
    )
