"""A small blocking client for the line-JSON protocol.

Used by the test batteries, the benchmarks, and the CI smoke script —
and handy interactively:

>>> with ServeClient(("127.0.0.1", 7464)) as client:   # doctest: +SKIP
...     client.request("chase", theory="E(x,y) -> E(y,x)", database="E(a,b)")

Requests are tagged with auto-incrementing ``id``s.  :meth:`request`
submits and waits for the matching response; :meth:`submit` /
:meth:`response_for` expose the pipelined form (several requests in
flight, responses claimed by id in any order — out-of-order arrivals
are buffered).
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any, Dict, List, Optional, Tuple


class ServeClient:
    """One blocking connection to a ``repro serve`` instance."""

    def __init__(
        self,
        address: "Optional[Tuple[str, int]]" = None,
        path: "Optional[str]" = None,
        timeout: float = 60.0,
    ) -> None:
        if (address is None) == (path is None):
            raise ValueError("pass exactly one of address=(host, port) or path=")
        if path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(path)
        else:
            self._sock = socket.create_connection(address, timeout=timeout)
            self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self._buffered: Dict[Any, Dict[str, Any]] = {}
        self._untagged: List[Dict[str, Any]] = []

    # -- plumbing ------------------------------------------------------

    def send_raw(self, line: "str | bytes") -> None:
        """Ship one already-encoded protocol line (malformed-input tests)."""
        if isinstance(line, str):
            line = line.encode()
        self._sock.sendall(line.rstrip(b"\n") + b"\n")

    def recv(self) -> Dict[str, Any]:
        """The next response off the wire (or a buffered one)."""
        if self._untagged:
            return self._untagged.pop(0)
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- requests ------------------------------------------------------

    def submit(self, op: str, **fields: Any) -> int:
        """Send a request, return its id (pipelined; claim it later)."""
        rid = next(self._ids)
        request = {"op": op, "id": rid}
        request.update(fields)
        self.send_raw(json.dumps(request))
        return rid

    def response_for(self, rid: int) -> Dict[str, Any]:
        """Block until the response tagged *rid* arrives."""
        if rid in self._buffered:
            return self._buffered.pop(rid)
        while True:
            response = self.recv()
            got = response.get("id")
            if got == rid:
                return response
            if got is None:
                self._untagged.append(response)
            else:
                self._buffered[got] = response

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Submit and wait: the one-call form."""
        return self.response_for(self.submit(op, **fields))

    def ping(self) -> bool:
        return self.request("ping").get("status") == "pong"

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
