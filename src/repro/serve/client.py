"""A small blocking client for the line-JSON protocol.

Used by the test batteries, the benchmarks, and the CI smoke script —
and handy interactively:

>>> with ServeClient(("127.0.0.1", 7464)) as client:   # doctest: +SKIP
...     client.request("chase", theory="E(x,y) -> E(y,x)", database="E(a,b)")

Requests are tagged with auto-incrementing ``id``s.  :meth:`request`
submits and waits for the matching response; :meth:`submit` /
:meth:`response_for` expose the pipelined form (several requests in
flight, responses claimed by id in any order — out-of-order arrivals
are buffered).

Overload handling: a server under load sheds requests with
``{"ok": false, "error": "overloaded", "retry_after_ms": ...}``.
:meth:`request_with_retry` turns that into capped exponential backoff
with deterministic (seedable) jitter — it honours the server's
``retry_after_ms`` hint, retries only :data:`IDEMPOTENT_OPS`, and
raises :class:`ServeOverloaded` once the retry cap is spent.  A socket
read timeout while waiting on a response surfaces as
:class:`ServeTimeout` naming the request id(s) still pending, instead
of a bare ``socket.timeout`` with no context.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError

#: Ops safe to resend after a shed or timeout: they mutate nothing (or
#: are pure reads of server state).  ``view-update`` / ``view-create``
#: / ``session-close`` are absent by design — replaying those could
#: double-apply a delta.
IDEMPOTENT_OPS = frozenset({
    "ping", "stats", "health", "metrics",
    "chase", "certain", "rewrite", "classify",
    "countermodel", "fc-search", "skeleton", "view-query",
})


class ServeTimeout(ReproError):
    """The socket timed out while responses were still pending.

    ``pending_ids`` names every submitted-but-unanswered request id at
    the moment of the timeout (the one being waited on plus any other
    pipelined submissions).
    """

    def __init__(self, waiting_for: Any, pending_ids: "List[Any]") -> None:
        self.waiting_for = waiting_for
        self.pending_ids = list(pending_ids)
        ids = ", ".join(repr(rid) for rid in self.pending_ids) or repr(
            waiting_for
        )
        super().__init__(
            f"timed out waiting for response to request id {waiting_for!r} "
            f"(pending ids: {ids})"
        )


class ServeOverloaded(ReproError):
    """The server kept shedding the request past the retry cap.

    Carries the final shed response (``response``) and how many
    attempts were made (``attempts``).
    """

    def __init__(self, op: str, attempts: int, response: Dict[str, Any]) -> None:
        self.op = op
        self.attempts = attempts
        self.response = dict(response)
        retry_after = response.get("retry_after_ms")
        super().__init__(
            f"server overloaded: op {op!r} shed after {attempts} "
            f"attempt(s) (last retry_after_ms: {retry_after!r})"
        )


class ServeClient:
    """One blocking connection to a ``repro serve`` instance."""

    def __init__(
        self,
        address: "Optional[Tuple[str, int]]" = None,
        path: "Optional[str]" = None,
        timeout: float = 60.0,
    ) -> None:
        if (address is None) == (path is None):
            raise ValueError("pass exactly one of address=(host, port) or path=")
        if path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(path)
        else:
            self._sock = socket.create_connection(address, timeout=timeout)
            self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self._buffered: Dict[Any, Dict[str, Any]] = {}
        self._untagged: List[Dict[str, Any]] = []
        self._pending: "Dict[Any, None]" = {}  # insertion-ordered id set

    # -- plumbing ------------------------------------------------------

    def send_raw(self, line: "str | bytes") -> None:
        """Ship one already-encoded protocol line (malformed-input tests)."""
        if isinstance(line, str):
            line = line.encode()
        self._sock.sendall(line.rstrip(b"\n") + b"\n")

    def recv(self) -> Dict[str, Any]:
        """The next response off the wire (or a buffered one)."""
        if self._untagged:
            return self._untagged.pop(0)
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- requests ------------------------------------------------------

    def submit(self, op: str, **fields: Any) -> int:
        """Send a request, return its id (pipelined; claim it later)."""
        rid = next(self._ids)
        request = {"op": op, "id": rid}
        request.update(fields)
        self.send_raw(json.dumps(request))
        self._pending[rid] = None
        return rid

    def response_for(self, rid: int) -> Dict[str, Any]:
        """Block until the response tagged *rid* arrives.

        A socket read timeout raises :class:`ServeTimeout` naming every
        still-pending request id, not a bare ``socket.timeout``.
        """
        if rid in self._buffered:
            self._pending.pop(rid, None)
            return self._buffered.pop(rid)
        while True:
            try:
                response = self.recv()
            except socket.timeout:
                raise ServeTimeout(rid, list(self._pending)) from None
            got = response.get("id")
            if got == rid:
                self._pending.pop(rid, None)
                return response
            if got is None:
                self._untagged.append(response)
            else:
                self._pending.pop(got, None)
                self._buffered[got] = response

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Submit and wait: the one-call form."""
        return self.response_for(self.submit(op, **fields))

    def request_with_retry(
        self,
        op: str,
        max_retries: int = 4,
        base_delay_ms: float = 50.0,
        max_delay_ms: float = 2000.0,
        seed: "Optional[int]" = None,
        sleep=time.sleep,
        **fields: Any,
    ) -> Dict[str, Any]:
        """:meth:`request`, but ride out ``overloaded`` sheds.

        On a shed response the client sleeps and resubmits, up to
        *max_retries* retries.  The delay before attempt *n* is the
        larger of the server's ``retry_after_ms`` hint and the
        exponential backoff ``base_delay_ms * 2**n``, jittered
        multiplicatively into ``[1.0, 1.5)`` and capped at
        *max_delay_ms*.  The jitter stream comes from
        ``random.Random(seed)``, so a seeded call sleeps a reproducible
        schedule (the chaos battery relies on this); *sleep* is
        injectable for tests that must not wait in real time.

        Non-idempotent ops (not in :data:`IDEMPOTENT_OPS`) are never
        resent — their first shed raises :class:`ServeOverloaded`
        immediately, as does exhausting the retry cap.
        """
        rng = random.Random(seed)
        attempts = 0
        while True:
            response = self.request(op, **fields)
            attempts += 1
            if response.get("error") != "overloaded":
                return response
            if op not in IDEMPOTENT_OPS or attempts > max_retries:
                raise ServeOverloaded(op, attempts, response)
            hint = response.get("retry_after_ms")
            hint_ms = float(hint) if isinstance(hint, (int, float)) else 0.0
            backoff_ms = base_delay_ms * (2.0 ** (attempts - 1))
            delay_ms = min(
                max_delay_ms,
                max(hint_ms, backoff_ms) * (1.0 + 0.5 * rng.random()),
            )
            sleep(delay_ms / 1000.0)

    def ping(self) -> bool:
        return self.request("ping").get("status") == "pong"

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
