"""Per-tenant warm state: :class:`TheorySession` and :class:`SessionRegistry`.

A session is what makes the server faster than a cold one-shot CLI
invocation: it keeps

* parsed theories, databases, and queries (keyed by source text), so a
  tenant sending the same theory with every request pays the parser
  once;
* finished rewriting artifacts — the Darwiche–Marquis idiom: pay the
  UCQ compilation once, answer every later identical ``rewrite``
  request from the cache (only *saturated* rewritings are cached; a
  budget-truncated result under one deadline must not be served to a
  request with a larger one);
* live :class:`~repro.chase.ChaseView` incremental views, each with
  its own lock so updates and queries against one view serialize while
  different views (and different tenants) proceed in parallel.

The compiled join plans and subsume/type-query memos warmed by a
session's requests live in the existing process-wide caches
(:data:`repro.lf.plan.PLAN_CACHE` & co.), which this PR made
thread-safe; the session does not duplicate them.

Everything here is called from worker threads, so every mutation of
shared dicts happens under a lock; parsing and engine work happen
outside the locks.  Cached structures are safe to share because every
engine takes its own working copy via ``ensure_backend(copy=True)``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..lf import parse_query, parse_structure, parse_theory

#: Bound on each per-session parse cache (entries are parsed ASTs —
#: cheap — but tenants can be adversarial).
PARSE_CACHE_MAX = 128
#: Bound on the per-session finished-rewriting artifact cache.
REWRITING_CACHE_MAX = 256


def text_key(text: str) -> str:
    """A stable short key for a source text (sha1 prefix)."""
    return hashlib.sha1(text.encode()).hexdigest()[:16]


class _ViewSlot:
    """A live view plus the lock serializing its updates/queries."""

    __slots__ = ("view", "lock")

    def __init__(self, view) -> None:
        self.view = view
        self.lock = threading.RLock()


class TheorySession:
    """The warm state of one tenant (see the module docstring)."""

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.created = time.monotonic()
        self._lock = threading.RLock()
        self._theories: "OrderedDict[str, Any]" = OrderedDict()
        self._databases: "OrderedDict[str, Any]" = OrderedDict()
        self._queries: "OrderedDict[Tuple[str, Tuple[str, ...]], Any]" = OrderedDict()
        self._rewritings: "OrderedDict[tuple, Tuple[Dict[str, Any], int]]" = OrderedDict()
        self._views: Dict[str, _ViewSlot] = {}
        self.hits = 0
        self.misses = 0
        self.rewriting_hits = 0
        self.requests = 0

    # -- parse caches --------------------------------------------------

    def _cached(self, cache: "OrderedDict", key, parse, max_size=PARSE_CACHE_MAX):
        with self._lock:
            if key in cache:
                cache.move_to_end(key)
                self.hits += 1
                return cache[key]
        value = parse()  # pure; outside the lock
        with self._lock:
            if key not in cache:
                self.misses += 1
                cache[key] = value
                while len(cache) > max_size:
                    cache.popitem(last=False)
            return cache[key]

    def theory(self, text: str):
        """Parse (or recall) a theory from its source text."""
        return self._cached(self._theories, text_key(text),
                            lambda: parse_theory(text))

    def database(self, text: str):
        """Parse (or recall) a database.  Sharing the parsed structure
        is safe: engines copy their input (``ensure_backend``)."""
        return self._cached(self._databases, text_key(text),
                            lambda: parse_structure(text))

    def query(self, text: str, free: "Tuple[str, ...]"):
        """Parse (or recall) a conjunctive query."""
        return self._cached(self._queries, (text_key(text), free),
                            lambda: parse_query(text, free=list(free)))

    # -- rewriting artifacts -------------------------------------------

    def cached_rewriting(self, key: tuple) -> "Optional[Tuple[Dict[str, Any], int]]":
        with self._lock:
            entry = self._rewritings.get(key)
            if entry is not None:
                self._rewritings.move_to_end(key)
                self.rewriting_hits += 1
            return entry

    def store_rewriting(self, key: tuple, payload: Dict[str, Any], code: int) -> None:
        with self._lock:
            self._rewritings[key] = (payload, code)
            while len(self._rewritings) > REWRITING_CACHE_MAX:
                self._rewritings.popitem(last=False)

    # -- live views ----------------------------------------------------

    def create_view(self, name: str, view) -> _ViewSlot:
        slot = _ViewSlot(view)
        with self._lock:
            self._views[name] = slot
        return slot

    def view_slot(self, name: str) -> "Optional[_ViewSlot]":
        with self._lock:
            return self._views.get(name)

    def close_view(self, name: str) -> bool:
        with self._lock:
            return self._views.pop(name, None) is not None

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests,
                "theories": len(self._theories),
                "databases": len(self._databases),
                "queries": len(self._queries),
                "rewritings": len(self._rewritings),
                "views": sorted(self._views),
                "parse_hits": self.hits,
                "parse_misses": self.misses,
                "rewriting_hits": self.rewriting_hits,
            }


class SessionRegistry:
    """Thread-safe LRU map ``tenant name -> TheorySession``."""

    def __init__(self, max_sessions: int = 64) -> None:
        self._max = max_sessions
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, TheorySession]" = OrderedDict()
        self.evicted = 0

    def get(self, tenant: str) -> TheorySession:
        """The tenant's session, created (and LRU-evicting) on demand."""
        with self._lock:
            session = self._sessions.get(tenant)
            if session is None:
                session = TheorySession(tenant)
                self._sessions[tenant] = session
                while len(self._sessions) > self._max:
                    self._sessions.popitem(last=False)
                    self.evicted += 1
            else:
                self._sessions.move_to_end(tenant)
            return session

    def peek(self, tenant: str) -> "Optional[TheorySession]":
        with self._lock:
            return self._sessions.get(tenant)

    def close(self, tenant: str) -> bool:
        with self._lock:
            return self._sessions.pop(tenant, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            sessions = list(self._sessions.items())
        return {
            "sessions": len(sessions),
            "evicted": self.evicted,
            "tenants": {name: session.stats() for name, session in sessions},
        }
