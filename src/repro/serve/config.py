"""Server configuration: :class:`ServeConfig` on the BudgetedConfig contract.

The inherited guard fields change meaning slightly in service mode —
they become per-request *defaults* rather than one run's budget:

* ``wall_ms`` — the default SLA deadline applied to every request that
  does not carry its own ``params.wall_ms``.  Each request gets its own
  :class:`~repro.runtime.RuntimeGuard`, so one slow tenant cannot eat
  another tenant's deadline.
* ``max_rss_mb`` — the shared soft RSS ceiling.  RSS is a per-process
  quantity, so every in-flight request polls the same number; whichever
  requests are at a checkpoint when the ceiling is crossed degrade to a
  partial result with ``stopped_reason: "memory"``.
* ``store`` — the default fact-store backend for requests that do not
  pick one via ``params.store``.
* ``on_budget`` — pinned to :attr:`~repro.config.OnBudget.RETURN`:
  a service must degrade to well-formed partial payloads, never unwind
  a worker with a budget exception.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..config import BudgetedConfig, OnBudget

#: Upper bound on a single protocol line (theories and databases travel
#: inline); a guard against a stray client streaming garbage, not a
#: tight limit.
MAX_LINE_BYTES = 8 * 1024 * 1024


@dataclasses.dataclass
class ServeConfig(BudgetedConfig):
    """Configuration for ``repro serve`` (see the module docstring).

    Attributes
    ----------
    host / port:
        TCP bind address.  ``port=0`` binds an ephemeral port; the
        readiness line reports the actual one.
    path:
        Unix-domain socket path.  When set, the server listens there
        instead of TCP.
    workers:
        Size of the thread worker pool jobs are dispatched to.
    max_sessions:
        Bound on concurrently-warm tenant sessions; the least recently
        used session is evicted (with its caches and views) when a new
        tenant would exceed it.
    drain_ms:
        How long shutdown waits for in-flight requests to finish
        before cancelling their tokens and unwinding them cooperatively.
    max_pending:
        Global bound on requests admitted but not yet dispatched to a
        worker.  A request arriving past the bound is *shed*: answered
        immediately with ``{"ok": false, "error": "overloaded",
        "retry_after_ms": ...}`` instead of queued.
    tenant_max_pending:
        Per-tenant queue-depth bound; ``None`` inherits ``max_pending``
        (i.e. only the global bound applies).
    tenant_max_inflight:
        Per-tenant bound on concurrently-running requests; ``None``
        inherits ``workers`` (no per-tenant throttle).  Combined with
        weighted round-robin dispatch this keeps one hostile tenant
        from occupying the whole pool.
    tenant_weights:
        Optional ``{tenant: weight}`` map for the round-robin
        dispatcher; a tenant with weight *w* drains up to *w*
        consecutive requests per turn.  Unlisted tenants get weight 1.
    admission_disabled:
        Bypass admission control entirely and submit straight to the
        executor's unbounded queue — the pre-admission behaviour.  The
        ablation switch for the ``BENCH_resil.json`` goodput
        comparison; not meant for production configs.
    max_line_bytes:
        Upper bound on one protocol line.  A connection that sends a
        longer line gets ``{"ok": false, "error": "request_too_large"}``
        and stays usable; the oversized line is discarded without ever
        being buffered whole.
    """

    host: str = "127.0.0.1"
    port: int = 0
    path: "Optional[str]" = None
    workers: int = 4
    max_sessions: int = 64
    drain_ms: float = 5000.0
    max_pending: int = 1024
    tenant_max_pending: "Optional[int]" = None
    tenant_max_inflight: "Optional[int]" = None
    tenant_weights: "Optional[Dict[str, int]]" = None
    admission_disabled: bool = False
    max_line_bytes: int = MAX_LINE_BYTES

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.on_budget is not OnBudget.RETURN:
            raise ValueError(
                "ServeConfig requires on_budget=RETURN: the server answers "
                "budget trips with partial payloads, it never raises"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.drain_ms < 0:
            raise ValueError(f"drain_ms must be >= 0, got {self.drain_ms}")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_pending < 0:
            raise ValueError(
                f"max_pending must be >= 0, got {self.max_pending}"
            )
        if self.tenant_max_pending is not None and self.tenant_max_pending < 0:
            raise ValueError(
                f"tenant_max_pending must be >= 0, got "
                f"{self.tenant_max_pending}"
            )
        if (
            self.tenant_max_inflight is not None
            and self.tenant_max_inflight < 1
        ):
            raise ValueError(
                f"tenant_max_inflight must be >= 1, got "
                f"{self.tenant_max_inflight}"
            )
        if self.max_line_bytes < 1024:
            raise ValueError(
                f"max_line_bytes must be >= 1024, got {self.max_line_bytes}"
            )
